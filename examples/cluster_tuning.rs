//! Scenario: amortizing tuning overhead with performance clusters.
//!
//! Shows the paper's end-to-end argument on gobmk: exact optimal tracking
//! re-searches the 70-setting space every 10 M instructions (≈500 µs /
//! 30 µJ per event) and transitions constantly; allowing a 5% performance
//! loss lets the tuner sit inside stable regions, and end-to-end time and
//! energy *improve* once overheads are charged.
//!
//! ```text
//! cargo run --example cluster_tuning
//! ```

use mcdvfs_core::governor::{OracleClusterGovernor, OracleOptimalGovernor};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::galaxy_nexus_class();
    let trace = Benchmark::Bzip2.trace();
    let data = Arc::new(CharacterizationGrid::characterize(
        &system,
        &trace,
        FrequencyGrid::coarse(),
    ));
    let budget = InefficiencyBudget::bounded(1.6)?;
    let runner = GovernedRun::with_paper_overheads();

    let mut tracker = OracleOptimalGovernor::new(Arc::clone(&data), budget);
    let tracked = runner.execute(&data, &trace, &mut tracker);

    println!("bzip2 under {budget}, paper-calibrated tuning overheads\n");
    println!(
        "exact optimal tracking : {:7.2} ms, {:6.2} mJ  ({} searches, {} transitions, {:.0} µs tuning)",
        tracked.total_time().as_micros() / 1e3,
        tracked.total_energy().as_millis(),
        tracked.searches,
        tracked.transitions,
        tracked.tuning_time.as_micros(),
    );

    for thr in [0.01, 0.03, 0.05] {
        let mut governor = OracleClusterGovernor::new(Arc::clone(&data), budget, thr)?;
        let report = runner.execute(&data, &trace, &mut governor);
        println!(
            "cluster threshold {:>3.0}% : {:7.2} ms, {:6.2} mJ  ({} searches, {} transitions, {:.0} µs tuning)",
            thr * 100.0,
            report.total_time().as_micros() / 1e3,
            report.total_energy().as_millis(),
            report.searches,
            report.transitions,
            report.tuning_time.as_micros(),
        );
        let regions = governor.regions();
        if thr == 0.05 {
            println!(
                "\nstable regions at 5%: {} region(s) cover all {} samples",
                regions.len(),
                trace.len()
            );
            for r in regions {
                println!(
                    "  samples {:3}..{:3} at {}",
                    r.start,
                    r.end,
                    r.chosen_setting(&data)
                );
            }
        }
    }
    println!(
        "\ntakeaway: a small tolerated performance loss removes nearly every search\n\
         and transition, so end-to-end performance improves — the paper's Section VI-C."
    );
    Ok(())
}
