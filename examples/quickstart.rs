//! Quickstart: characterize a workload and pick frequency settings under an
//! energy constraint.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcdvfs_core::{
    cluster_series, stable_regions, Inefficiency, InefficiencyBudget, OptimalFinder,
};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid};
use mcdvfs_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The simulated platform: an energy-constrained phone with CPU DVFS
    //    (100-1000 MHz) and memory DFS (200-800 MHz).
    let system = System::galaxy_nexus_class();
    let grid = FrequencyGrid::coarse();
    println!("platform grid: {grid}");

    // 2. A workload: the first 20 samples (200 M instructions) of gobmk.
    let trace = Benchmark::Gobmk.trace().window(0, 20);
    println!("workload: {trace}");

    // 3. Measure every (sample, setting) pair — the paper's 70 simulations.
    let data = CharacterizationGrid::characterize(&system, &trace, grid);

    // 4. Inefficiency of one candidate setting for sample 0.
    let candidate = FreqSetting::from_mhz(1000, 800);
    let measured = data.measurement_at(0, candidate)?;
    let inefficiency = Inefficiency::compute(measured.energy(), data.sample_emin(0))?;
    println!(
        "sample 0 at {candidate}: {:.2} ms, inefficiency {inefficiency:.2}",
        measured.time.as_micros() / 1e3
    );

    // 5. The best settings under a 30%-extra-energy budget.
    let budget = InefficiencyBudget::bounded(1.3)?;
    let optimal = OptimalFinder::new(budget).series(&data);
    println!("\noptimal settings under {budget}:");
    for choice in optimal.iter().take(6) {
        println!(
            "  sample {:2}: {} (I={:.2})",
            choice.sample, choice.setting, choice.inefficiency
        );
    }

    // 6. Trade 5% performance for stability: performance clusters fuse into
    //    stable regions, eliminating most frequency transitions.
    let clusters = cluster_series(&data, budget, 0.05)?;
    let regions = stable_regions(&clusters);
    println!(
        "\nwith a 5% performance-loss allowance: {} stable regions over {} samples",
        regions.len(),
        trace.len()
    );
    for region in &regions {
        println!(
            "  samples {:2}..{:2} stay at {}",
            region.start,
            region.end,
            region.chosen_setting(&data)
        );
    }
    Ok(())
}
