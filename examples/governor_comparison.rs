//! Scenario: comparing frequency governors on one workload.
//!
//! Runs every governor the crate ships — Linux-style baselines, the
//! paper's oracle tuners, a CoScale-style greedy searcher (cold and warm
//! start), and the runtime predictive tuner — over milc with
//! paper-calibrated overheads, and prints the end-to-end scoreboard.
//!
//! ```text
//! cargo run --example governor_comparison
//! ```

use mcdvfs_core::governor::{
    CoScaleGovernor, ConservativeGovernor, Governor, OndemandGovernor, OracleClusterGovernor,
    OracleOptimalGovernor, PerformanceGovernor, PowersaveGovernor, PredictiveGovernor,
    ProfileGovernor, WorkloadProfile,
};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::galaxy_nexus_class();
    let trace = Benchmark::Milc.trace();
    let grid = FrequencyGrid::coarse();
    let data = Arc::new(CharacterizationGrid::characterize(&system, &trace, grid));
    let budget = InefficiencyBudget::bounded(1.3)?;
    let runner = GovernedRun::with_paper_overheads();

    let latency = system.latency_model().clone();
    let bandwidth_of =
        move |mhz: u32| latency.effective_bandwidth(mcdvfs_types::MemFreq::from_mhz(mhz));

    // An offline profile from a previous execution of the same app
    // (different input jitter), deployed without any runtime search.
    let training_trace = Benchmark::Milc.trace_with(99, 0.015);
    let training_data = CharacterizationGrid::characterize(&system, &training_trace, grid);
    let profile = WorkloadProfile::from_characterization(&training_data, budget, 0.05)?;

    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new(PerformanceGovernor::new(grid)),
        Box::new(PowersaveGovernor::new(grid)),
        Box::new(OndemandGovernor::new(grid, 0.6, bandwidth_of.clone())),
        Box::new(ConservativeGovernor::new(grid, 0.6, bandwidth_of)),
        Box::new(CoScaleGovernor::new(Arc::clone(&data), budget)),
        Box::new(CoScaleGovernor::new(Arc::clone(&data), budget).starting_from_previous()),
        Box::new(OracleOptimalGovernor::new(Arc::clone(&data), budget)),
        Box::new(OracleClusterGovernor::new(Arc::clone(&data), budget, 0.05)?),
        Box::new(PredictiveGovernor::new(Arc::clone(&data), budget)),
        Box::new(ProfileGovernor::new(profile)),
    ];

    let mut table = Table::new(vec![
        "governor",
        "time_ms",
        "energy_mJ",
        "inefficiency",
        "searches",
        "transitions",
    ]);
    for governor in &mut governors {
        let report = runner.execute(&data, &trace, governor.as_mut());
        table.row(vec![
            report.governor.clone(),
            fmt(report.total_time().as_micros() / 1e3, 1),
            fmt(report.total_energy().as_millis(), 1),
            fmt(report.total_inefficiency(), 3),
            report.searches.to_string(),
            report.transitions.to_string(),
        ]);
    }
    println!(
        "milc, {} samples, budget {budget}, paper overheads:\n",
        trace.len()
    );
    println!("{}", table.to_text());
    println!(
        "notes: `performance`/`ondemand` burn far past the budget; `powersave` is\n\
         slow AND inefficient (the paper's \"running slower isn't running\n\
         efficiently\"); the warm-start CoScale variant matches the cold one with\n\
         fewer evaluated settings; the predictive tuner approaches the oracle\n\
         while searching only on phase changes."
    );
    Ok(())
}
