//! Scenario: a phone's OS hands out inefficiency budgets by app priority.
//!
//! The paper proposes that "the OS can also set the inefficiency budget
//! based on application's priority, allowing the higher priority
//! applications to burn more energy than lower priority applications."
//! This example scripts two phone-style workloads with the phase DSL — a
//! foreground navigation app (bursty, memory-heavy map decoding) and a
//! background photo indexer (steady compute) — and runs each under the
//! budget its priority earns.
//!
//! ```text
//! cargo run --example energy_budget_phone
//! ```

use mcdvfs_core::governor::OracleOptimalGovernor;
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FrequencyGrid, SampleCharacteristics};
use mcdvfs_workloads::{Pattern, Phase, PhaseScript, SampleTrace};
use std::sync::Arc;

fn navigation_app() -> SampleTrace {
    // Route recalculation (CPU) punctuated by map-tile decoding bursts
    // (memory): the kind of interactive workload the paper's intro
    // motivates.
    let mut route = SampleCharacteristics::new(0.8, 2.0);
    route.activity_factor = 0.85;
    let mut tiles = SampleCharacteristics::new(0.6, 18.0);
    tiles.mlp = 3.0;
    tiles.row_hit_rate = 0.8;
    let script = PhaseScript::new(vec![
        Phase::constant(route, 8),
        Phase::patterned(
            tiles,
            10,
            Pattern::Alternate {
                cpi_scale: 1.2,
                mpki_scale: 0.4,
                period: 3,
            },
        ),
        Phase::constant(route, 8),
    ]);
    SampleTrace::new("navigation", script.render(7, 0.02))
}

fn photo_indexer() -> SampleTrace {
    // Steady feature extraction: CPU bound, perfect for a tight budget.
    let mut extract = SampleCharacteristics::new(0.6, 1.0);
    extract.activity_factor = 0.95;
    let script = PhaseScript::new(vec![Phase::constant(extract, 24)]);
    SampleTrace::new("photo-indexer", script.render(9, 0.02))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::galaxy_nexus_class();
    let grid = FrequencyGrid::coarse();
    let runner = GovernedRun::with_paper_overheads();

    // Foreground gets a loose budget; background must stay near Emin.
    let assignments = [
        (navigation_app(), 1.4, "foreground (high priority)"),
        (photo_indexer(), 1.05, "background (low priority)"),
    ];

    println!("OS budget assignment by priority:\n");
    for (trace, budget_v, role) in assignments {
        let data = Arc::new(CharacterizationGrid::characterize(&system, &trace, grid));
        let budget = InefficiencyBudget::bounded(budget_v)?;
        let mut governor = OracleOptimalGovernor::new(Arc::clone(&data), budget);
        let report = runner.execute(&data, &trace, &mut governor);

        // What the same app would do with unlimited energy, for contrast.
        let mut unconstrained =
            OracleOptimalGovernor::new(Arc::clone(&data), InefficiencyBudget::Unconstrained);
        let max_perf = runner.execute(&data, &trace, &mut unconstrained);

        println!("{} — {role}, budget {budget}", trace.name());
        println!(
            "  time {:.1} ms ({:.0}% of unconstrained speed), energy {:.1} mJ, achieved I={:.3}",
            report.total_time().as_micros() / 1e3,
            max_perf.total_time() / report.total_time() * 100.0,
            report.total_energy().as_millis(),
            report.work_inefficiency(),
        );
        println!(
            "  vs unconstrained: {:.1} mJ ({:.0}% more energy for {:.0}% less time)\n",
            max_perf.total_energy().as_millis(),
            (max_perf.total_energy() / report.total_energy() - 1.0) * 100.0,
            (1.0 - max_perf.total_time() / report.total_time()) * 100.0,
        );
    }
    println!(
        "the budget is device- and app-independent: 1.4 always means \"at most 40%\n\
         extra energy over this app's own most efficient execution\"."
    );
    Ok(())
}
