//! Benchmarks the optimal-settings search — the operation whose cost the
//! paper calibrates at ~500 µs per tuning event over 70 settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdvfs_core::{InefficiencyBudget, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn bench_optimal_search(c: &mut Criterion) {
    let trace = Benchmark::Gobmk.trace().window(0, 16);
    let system = System::galaxy_nexus_class();
    let budget = InefficiencyBudget::bounded(1.3).unwrap();
    let finder = OptimalFinder::new(budget);

    let mut group = c.benchmark_group("optimal_search");
    for (label, grid) in [("70_settings", FrequencyGrid::coarse()), ("496_settings", FrequencyGrid::fine())] {
        let data = CharacterizationGrid::characterize(&system, &trace, grid);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(finder.find(&data, black_box(7))))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_optimal_search);
criterion_main!(benches);
