//! Benchmarks the optimal-settings search — the operation whose cost the
//! paper calibrates at ~500 µs per tuning event over 70 settings.

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_core::{InefficiencyBudget, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    let trace = Benchmark::Gobmk.trace().window(0, 16);
    let system = System::galaxy_nexus_class();
    let budget = InefficiencyBudget::bounded(1.3).unwrap();
    let finder = OptimalFinder::new(budget);

    let qb = QuickBench::new();
    for (label, grid) in [
        ("70_settings", FrequencyGrid::coarse()),
        ("496_settings", FrequencyGrid::fine()),
    ] {
        let data = CharacterizationGrid::characterize(&system, &trace, grid);
        qb.bench(&format!("optimal_search/{label}"), || {
            black_box(finder.find(&data, black_box(7)))
        });
    }
}
