//! Benchmarks the event-driven DRAM controller against the analytic
//! latency model it cross-validates.

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_dram::{LatencyModel, MemoryController, Request};
use mcdvfs_types::MemFreq;
use std::hint::black_box;

fn stream(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            arrival_cycle: i * 20,
            addr: i * 64,
            write: i % 4 == 0,
        })
        .collect()
}

fn main() {
    let f = MemFreq::from_mhz(400);
    let requests = stream(2048);

    let qb = QuickBench::new();
    qb.bench("dram/event_driven_2048_requests", || {
        let mut ctrl = MemoryController::lpddr3(f);
        black_box(ctrl.run(black_box(&requests)))
    });

    let model = LatencyModel::lpddr3();
    qb.bench("dram/analytic_latency", || {
        black_box(model.avg_latency_ns(black_box(f), 0.6, 0.4))
    });
}
