//! Benchmarks the event-driven DRAM controller against the analytic
//! latency model it cross-validates.

use criterion::{criterion_group, criterion_main, Criterion};
use mcdvfs_dram::{LatencyModel, MemoryController, Request};
use mcdvfs_types::MemFreq;
use std::hint::black_box;

fn stream(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            arrival_cycle: i * 20,
            addr: i * 64,
            write: i % 4 == 0,
        })
        .collect()
}

fn bench_dram(c: &mut Criterion) {
    let f = MemFreq::from_mhz(400);
    let requests = stream(2048);
    c.bench_function("dram/event_driven_2048_requests", |b| {
        b.iter(|| {
            let mut ctrl = MemoryController::lpddr3(f);
            black_box(ctrl.run(black_box(&requests)))
        })
    });

    let model = LatencyModel::lpddr3();
    c.bench_function("dram/analytic_latency", |b| {
        b.iter(|| black_box(model.avg_latency_ns(black_box(f), 0.6, 0.4)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_dram);
criterion_main!(benches);
