//! Benchmarks the stable-region scan (running cluster intersection).

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    let trace = Benchmark::Gcc.trace();
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());
    let budget = InefficiencyBudget::bounded(1.3).unwrap();
    let clusters = cluster_series(&data, budget, 0.05).unwrap();

    QuickBench::new().bench("stable_regions/gcc_200_samples", || {
        black_box(stable_regions(black_box(&clusters)))
    });
}
