//! Benchmarks the stable-region scan (running cluster intersection).

use criterion::{criterion_group, criterion_main, Criterion};
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn bench_stable_regions(c: &mut Criterion) {
    let trace = Benchmark::Gcc.trace();
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());
    let budget = InefficiencyBudget::bounded(1.3).unwrap();
    let clusters = cluster_series(&data, budget, 0.05).unwrap();

    c.bench_function("stable_regions/gcc_200_samples", |b| {
        b.iter(|| black_box(stable_regions(black_box(&clusters))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_stable_regions);
criterion_main!(benches);
