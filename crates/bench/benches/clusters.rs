//! Benchmarks performance-cluster computation over a whole trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdvfs_core::{cluster_series, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn bench_clusters(c: &mut Criterion) {
    let trace = Benchmark::Gobmk.trace();
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());
    let budget = InefficiencyBudget::bounded(1.3).unwrap();

    let mut group = c.benchmark_group("cluster_series");
    for thr in [0.01, 0.05] {
        group.bench_function(BenchmarkId::from_parameter(format!("thr_{thr}")), |b| {
            b.iter(|| black_box(cluster_series(&data, budget, black_box(thr)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_clusters);
criterion_main!(benches);
