//! Benchmarks performance-cluster computation over a whole trace.

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_core::{cluster_series, InefficiencyBudget};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    let trace = Benchmark::Gobmk.trace();
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());
    let budget = InefficiencyBudget::bounded(1.3).unwrap();

    let qb = QuickBench::new();
    for thr in [0.01, 0.05] {
        qb.bench(&format!("cluster_series/thr_{thr}"), || {
            black_box(cluster_series(&data, budget, black_box(thr)).unwrap())
        });
    }
}
