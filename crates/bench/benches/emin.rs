//! Benchmarks the Emin estimation strategies (paper Section II-B).

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_core::emin::{BruteForceEmin, EminEstimator, LearningEmin, LookupTableEmin};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    let trace = Benchmark::Milc.trace().window(0, 40);
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());

    let qb = QuickBench::new();
    qb.bench("emin/brute_force_40_samples", || {
        let mut e = BruteForceEmin::new();
        for s in 0..data.n_samples() {
            black_box(e.emin(&data, s));
        }
    });
    qb.bench("emin/lookup_table_40_samples", || {
        let mut e = LookupTableEmin::new();
        for s in 0..data.n_samples() {
            black_box(e.emin(&data, s));
        }
    });
    qb.bench("emin/learning_40_samples", || {
        let mut e = LearningEmin::new(0.3);
        for s in 0..data.n_samples() {
            black_box(e.emin(&data, s));
        }
    });
}
