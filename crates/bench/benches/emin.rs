//! Benchmarks the Emin estimation strategies (paper Section II-B).

use criterion::{criterion_group, criterion_main, Criterion};
use mcdvfs_core::emin::{BruteForceEmin, EminEstimator, LearningEmin, LookupTableEmin};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn bench_emin(c: &mut Criterion) {
    let trace = Benchmark::Milc.trace().window(0, 40);
    let system = System::galaxy_nexus_class();
    let data = CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());

    let mut group = c.benchmark_group("emin");
    group.bench_function("brute_force_40_samples", |b| {
        b.iter(|| {
            let mut e = BruteForceEmin::new();
            for s in 0..data.n_samples() {
                black_box(e.emin(&data, s));
            }
        })
    });
    group.bench_function("lookup_table_40_samples", |b| {
        b.iter(|| {
            let mut e = LookupTableEmin::new();
            for s in 0..data.n_samples() {
                black_box(e.emin(&data, s));
            }
        })
    });
    group.bench_function("learning_40_samples", |b| {
        b.iter(|| {
            let mut e = LearningEmin::new(0.3);
            for s in 0..data.n_samples() {
                black_box(e.emin(&data, s));
            }
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_emin);
criterion_main!(benches);
