//! Before/after wall-clock benches for the flat-arena, bitset, and sweep
//! refactor of the analysis pipeline.
//!
//! Each kernel is timed in its legacy `Vec`-based reference form
//! ([`mcdvfs_core::legacy`]) and its current bitset/arena form on the
//! coarse (70-setting) and fine (496-setting) grids, then the full
//! budget × threshold grid is derived both the old way (every point
//! re-derives its optimal series sequentially) and through
//! [`SweepEngine`]. Timings and speedups land in
//! `results/BENCH_sweep.json`.
//!
//! Set `MCDVFS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny
//! windows, coarse grid only): timings are informational there; the run
//! only has to complete without panicking.

use mcdvfs_bench::quickbench::{BenchReport, QuickBench};
use mcdvfs_bench::{results_dir, PAPER_BUDGETS, PAPER_THRESHOLDS};
use mcdvfs_core::legacy;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget, OptimalFinder, SweepEngine};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let smoke = std::env::var_os("MCDVFS_BENCH_SMOKE").is_some();
    let qb = if smoke {
        QuickBench::smoke()
    } else {
        QuickBench::new()
    };
    let system = System::galaxy_nexus_class();
    let trace = if smoke {
        Benchmark::Gobmk.trace().window(0, 10)
    } else {
        Benchmark::Gobmk.trace()
    };
    let grids: &[(&str, FrequencyGrid)] = if smoke {
        &[("coarse", FrequencyGrid::coarse())]
    } else {
        &[
            ("coarse", FrequencyGrid::coarse()),
            ("fine", FrequencyGrid::fine()),
        ]
    };

    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let budgets: Vec<InefficiencyBudget> = PAPER_BUDGETS
        .iter()
        .map(|&v| InefficiencyBudget::bounded(v).expect("valid budget"))
        .collect();

    println!(
        "sweep bench: {} samples, {} worker threads{}",
        trace.len(),
        CharacterizationGrid::default_threads(),
        if smoke { ", SMOKE windows" } else { "" },
    );
    let mut report = BenchReport::new("mcdvfs-bench/sweep-v2");

    for &(label, grid) in grids {
        let seq = qb.bench(&format!("characterize/{label}/sequential"), || {
            black_box(CharacterizationGrid::characterize(&system, &trace, grid))
        });
        let par = qb.bench(&format!("characterize/{label}/parallel_auto"), || {
            black_box(CharacterizationGrid::characterize_auto(
                &system, &trace, grid,
            ))
        });
        report.compare(&format!("characterize/{label}"), seq, par);

        let data = Arc::new(CharacterizationGrid::characterize_auto(
            &system, &trace, grid,
        ));
        let finder = OptimalFinder::new(budget);

        let base = qb.bench(&format!("optimal_series/{label}/legacy_vec"), || {
            black_box(legacy::series(&finder, &data))
        });
        let opt = qb.bench(&format!("optimal_series/{label}/bitset"), || {
            black_box(finder.series(&data))
        });
        report.compare(&format!("optimal_series/{label}"), base, opt);

        let base = qb.bench(&format!("clusters/{label}/legacy_vec"), || {
            black_box(legacy::cluster_members(&data, budget, 0.05).expect("valid threshold"))
        });
        let opt = qb.bench(&format!("clusters/{label}/bitset"), || {
            black_box(cluster_series(&data, budget, 0.05).expect("valid threshold"))
        });
        report.compare(&format!("clusters/{label}"), base, opt);

        let members = legacy::cluster_members(&data, budget, 0.05).expect("valid threshold");
        let clusters = cluster_series(&data, budget, 0.05).expect("valid threshold");
        let base = qb.bench(&format!("stable_regions/{label}/legacy_vec"), || {
            black_box(legacy::stable_regions(&members))
        });
        let opt = qb.bench(&format!("stable_regions/{label}/bitset"), || {
            black_box(stable_regions(&clusters))
        });
        report.compare(&format!("stable_regions/{label}"), base, opt);

        // The full budget x threshold grid, the old way (every point
        // stands alone: its optimal series is derived for the figure AND
        // re-derived inside cluster_series) vs the engine (one series per
        // budget, points fanned over workers).
        let base = qb.bench(&format!("sweep_grid/{label}/per_point_sequential"), || {
            let mut out = Vec::new();
            for &b in &budgets {
                for &thr in &PAPER_THRESHOLDS {
                    let optimal = OptimalFinder::new(b).series(&data);
                    let clusters = cluster_series(&data, b, thr).expect("valid threshold");
                    let regions = stable_regions(&clusters);
                    out.push((optimal, clusters, regions));
                }
            }
            black_box(out)
        });
        let engine = SweepEngine::new(Arc::clone(&data));
        let opt = qb.bench(&format!("sweep_grid/{label}/engine"), || {
            black_box(
                engine
                    .sweep(&budgets, &PAPER_THRESHOLDS)
                    .expect("valid thresholds"),
            )
        });
        report.compare(&format!("sweep_grid/{label}"), base, opt);
    }

    let path = results_dir().join("BENCH_sweep.json");
    report.write_json(&path).expect("write bench report");
    println!("[json written to {}]", path.display());
}
