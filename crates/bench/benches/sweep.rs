//! Before/after wall-clock benches for the flat-arena, bitset, sweep, and
//! compiled-characterization refactors of the analysis pipeline.
//!
//! Each kernel is timed in its legacy `Vec`-based reference form
//! ([`mcdvfs_core::legacy`]) and its current form on the coarse
//! (70-setting) and fine (496-setting) grids. Characterization compares
//! the legacy per-cell `simulate_sample` loop against the
//! `EvalPlan`-compiled path, `recharacterize/dirty-1%` compares a full
//! recompute against the dirty-row delta update, and the full budget ×
//! threshold grid is derived both the old way and through
//! [`SweepEngine`]. Timings and speedups land in
//! `results/BENCH_sweep.json` (schema `mcdvfs-bench/sweep-v3`), recorded
//! in the provenance manifest so the results-drift job cross-checks the
//! committed report.
//!
//! Set `MCDVFS_BENCH_SMOKE=1` for a seconds-long CI run (tiny windows):
//! instead of overwriting the committed report, it validates the report's
//! schema and kernel rows and **fails** if the measured
//! `characterize/fine` speedup regresses below 2x — half the ≥3x the
//! recorded baseline claims.

use mcdvfs_bench::quickbench::{BenchReport, QuickBench};
use mcdvfs_bench::{results_dir, Harness, Json, PAPER_BUDGETS, PAPER_THRESHOLDS};
use mcdvfs_core::legacy;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget, OptimalFinder, SweepEngine};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;

/// Schema tag of the report this bench writes.
const SCHEMA: &str = "mcdvfs-bench/sweep-v3";

/// Comparison rows the committed report must carry (smoke validates them).
const REQUIRED_ROWS: [&str; 3] = [
    "characterize/coarse",
    "characterize/fine",
    "recharacterize/dirty-1%",
];

/// Smoke floor on the measured `characterize/fine` speedup.
const SMOKE_FLOOR: f64 = 2.0;

fn main() {
    let smoke = std::env::var_os("MCDVFS_BENCH_SMOKE").is_some();
    let qb = if smoke {
        QuickBench::smoke()
    } else {
        QuickBench::new()
    };
    let system = System::galaxy_nexus_class();
    let trace = if smoke {
        Benchmark::Gobmk.trace().window(0, 10)
    } else {
        Benchmark::Gobmk.trace()
    };
    let grids: &[(&str, FrequencyGrid)] = &[
        ("coarse", FrequencyGrid::coarse()),
        ("fine", FrequencyGrid::fine()),
    ];

    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let budgets: Vec<InefficiencyBudget> = PAPER_BUDGETS
        .iter()
        .map(|&v| InefficiencyBudget::bounded(v).expect("valid budget"))
        .collect();

    println!(
        "sweep bench: {} samples, {} worker threads{}",
        trace.len(),
        CharacterizationGrid::default_threads(),
        if smoke { ", SMOKE windows" } else { "" },
    );
    let mut report = BenchReport::new(SCHEMA);

    for &(label, grid) in grids {
        // Characterization: the legacy per-cell simulate_sample loop vs
        // the EvalPlan-compiled path (both sequential, so the comparison
        // measures the plan, not the machine's core count).
        let base = qb.bench(&format!("characterize/{label}/legacy_cell_loop"), || {
            black_box(legacy::characterize(&system, &trace, grid))
        });
        let opt = qb.bench(&format!("characterize/{label}/plan_compiled"), || {
            black_box(CharacterizationGrid::characterize(&system, &trace, grid))
        });
        report.compare(&format!("characterize/{label}"), base, opt);
        let par = qb.bench(&format!("characterize/{label}/parallel_auto"), || {
            black_box(CharacterizationGrid::characterize_auto(
                &system, &trace, grid,
            ))
        });
        report.entry(&format!("characterize/{label}/parallel_auto"), par);

        let data = Arc::new(CharacterizationGrid::characterize_auto(
            &system, &trace, grid,
        ));
        let finder = OptimalFinder::new(budget);

        let base = qb.bench(&format!("optimal_series/{label}/legacy_vec"), || {
            black_box(legacy::series(&finder, &data))
        });
        let opt = qb.bench(&format!("optimal_series/{label}/bitset"), || {
            black_box(finder.series(&data))
        });
        report.compare(&format!("optimal_series/{label}"), base, opt);

        let base = qb.bench(&format!("clusters/{label}/legacy_vec"), || {
            black_box(legacy::cluster_members(&data, budget, 0.05).expect("valid threshold"))
        });
        let opt = qb.bench(&format!("clusters/{label}/bitset"), || {
            black_box(cluster_series(&data, budget, 0.05).expect("valid threshold"))
        });
        report.compare(&format!("clusters/{label}"), base, opt);

        let members = legacy::cluster_members(&data, budget, 0.05).expect("valid threshold");
        let clusters = cluster_series(&data, budget, 0.05).expect("valid threshold");
        let base = qb.bench(&format!("stable_regions/{label}/legacy_vec"), || {
            black_box(legacy::stable_regions(&members))
        });
        let opt = qb.bench(&format!("stable_regions/{label}/bitset"), || {
            black_box(stable_regions(&clusters))
        });
        report.compare(&format!("stable_regions/{label}"), base, opt);

        // The full budget x threshold grid, the old way (every point
        // stands alone: its optimal series is derived for the figure AND
        // re-derived inside cluster_series) vs the engine (one series per
        // budget, points fanned over workers).
        let base = qb.bench(&format!("sweep_grid/{label}/per_point_sequential"), || {
            let mut out = Vec::new();
            for &b in &budgets {
                for &thr in &PAPER_THRESHOLDS {
                    let optimal = OptimalFinder::new(b).series(&data);
                    let clusters = cluster_series(&data, b, thr).expect("valid threshold");
                    let regions = stable_regions(&clusters);
                    out.push((optimal, clusters, regions));
                }
            }
            black_box(out)
        });
        let engine = SweepEngine::new(Arc::clone(&data));
        let opt = qb.bench(&format!("sweep_grid/{label}/engine"), || {
            black_box(
                engine
                    .sweep(&budgets, &PAPER_THRESHOLDS)
                    .expect("valid thresholds"),
            )
        });
        report.compare(&format!("sweep_grid/{label}"), base, opt);
    }

    // Incremental recharacterization on the fine grid: ~1% of samples go
    // dirty, and the delta update (re-simulate only those rows, refresh
    // cached Emin/row hashes, one linear column-total pass) races a full
    // plan-compiled recompute of the updated trace.
    let grid = FrequencyGrid::fine();
    let n = trace.len();
    let dirty: Vec<usize> = {
        let count = (n / 100).max(1);
        let stride = (n / count).max(1);
        (0..count).map(|i| i * stride).collect()
    };
    let mut samples = trace.samples().to_vec();
    for &s in &dirty {
        samples[s].base_cpi *= 1.05;
        samples[s].mpki *= 1.1;
    }
    let updated = SampleTrace::new(trace.name(), samples);
    println!(
        "recharacterize: {} of {} samples dirty on the fine grid",
        dirty.len(),
        n
    );
    let base = qb.bench("recharacterize/full_recompute", || {
        black_box(CharacterizationGrid::characterize(&system, &updated, grid))
    });
    let mut warm = CharacterizationGrid::characterize(&system, &trace, grid);
    let opt = qb.bench("recharacterize/dirty_rows", || {
        warm.recharacterize(&system, &updated, &dirty);
        black_box(warm.fingerprint())
    });
    report.compare("recharacterize/dirty-1%", base, opt);

    let path = results_dir().join("BENCH_sweep.json");
    if smoke {
        // Smoke windows would clobber the committed full-run timings;
        // validate the committed report and gate the fast path instead.
        enforce_smoke_gate(&report, &path);
    } else {
        report.write_json(&path).expect("write bench report");
        println!("[json written to {}]", path.display());
        let mut harness = Harness::new("sweep_bench");
        harness.note("schema", SCHEMA);
        harness.note("benchmark", "gobmk");
        harness.note("grids", "coarse-70,fine-496");
        harness.note(
            "kernels",
            "characterize,recharacterize,optimal_series,clusters,stable_regions,sweep_grid",
        );
        harness.record_file(&path);
        harness.finish();
    }
}

/// The CI smoke gate: the committed report must be `sweep-v3` and carry
/// every required kernel row, and the measured `characterize/fine`
/// speedup must not regress below [`SMOKE_FLOOR`] (half the ≥3x the
/// recorded baseline claims; smoke timings are noisy, the margin is not).
fn enforce_smoke_gate(report: &BenchReport, committed: &Path) {
    let mut failures: Vec<String> = Vec::new();

    match std::fs::read_to_string(committed)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
    {
        Ok(doc) => {
            match doc.get("schema").and_then(Json::as_str) {
                Some(SCHEMA) => {}
                other => failures.push(format!(
                    "{}: schema {other:?}, expected {SCHEMA:?}",
                    committed.display()
                )),
            }
            let rows = doc.get("comparisons").and_then(Json::as_arr).unwrap_or(&[]);
            for required in REQUIRED_ROWS {
                let row = rows
                    .iter()
                    .find(|r| r.get("name").and_then(Json::as_str) == Some(required));
                match row {
                    None => failures.push(format!("committed report lacks a {required:?} row")),
                    Some(row) => {
                        let speedup = row.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
                        println!("recorded {required:<24} {speedup:>6.2}x");
                    }
                }
            }
        }
        Err(e) => failures.push(format!("cannot read {}: {e}", committed.display())),
    }

    match report
        .comparisons()
        .iter()
        .find(|c| c.name == "characterize/fine")
    {
        None => failures.push("smoke run produced no characterize/fine row".to_string()),
        Some(c) => {
            let measured = c.speedup();
            println!("measured characterize/fine        {measured:>6.2}x (floor {SMOKE_FLOOR}x)");
            if measured < SMOKE_FLOOR {
                failures.push(format!(
                    "characterize/fine regressed: {measured:.2}x < {SMOKE_FLOOR}x floor"
                ));
            }
        }
    }

    if failures.is_empty() {
        println!("[smoke gate passed; committed report left untouched]");
    } else {
        for f in &failures {
            eprintln!("[smoke gate] {f}");
        }
        std::process::exit(1);
    }
}
