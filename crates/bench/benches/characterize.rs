//! Benchmarks the simulator: one sample at one setting (the fixed-point
//! solve) and a full coarse-grid characterization of a short trace.

use mcdvfs_bench::quickbench::QuickBench;
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, SampleCharacteristics};
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    let system = System::galaxy_nexus_class();
    let chars = SampleCharacteristics::new(1.0, 8.0);

    let qb = QuickBench::new();
    qb.bench("simulate_sample/balanced", || {
        black_box(system.simulate_sample(black_box(&chars), FreqSetting::from_mhz(700, 500)))
    });

    let trace = Benchmark::Gobmk.trace().window(0, 8);
    qb.bench("characterize/8_samples_x_70_settings", || {
        black_box(CharacterizationGrid::characterize(
            &system,
            &trace,
            FrequencyGrid::coarse(),
        ))
    });
}
