//! Benchmarks the simulator: one sample at one setting (the fixed-point
//! solve) and a full coarse-grid characterization of a short trace.

use criterion::{criterion_group, criterion_main, Criterion};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{FreqSetting, FrequencyGrid, SampleCharacteristics};
use mcdvfs_workloads::Benchmark;
use std::hint::black_box;

fn bench_characterize(c: &mut Criterion) {
    let system = System::galaxy_nexus_class();
    let chars = SampleCharacteristics::new(1.0, 8.0);

    c.bench_function("simulate_sample/balanced", |b| {
        b.iter(|| {
            black_box(system.simulate_sample(black_box(&chars), FreqSetting::from_mhz(700, 500)))
        })
    });

    let trace = Benchmark::Gobmk.trace().window(0, 8);
    c.bench_function("characterize/8_samples_x_70_settings", |b| {
        b.iter(|| {
            black_box(CharacterizationGrid::characterize(
                &system,
                &trace,
                FrequencyGrid::coarse(),
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_characterize);
criterion_main!(benches);
