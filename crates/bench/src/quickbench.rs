//! A dependency-free wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the Criterion dependency was replaced
//! with this minimal runner: each bench warms up briefly, sizes an
//! iteration batch to the measurement window, and reports min/mean/max
//! per-iteration time. The `benches/*.rs` targets declare
//! `harness = false` and drive it from a plain `main`.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_bench::quickbench::QuickBench;
//!
//! let qb = QuickBench::smoke(); // tiny windows, for tests/doctests
//! qb.bench("noop", || std::hint::black_box(1 + 1));
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock bench runner with fixed warm-up and measurement windows.
#[derive(Debug, Clone)]
pub struct QuickBench {
    warmup: Duration,
    measure: Duration,
}

impl Default for QuickBench {
    fn default() -> Self {
        Self::new()
    }
}

impl QuickBench {
    /// Default windows: 200 ms warm-up, 600 ms measurement.
    #[must_use]
    pub fn new() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(600),
        }
    }

    /// Tiny windows for smoke-testing the harness itself.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    /// Runs `f` repeatedly and prints per-iteration statistics.
    ///
    /// Returns the mean per-iteration time so callers (and tests) can make
    /// assertions about it.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        // Warm-up, also yielding a first per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters;

        // Size batches so each one is ~1/20th of the measurement window.
        let per_batch = (self.measure.as_nanos() / 20).max(1);
        let batch: u32 = (per_batch / est.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut samples: Vec<Duration> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed() / batch);
        }

        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<44} min {:>12}  mean {:>12}  max {:>12}  ({} batches x {batch} iters)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
        );
        mean
    }
}

/// A named baseline-vs-optimized timing pair.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared (e.g. `optimal_series/fine`).
    pub name: String,
    /// Mean per-iteration time of the reference implementation.
    pub baseline: Duration,
    /// Mean per-iteration time of the optimized implementation.
    pub optimized: Duration,
}

impl Comparison {
    /// Baseline time divided by optimized time (`> 1` = faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.optimized.as_secs_f64()
    }
}

/// Collects [`QuickBench`] results into a machine-readable JSON report —
/// standalone timings plus before/after comparisons — so perf claims land
/// in `results/` next to the figure CSVs instead of only in scrollback.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    schema: String,
    entries: Vec<(String, Duration)>,
    comparisons: Vec<Comparison>,
}

impl BenchReport {
    /// Creates an empty report tagged with `schema`
    /// (e.g. `mcdvfs-bench/sweep-v1`).
    #[must_use]
    pub fn new(schema: &str) -> Self {
        Self {
            schema: schema.to_string(),
            entries: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// Records a standalone timing.
    pub fn entry(&mut self, name: &str, mean: Duration) {
        self.entries.push((name.to_string(), mean));
    }

    /// Records a baseline-vs-optimized pair and prints the speedup.
    pub fn compare(&mut self, name: &str, baseline: Duration, optimized: Duration) {
        let c = Comparison {
            name: name.to_string(),
            baseline,
            optimized,
        };
        println!(
            "{:<44} {:>6.2}x  ({} -> {})",
            format!("speedup/{name}"),
            c.speedup(),
            fmt_duration(baseline),
            fmt_duration(optimized),
        );
        self.comparisons.push(c);
    }

    /// The recorded comparisons, in insertion order.
    #[must_use]
    pub fn comparisons(&self) -> &[Comparison] {
        &self.comparisons
    }

    /// Serializes the report (hand-rolled: the workspace builds offline,
    /// without serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(&self.schema)));
        out.push_str("  \"entries\": [\n");
        for (i, (name, mean)) in self.entries.iter().enumerate() {
            let sep = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {}}}{sep}\n",
                escape(name),
                mean.as_nanos()
            ));
        }
        out.push_str("  ],\n  \"comparisons\": [\n");
        for (i, c) in self.comparisons.iter().enumerate() {
            let sep = if i + 1 < self.comparisons.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"baseline_ns\": {}, \"optimized_ns\": {}, \
                 \"speedup\": {:.3}}}{sep}\n",
                escape(&c.name),
                c.baseline.as_nanos(),
                c.optimized.as_nanos(),
                c.speedup()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Human formatting with an adaptive unit (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let qb = QuickBench::smoke();
        let mean = qb.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..std::hint::black_box(100u64) {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        });
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn report_serializes_entries_and_comparisons() {
        let mut r = BenchReport::new("mcdvfs-bench/test-v1");
        r.entry("alpha", Duration::from_nanos(1500));
        r.compare("beta", Duration::from_micros(10), Duration::from_micros(2));
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"mcdvfs-bench/test-v1\""));
        assert!(json.contains("\"name\": \"alpha\", \"mean_ns\": 1500"));
        assert!(json.contains("\"baseline_ns\": 10000, \"optimized_ns\": 2000"));
        assert!(json.contains("\"speedup\": 5.000"));
        assert_eq!(r.comparisons().len(), 1);
        assert!((r.comparisons()[0].speedup() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn report_escapes_quotes_in_names() {
        let mut r = BenchReport::new("s");
        r.entry("has \"quotes\"", Duration::from_nanos(1));
        assert!(r.to_json().contains("has \\\"quotes\\\""));
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
