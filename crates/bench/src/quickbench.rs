//! A dependency-free wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the Criterion dependency was replaced
//! with this minimal runner: each bench warms up briefly, sizes an
//! iteration batch to the measurement window, folds every batch's
//! per-iteration time into an observability [`Histogram`], and reports
//! min/mean/p50/p95/max. The `benches/*.rs` targets declare
//! `harness = false` and drive it from a plain `main`.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_bench::quickbench::QuickBench;
//!
//! let qb = QuickBench::smoke(); // tiny windows, for tests/doctests
//! let stats = qb.bench("noop", || std::hint::black_box(1 + 1));
//! assert!(stats.p50 <= stats.max);
//! ```

use mcdvfs_obs::{duration_edges_ns, Histogram};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration timing statistics for one benchmarked kernel.
///
/// Mean and max are exact over the batch samples; the percentiles are
/// interpolated from the half-decade duration histogram the samples were
/// folded into ([`duration_edges_ns`]), clamped to the observed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchStats {
    /// Mean per-iteration time across all measurement batches.
    pub mean: Duration,
    /// Median per-iteration time.
    pub p50: Duration,
    /// 95th-percentile per-iteration time — the tail the mean hides.
    pub p95: Duration,
    /// Slowest batch's per-iteration time.
    pub max: Duration,
}

impl BenchStats {
    /// Condenses a per-iteration duration histogram; `None` when empty.
    #[must_use]
    pub fn from_histogram(hist: &Histogram) -> Option<Self> {
        let ns = |v: f64| Duration::from_nanos(v.max(0.0).round() as u64);
        Some(Self {
            mean: ns(hist.mean()?),
            p50: ns(hist.percentile(0.5)?),
            p95: ns(hist.percentile(0.95)?),
            max: ns(hist.max_value()?),
        })
    }
}

/// Wall-clock bench runner with fixed warm-up and measurement windows.
#[derive(Debug, Clone)]
pub struct QuickBench {
    warmup: Duration,
    measure: Duration,
}

impl Default for QuickBench {
    fn default() -> Self {
        Self::new()
    }
}

impl QuickBench {
    /// Default windows: 200 ms warm-up, 600 ms measurement.
    #[must_use]
    pub fn new() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(600),
        }
    }

    /// Tiny windows for smoke-testing the harness itself.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    /// Runs `f` repeatedly and prints per-iteration statistics.
    ///
    /// Returns the full [`BenchStats`] so callers (and tests) can make
    /// assertions about the distribution, not just the mean.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        // Warm-up, also yielding a first per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters;

        // Size batches so each one is ~1/20th of the measurement window.
        let per_batch = (self.measure.as_nanos() / 20).max(1);
        let batch: u32 = (per_batch / est.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut hist = Histogram::new(duration_edges_ns());
        let mut batches: u64 = 0;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || batches == 0 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            hist.add((t0.elapsed() / batch).as_nanos() as f64);
            batches += 1;
        }

        let stats = BenchStats::from_histogram(&hist).expect("at least one batch ran");
        println!(
            "{name:<44} mean {:>11}  p50 {:>11}  p95 {:>11}  max {:>11}  ({batches} batches x {batch} iters)",
            fmt_duration(stats.mean),
            fmt_duration(stats.p50),
            fmt_duration(stats.p95),
            fmt_duration(stats.max),
        );
        stats
    }
}

/// A named baseline-vs-optimized timing pair.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared (e.g. `optimal_series/fine`).
    pub name: String,
    /// Per-iteration statistics of the reference implementation.
    pub baseline: BenchStats,
    /// Per-iteration statistics of the optimized implementation.
    pub optimized: BenchStats,
}

impl Comparison {
    /// Baseline mean divided by optimized mean (`> 1` = faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.mean.as_secs_f64() / self.optimized.mean.as_secs_f64()
    }
}

/// Collects [`QuickBench`] results into a machine-readable JSON report —
/// standalone timings plus before/after comparisons — so perf claims land
/// in `results/` next to the figure CSVs instead of only in scrollback.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    schema: String,
    meta: Vec<(String, f64)>,
    sections: Vec<(String, Vec<(String, f64)>)>,
    entries: Vec<(String, BenchStats)>,
    comparisons: Vec<Comparison>,
}

impl BenchReport {
    /// Creates an empty report tagged with `schema`
    /// (e.g. `mcdvfs-bench/sweep-v2`).
    #[must_use]
    pub fn new(schema: &str) -> Self {
        Self {
            schema: schema.to_string(),
            meta: Vec::new(),
            sections: Vec::new(),
            entries: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// Records a standalone timing.
    pub fn entry(&mut self, name: &str, stats: BenchStats) {
        self.entries.push((name.to_string(), stats));
    }

    /// Records a numeric side fact (connection counts, throughput in
    /// req/s, derived ratios) the latency rows cannot carry. Rendered as
    /// a top-level `"meta"` object; last write per key wins.
    pub fn note(&mut self, key: &str, value: f64) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_string(), value));
        }
    }

    /// Records a named group of numeric facts rendered as its own
    /// top-level object (e.g. a `"telemetry"` cross-check block).
    /// Re-recording a section name replaces the whole section.
    pub fn section(&mut self, name: &str, entries: &[(&str, f64)]) {
        let rows: Vec<(String, f64)> = entries
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = rows;
        } else {
            self.sections.push((name.to_string(), rows));
        }
    }

    /// Records a baseline-vs-optimized pair and prints the speedup.
    pub fn compare(&mut self, name: &str, baseline: BenchStats, optimized: BenchStats) {
        let c = Comparison {
            name: name.to_string(),
            baseline,
            optimized,
        };
        println!(
            "{:<44} {:>6.2}x  ({} -> {})",
            format!("speedup/{name}"),
            c.speedup(),
            fmt_duration(baseline.mean),
            fmt_duration(optimized.mean),
        );
        self.comparisons.push(c);
    }

    /// The recorded comparisons, in insertion order.
    #[must_use]
    pub fn comparisons(&self) -> &[Comparison] {
        &self.comparisons
    }

    /// Serializes the report (hand-rolled: the workspace builds offline,
    /// without serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let stats_json = |s: &BenchStats| {
            format!(
                "{{\"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}",
                s.mean.as_nanos(),
                s.p50.as_nanos(),
                s.p95.as_nanos(),
                s.max.as_nanos()
            )
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(&self.schema)));
        // Whole numbers render without a fraction so counts stay
        // greppable; ratios keep three decimals.
        let number = |value: f64| {
            if (value.fract() == 0.0) && value.abs() < 1e15 {
                format!("{}", value as i64)
            } else {
                format!("{value:.3}")
            }
        };
        let flat_object = |rows: &[(String, f64)]| {
            let mut body = String::new();
            for (i, (key, value)) in rows.iter().enumerate() {
                let sep = if i + 1 < rows.len() { ", " } else { "" };
                body.push_str(&format!("\"{}\": {}{sep}", escape(key), number(*value)));
            }
            body
        };
        if !self.meta.is_empty() {
            out.push_str(&format!("  \"meta\": {{{}}},\n", flat_object(&self.meta)));
        }
        for (name, rows) in &self.sections {
            out.push_str(&format!(
                "  \"{}\": {{{}}},\n",
                escape(name),
                flat_object(rows)
            ));
        }
        out.push_str("  \"entries\": [\n");
        for (i, (name, stats)) in self.entries.iter().enumerate() {
            let sep = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"stats\": {}}}{sep}\n",
                escape(name),
                stats_json(stats)
            ));
        }
        out.push_str("  ],\n  \"comparisons\": [\n");
        for (i, c) in self.comparisons.iter().enumerate() {
            let sep = if i + 1 < self.comparisons.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"baseline\": {}, \"optimized\": {}, \
                 \"speedup\": {:.3}}}{sep}\n",
                escape(&c.name),
                stats_json(&c.baseline),
                stats_json(&c.optimized),
                c.speedup()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Human formatting with an adaptive unit (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean_ns: u64) -> BenchStats {
        let d = Duration::from_nanos(mean_ns);
        BenchStats {
            mean: d,
            p50: d,
            p95: d,
            max: d,
        }
    }

    #[test]
    fn bench_returns_ordered_stats() {
        let qb = QuickBench::smoke();
        let s = qb.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..std::hint::black_box(100u64) {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        });
        assert!(s.mean > Duration::ZERO);
        assert!(s.p50 <= s.max);
        assert!(s.p95 <= s.max);
        assert!(s.mean <= s.max);
    }

    #[test]
    fn stats_from_histogram_summarize_the_distribution() {
        let mut h = Histogram::new(duration_edges_ns());
        for _ in 0..95 {
            h.add(1_000.0);
        }
        for _ in 0..5 {
            h.add(2_000_000.0);
        }
        let s = BenchStats::from_histogram(&h).expect("non-empty");
        assert_eq!(s.max, Duration::from_nanos(2_000_000));
        assert!(s.p50 < s.p95);
        assert!(s.p95 <= s.max);
        assert!(s.mean > s.p50, "the tail should drag the mean up");
    }

    #[test]
    fn stats_from_empty_histogram_is_none() {
        let h = Histogram::new(duration_edges_ns());
        assert!(BenchStats::from_histogram(&h).is_none());
    }

    #[test]
    fn report_serializes_entries_and_comparisons() {
        let mut r = BenchReport::new("mcdvfs-bench/test-v1");
        r.entry("alpha", stats(1500));
        r.compare("beta", stats(10_000), stats(2_000));
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"mcdvfs-bench/test-v1\""));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"mean_ns\": 1500"));
        assert!(json.contains("\"p95_ns\": 1500"));
        assert!(json.contains("\"baseline\": {\"mean_ns\": 10000"));
        assert!(json.contains("\"optimized\": {\"mean_ns\": 2000"));
        assert!(json.contains("\"speedup\": 5.000"));
        assert_eq!(r.comparisons().len(), 1);
        assert!((r.comparisons()[0].speedup() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn report_renders_named_sections_and_replaces_on_rewrite() {
        let mut r = BenchReport::new("s");
        r.note("connections", 8.0);
        r.section("telemetry", &[("server_total", 100.0), ("p95_ratio", 0.5)]);
        r.section("telemetry", &[("server_total", 200.0)]);
        let json = r.to_json();
        assert!(json.contains("\"meta\": {\"connections\": 8}"));
        assert!(json.contains("\"telemetry\": {\"server_total\": 200}"));
        assert!(!json.contains("p95_ratio"), "rewrite replaces the section");
    }

    #[test]
    fn report_escapes_quotes_in_names() {
        let mut r = BenchReport::new("s");
        r.entry("has \"quotes\"", stats(1));
        assert!(r.to_json().contains("has \\\"quotes\\\""));
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
