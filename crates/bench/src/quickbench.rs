//! A dependency-free wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the Criterion dependency was replaced
//! with this minimal runner: each bench warms up briefly, sizes an
//! iteration batch to the measurement window, and reports min/mean/max
//! per-iteration time. The `benches/*.rs` targets declare
//! `harness = false` and drive it from a plain `main`.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_bench::quickbench::QuickBench;
//!
//! let qb = QuickBench::smoke(); // tiny windows, for tests/doctests
//! qb.bench("noop", || std::hint::black_box(1 + 1));
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock bench runner with fixed warm-up and measurement windows.
#[derive(Debug, Clone)]
pub struct QuickBench {
    warmup: Duration,
    measure: Duration,
}

impl Default for QuickBench {
    fn default() -> Self {
        Self::new()
    }
}

impl QuickBench {
    /// Default windows: 200 ms warm-up, 600 ms measurement.
    #[must_use]
    pub fn new() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(600),
        }
    }

    /// Tiny windows for smoke-testing the harness itself.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    /// Runs `f` repeatedly and prints per-iteration statistics.
    ///
    /// Returns the mean per-iteration time so callers (and tests) can make
    /// assertions about it.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        // Warm-up, also yielding a first per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters;

        // Size batches so each one is ~1/20th of the measurement window.
        let per_batch = (self.measure.as_nanos() / 20).max(1);
        let batch: u32 = (per_batch / est.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut samples: Vec<Duration> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed() / batch);
        }

        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<44} min {:>12}  mean {:>12}  max {:>12}  ({} batches x {batch} iters)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len(),
        );
        mean
    }
}

/// Human formatting with an adaptive unit (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let qb = QuickBench::smoke();
        let mean = qb.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
