//! Shared harness for the figure-regeneration binaries and the
//! wall-clock benches under `benches/` (see [`quickbench`]).
//!
//! Every figure and table of the paper's evaluation has a binary under
//! `src/bin/` that prints the same rows/series the paper reports and writes
//! a CSV copy under `results/` (override with the `MCDVFS_RESULTS`
//! environment variable):
//!
//! ```text
//! cargo run -p mcdvfs-bench --bin fig08_transition_counts
//! ```
//!
//! The helpers here centralize platform construction, grid
//! characterization, and output formatting so the binaries stay small and
//! identical in style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod provenance;
pub mod quickbench;

pub use provenance::{
    checksum_string, fnv1a64, ArtifactEntry, Harness, Json, Manifest, PROFILE_ENV,
};

use mcdvfs_core::report::Table;
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::{Benchmark, SampleTrace};
use std::path::PathBuf;
use std::sync::Arc;

/// The inefficiency budgets the paper's figures sweep.
pub const PAPER_BUDGETS: [f64; 3] = [1.0, 1.3, 1.6];

/// The cluster thresholds the paper's figures sweep.
pub const PAPER_THRESHOLDS: [f64; 3] = [0.01, 0.03, 0.05];

/// Directory that CSV mirrors of the printed data land in.
///
/// `cargo test`/`cargo bench` run their binaries with the *package* root
/// as cwd while `cargo run` keeps the caller's, so a bare relative
/// `results` would scatter artifacts depending on the entry point.
/// Anchor on the workspace root instead; `MCDVFS_RESULTS` overrides.
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("MCDVFS_RESULTS") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|workspace| workspace.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// The simulated platform every experiment runs on.
#[must_use]
pub fn platform() -> System {
    System::galaxy_nexus_class()
}

/// Characterizes `benchmark`'s full trace on the coarse 70-setting grid —
/// the paper's "70 simulations per benchmark".
#[must_use]
pub fn characterize(benchmark: Benchmark) -> (Arc<CharacterizationGrid>, SampleTrace) {
    characterize_on(benchmark, FrequencyGrid::coarse())
}

/// Characterizes `benchmark` on an explicit grid (the fine 496-setting grid
/// for the Figure 12 sensitivity study).
#[must_use]
pub fn characterize_on(
    benchmark: Benchmark,
    grid: FrequencyGrid,
) -> (Arc<CharacterizationGrid>, SampleTrace) {
    let trace = benchmark.trace();
    let data = Arc::new(CharacterizationGrid::characterize_auto(
        &platform(),
        &trace,
        grid,
    ));
    (data, trace)
}

/// [`characterize`] with the harness profiler attached, so figure profiles
/// show the characterization phase alongside the sweep phases. The
/// characterization itself is bit-identical to the unprofiled one.
#[must_use]
pub fn characterize_for(
    harness: &Harness,
    benchmark: Benchmark,
) -> (Arc<CharacterizationGrid>, SampleTrace) {
    characterize_on_for(harness, benchmark, FrequencyGrid::coarse())
}

/// [`characterize_on`] with the harness profiler attached.
#[must_use]
pub fn characterize_on_for(
    harness: &Harness,
    benchmark: Benchmark,
    grid: FrequencyGrid,
) -> (Arc<CharacterizationGrid>, SampleTrace) {
    let trace = benchmark.trace();
    let data = Arc::new(CharacterizationGrid::characterize_profiled(
        &platform(),
        &trace,
        grid,
        CharacterizationGrid::default_threads(),
        harness.profiler(),
    ));
    (data, trace)
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, caption: &str) {
    println!("==============================================================");
    println!("{figure} — {caption}");
    println!("(reproduction of Begum et al., IISWC 2015)");
    println!("==============================================================");
}

/// Prints one table through `harness`, mirroring it to
/// `results/<name>.csv` and recording the artifact's provenance in
/// `results/MANIFEST.json` — see [`Harness::emit_artifact`]. This is how
/// every figure/ablation binary writes its outputs.
pub fn emit_artifact(harness: &Harness, table: &Table, name: &str) {
    harness.emit_artifact(table, name);
}

/// Prints a table and mirrors it to `results/<name>.csv`, reporting the
/// path written. Prefer [`emit_artifact`], which additionally records the
/// artifact in the provenance manifest.
pub fn emit(table: &Table, name: &str) {
    println!("{}", table.to_text());
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv written to {}]", path.display()),
        Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
    }
    println!();
}

/// Shared driver for the Figure 4/5 cluster plots: per-sample cluster
/// frequency bands at budgets {1.0, 1.3} x thresholds {1%, 5%}, printed,
/// mirrored to CSV under `csv_prefix`, and recorded in the provenance
/// manifest through `harness`.
pub fn clusters_figure(harness: &mut Harness, benchmark: Benchmark, csv_prefix: &str) {
    use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};

    harness.note("benchmark", benchmark.name());
    harness.note("grid", "coarse-70");
    harness.note("budgets", "1.0,1.3");
    harness.note("thresholds", "0.01,0.05");
    let (data, _) = characterize_for(harness, benchmark);
    for (budget_v, thr) in [(1.0, 0.01), (1.0, 0.05), (1.3, 0.01), (1.3, 0.05)] {
        let budget = InefficiencyBudget::bounded(budget_v).expect("valid budget");
        let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
        let regions = stable_regions(&clusters);

        let mut t = Table::new(vec![
            "sample", "opt_cpu", "opt_mem", "cpu_lo", "cpu_hi", "mem_lo", "mem_hi", "members",
        ]);
        for c in &clusters {
            let (cpu_lo, cpu_hi) = c.cpu_range_mhz(&data);
            let (mem_lo, mem_hi) = c.mem_range_mhz(&data);
            t.row(vec![
                c.sample.to_string(),
                c.optimal.setting.cpu.mhz().to_string(),
                c.optimal.setting.mem.mhz().to_string(),
                cpu_lo.to_string(),
                cpu_hi.to_string(),
                mem_lo.to_string(),
                mem_hi.to_string(),
                c.len().to_string(),
            ]);
        }
        println!(
            "--- {benchmark}: I={budget_v}, threshold={}% -> {} stable regions, mean cluster size {:.1}",
            thr * 100.0,
            regions.len(),
            clusters.iter().map(|c| c.len() as f64).sum::<f64>() / clusters.len() as f64,
        );
        emit_artifact(
            harness,
            &t,
            &format!(
                "{csv_prefix}_i{}_thr{}",
                budget_v.to_string().replace('.', "_"),
                (thr * 100.0) as u32
            ),
        );
    }
}

/// Renders a per-sample frequency series as a compact sparkline-style row:
/// one character per sample, binned across the domain's range.
#[must_use]
pub fn freq_sparkline(mhz: &[u32], lo: u32, hi: u32) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    mhz.iter()
        .map(|&f| {
            let t = f64::from(f.clamp(lo, hi) - lo) / f64::from((hi - lo).max(1));
            GLYPHS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_glyph_range() {
        let s = freq_sparkline(&[100, 550, 1000], 100, 1000);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let s = freq_sparkline(&[50, 2000], 100, 1000);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn characterize_produces_full_grid() {
        let (data, trace) = characterize(Benchmark::Bzip2);
        assert_eq!(data.n_settings(), 70);
        assert_eq!(data.n_samples(), trace.len());
    }

    #[test]
    fn results_dir_is_nonempty_path() {
        assert!(!results_dir().as_os_str().is_empty());
    }
}
