//! Ablation: `Emin` estimation strategies (paper Section II-B).
//!
//! Compares the brute-force search, the memoized lookup table and the
//! learning predictor on scan count (the expensive part the tuning-overhead
//! model charges for) and prediction error.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::emin::{BruteForceEmin, EminEstimator, LearningEmin, LookupTableEmin};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Ablation: Emin estimation",
        "grid scans and error per strategy (brute force / lookup / learning)",
    );

    let mut harness = Harness::new("ablation_emin");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    let mut t = Table::new(vec![
        "benchmark",
        "samples",
        "brute_scans",
        "lookup_scans",
        "learning_scans",
        "learning_predictions",
        "learning_error_%",
    ]);
    for benchmark in Benchmark::featured() {
        let (data, _) = characterize_for(&harness, benchmark);
        let mut brute = BruteForceEmin::new();
        let mut lookup = LookupTableEmin::new();
        let mut learning = LearningEmin::new(0.3);
        for s in 0..data.n_samples() {
            let exact = brute.emin(&data, s);
            let memo = lookup.emin(&data, s);
            let _predicted = learning.emin(&data, s);
            assert_eq!(exact, memo, "lookup must agree with brute force");
        }
        // Second pass: lookup is free, learning predicts from warm buckets.
        for s in 0..data.n_samples() {
            let _ = lookup.emin(&data, s);
            let _ = learning.emin(&data, s);
        }
        t.row(vec![
            benchmark.name().to_string(),
            data.n_samples().to_string(),
            brute.scans().to_string(),
            lookup.scans().to_string(),
            learning.scans().to_string(),
            learning.predictions().to_string(),
            fmt(learning.validation_error(&data) * 100.0, 2),
        ]);
    }
    emit_artifact(&harness, &t, "ablation_emin");
    println!(
        "brute force scans every sample; the lookup table scans each distinct sample once;\n\
         the learning predictor scans once per phase signature and predicts the rest."
    );
    harness.finish();
}
