//! Figure 7: stable regions of gcc and lbm for thresholds {3%, 5%} across
//! inefficiency budgets {1, 1.3, ∞}.
//!
//! Higher thresholds lengthen stable regions (fewer transitions); at the
//! unconstrained budget the system runs at the maximum setting throughout,
//! so no transitions remain regardless of threshold.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::Table;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Figure 7",
        "stable regions of gcc and lbm across budgets and thresholds",
    );

    let mut harness = Harness::new("fig07_stable_regions_gcc_lbm");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "gcc,lbm");
    harness.note("budgets", "1.0,1.3,inf");
    harness.note("thresholds", "0.03,0.05");
    let budgets: Vec<(&str, InefficiencyBudget)> = vec![
        ("1", InefficiencyBudget::bounded(1.0).expect("valid")),
        ("1.3", InefficiencyBudget::bounded(1.3).expect("valid")),
        ("inf", InefficiencyBudget::Unconstrained),
    ];

    let mut t = Table::new(vec![
        "benchmark",
        "budget",
        "threshold_%",
        "regions",
        "transitions",
        "mean_region_len",
    ]);
    for benchmark in [Benchmark::Gcc, Benchmark::Lbm] {
        let (data, _) = characterize_for(&harness, benchmark);
        for (label, budget) in &budgets {
            for thr in [0.03, 0.05] {
                let clusters = cluster_series(&data, *budget, thr).expect("valid threshold");
                let regions = stable_regions(&clusters);
                let mean_len =
                    regions.iter().map(|r| r.len() as f64).sum::<f64>() / regions.len() as f64;
                t.row(vec![
                    benchmark.name().to_string(),
                    (*label).to_string(),
                    format!("{}", (thr * 100.0) as u32),
                    regions.len().to_string(),
                    (regions.len() - 1).to_string(),
                    format!("{mean_len:.1}"),
                ]);
            }
        }
    }
    emit_artifact(&harness, &t, "fig07_stable_regions_gcc_lbm");
    harness.finish();
}
