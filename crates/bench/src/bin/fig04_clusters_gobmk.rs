//! Figure 4: performance clusters for gobmk at budgets {1.0, 1.3} and
//! cluster thresholds {1%, 5%}.
//!
//! For each sample, the cluster's CPU and memory frequency bands (the
//! shaded regions the paper plots). Larger thresholds widen the bands and
//! lengthen stable regions; the budget's effect is workload dependent.

use mcdvfs_bench::{banner, clusters_figure, Harness};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner("Figure 4", "performance clusters for gobmk");
    let mut harness = Harness::new("fig04_clusters_gobmk");
    clusters_figure(&mut harness, Benchmark::Gobmk, "fig04_clusters_gobmk");
    harness.finish();
}
