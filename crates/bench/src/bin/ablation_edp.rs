//! Ablation: why Energy×Delayⁿ cannot serve as the energy constraint
//! (paper Section II).
//!
//! The paper argues an effective constraint must be (1) relative to the
//! application's inherent energy needs and (2) independent of applications
//! and devices — and EDP, built from absolute energy, is neither. This
//! binary quantifies it: tuning each benchmark to its per-sample
//! EDP-/ED²P-optimal point lands at a *different* inefficiency per
//! workload, so no EDP target expresses "spend at most X% extra energy",
//! while an inefficiency budget means the same thing everywhere.

use mcdvfs_bench::{banner, characterize, emit};
use mcdvfs_core::metrics::edn_optimal_inefficiencies;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Ablation: EDP as a constraint",
        "inefficiency reached by EDP/ED2P-optimal tuning per workload",
    );

    let mut t = Table::new(vec![
        "benchmark",
        "edp_opt_mean_I",
        "edp_opt_min_I",
        "edp_opt_max_I",
        "ed2p_opt_mean_I",
    ]);
    let mut means = Vec::new();
    for benchmark in Benchmark::featured() {
        let (data, _) = characterize(benchmark);
        let edp = edn_optimal_inefficiencies(&data, 1);
        let ed2p = edn_optimal_inefficiencies(&data, 2);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
        means.push(mean(&edp));
        t.row(vec![
            benchmark.name().to_string(),
            fmt(mean(&edp), 3),
            fmt(min(&edp), 3),
            fmt(max(&edp), 3),
            fmt(mean(&ed2p), 3),
        ]);
    }
    emit(&t, "ablation_edp");

    let spread = means.iter().copied().fold(0.0f64, f64::max)
        - means.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "EDP-optimal tuning spans a {spread:.3}-wide band of inefficiencies across the\n\
         suite — the same \"metric target\" buys a different energy premium per app,\n\
         which is exactly why the paper introduces the inefficiency budget instead."
    );
}
