//! Ablation: why Energy×Delayⁿ cannot serve as the energy constraint
//! (paper Section II).
//!
//! The paper argues an effective constraint must be (1) relative to the
//! application's inherent energy needs and (2) independent of applications
//! and devices — and EDP, built from absolute energy, is neither. This
//! binary quantifies it: tuning each benchmark to its per-sample
//! EDP-/ED²P-optimal point lands at a *different* inefficiency per
//! workload, so no EDP target expresses "spend at most X% extra energy",
//! while an inefficiency budget means the same thing everywhere.
//!
//! The benchmarks are independent, so they fan out across workers (each
//! worker characterizes its own benchmark sequentially to avoid nested
//! thread pools); rows stay in suite order.

use mcdvfs_bench::{banner, emit_artifact, platform, Harness};
use mcdvfs_core::metrics::edn_optimal_inefficiencies;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::sweep::fan_out_profiled;
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Ablation: EDP as a constraint",
        "inefficiency reached by EDP/ED2P-optimal tuning per workload",
    );

    let mut harness = Harness::new("ablation_edp");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    let benchmarks = Benchmark::featured();
    let stats = fan_out_profiled(
        &benchmarks,
        CharacterizationGrid::default_threads(),
        harness.profiler(),
        0,
        "edp",
        |&benchmark, _| {
            let data = CharacterizationGrid::characterize(
                &platform(),
                &benchmark.trace(),
                FrequencyGrid::coarse(),
            );
            let edp = edn_optimal_inefficiencies(&data, 1);
            let ed2p = edn_optimal_inefficiencies(&data, 2);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
            (mean(&edp), min(&edp), max(&edp), mean(&ed2p))
        },
    );

    let mut t = Table::new(vec![
        "benchmark",
        "edp_opt_mean_I",
        "edp_opt_min_I",
        "edp_opt_max_I",
        "ed2p_opt_mean_I",
    ]);
    let mut means = Vec::new();
    for (benchmark, (edp_mean, edp_min, edp_max, ed2p_mean)) in benchmarks.iter().zip(&stats) {
        means.push(*edp_mean);
        t.row(vec![
            benchmark.name().to_string(),
            fmt(*edp_mean, 3),
            fmt(*edp_min, 3),
            fmt(*edp_max, 3),
            fmt(*ed2p_mean, 3),
        ]);
    }
    emit_artifact(&harness, &t, "ablation_edp");

    let spread = means.iter().copied().fold(0.0f64, f64::max)
        - means.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "EDP-optimal tuning spans a {spread:.3}-wide band of inefficiencies across the\n\
         suite — the same \"metric target\" buys a different energy premium per app,\n\
         which is exactly why the paper introduces the inefficiency budget instead."
    );
    harness.finish();
}
