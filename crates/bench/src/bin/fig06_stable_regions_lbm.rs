//! Figure 6: stable regions and transitions for lbm, threshold 5%,
//! inefficiency budget 1.3.
//!
//! Prints each stable region (start, end, chosen setting) with the
//! transition markers between them: within a region both CPU and memory
//! frequencies stay constant.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::Table;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Figure 6",
        "stable regions and transitions for lbm (I=1.3, threshold 5%)",
    );

    let mut harness = Harness::new("fig06_stable_regions_lbm");
    harness.note("grid", "coarse-70");
    harness.note("benchmark", "lbm");
    harness.note("budget", "1.3");
    harness.note("threshold", "0.05");
    let (data, _) = characterize_for(&harness, Benchmark::Lbm);
    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let clusters = cluster_series(&data, budget, 0.05).expect("valid threshold");
    let regions = stable_regions(&clusters);

    let mut t = Table::new(vec![
        "region",
        "start",
        "end",
        "length",
        "cpu_mhz",
        "mem_mhz",
        "available_settings",
    ]);
    for (i, r) in regions.iter().enumerate() {
        let chosen = r.chosen_setting(&data);
        t.row(vec![
            i.to_string(),
            r.start.to_string(),
            r.end.to_string(),
            r.len().to_string(),
            chosen.cpu.mhz().to_string(),
            chosen.mem.mhz().to_string(),
            r.available_indices().len().to_string(),
        ]);
    }
    emit_artifact(&harness, &t, "fig06_stable_regions_lbm");

    println!(
        "{} regions over {} samples -> {} transitions (dashed markers in the paper's plot)",
        regions.len(),
        data.n_samples(),
        regions.len() - 1
    );
    let marks: String = (0..data.n_samples())
        .map(|s| {
            if regions.iter().any(|r| r.start == s && s != 0) {
                '|'
            } else {
                '·'
            }
        })
        .collect();
    println!("transition marks: {marks}");
    harness.finish();
}
