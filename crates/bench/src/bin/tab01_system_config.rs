//! Table I (Section III configuration block): the simulated system.
//!
//! The paper has no numbered tables; this binary emits its Section III
//! platform description as a table so the configuration is auditable.

use mcdvfs_bench::{banner, emit_artifact, Harness};
use mcdvfs_core::report::Table;
use mcdvfs_dram::LpddrTimings;
use mcdvfs_types::{CpuFreq, FrequencyGrid, MemFreq};

fn main() {
    banner(
        "Table I",
        "simulated system configuration (paper Section III)",
    );

    let coarse = FrequencyGrid::coarse();
    let fine = FrequencyGrid::fine();
    let timings = LpddrTimings::micron_lpddr3();
    let vf = mcdvfs_cpu::VfCurve::pandaboard();

    let mut t = Table::new(vec!["component", "parameter", "value"]);
    let mut row = |c: &str, p: &str, v: String| {
        t.row(vec![c.into(), p.into(), v]);
    };
    row(
        "CPU",
        "core model",
        "ARM Cortex-A15-like, 3-wide out-of-order".into(),
    );
    row("CPU", "clock domain", "100-1000 MHz (DVFS)".into());
    row(
        "CPU",
        "voltage",
        format!(
            "{:.2} V @ 100 MHz .. {:.2} V @ 1000 MHz",
            vf.voltage(CpuFreq::from_mhz(100)).value(),
            vf.voltage(CpuFreq::from_mhz(1000)).value()
        ),
    );
    row(
        "L1 cache",
        "geometry",
        "64 KB, 4-way, 64 B lines, 2-cycle access".into(),
    );
    row(
        "L2 cache",
        "geometry",
        "2 MB unified, 16-way, 64 B lines, 12-cycle hit".into(),
    );
    row(
        "DRAM",
        "device",
        "LPDDR3 x32, single channel, single rank, open page".into(),
    );
    row(
        "DRAM",
        "clock domain",
        "200-800 MHz (DFS, fixed VDD1=1.8 V / VDD2=1.2 V)".into(),
    );
    row(
        "DRAM",
        "tRCD/tRP/tRAS",
        format!(
            "{}/{}/{} ns",
            timings.trcd_ns, timings.trp_ns, timings.tras_ns
        ),
    );
    row(
        "DRAM",
        "tRFC/tREFI",
        format!("{}/{} ns", timings.trfc_ns, timings.trefi_ns),
    );
    row(
        "DRAM",
        "peak bandwidth @800 MHz",
        format!(
            "{:.1} GB/s",
            timings.peak_bandwidth(MemFreq::from_mhz(800)) / 1e9
        ),
    );
    row("grid", "coarse (main evaluation)", format!("{coarse}"));
    row("grid", "fine (Section VI-D)", format!("{fine}"));
    row(
        "sampling",
        "granularity",
        "10 M user-mode instructions per sample".into(),
    );
    row(
        "workloads",
        "suite",
        "12 INT + 9 FP SPEC CPU2006-like synthetic traces".into(),
    );

    let mut harness = Harness::new("tab01_system_config");
    harness.note("grids", "coarse-70,fine-496");
    emit_artifact(&harness, &t, "tab01_system_config");
    harness.finish();
}
