//! Policy evaluation: oracle-gap scorecards for every shipped online
//! policy over every shipped scenario trace.
//!
//! Each scenario's workload is characterized on the coarse grid, the ideal
//! oracle (exact optimal tracking, no overheads) is replayed as the
//! reference, and every `mcdvfs-policy` policy is replayed through the
//! governed runner *with* the paper-calibrated tuning/transition overheads.
//! The resulting [`PolicyScorecard`]s land in two fig-style CSVs and in
//! `results/BENCH_policy.json` (schema `mcdvfs/policy-v1`).
//!
//! `--smoke` (or `MCDVFS_BENCH_SMOKE=1`) re-runs the evaluation and
//! *validates* the committed report instead of overwriting it: the schema
//! must match, every policy × scenario row must be present, no policy may
//! exceed the ideal oracle's energy by more than [`ENERGY_CEILING`], and
//! `reactive` must transition less than `deadline` on the load-burst
//! scenario. Any violation exits non-zero (the CI `policy-smoke` gate).

use mcdvfs_bench::{banner, emit_artifact, platform, results_dir, Harness, Json};
use mcdvfs_core::governor::OracleOptimalGovernor;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget, PolicyScorecard};
use mcdvfs_policy::{build_policy, PolicyGovernor, SHIPPED_POLICIES};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Scenario;
use std::sync::Arc;

/// Inefficiency budget every replay runs under (the paper's middle value).
const BUDGET: f64 = 1.3;

/// CI-gated ceiling on `energy_vs_oracle`: no shipped policy may consume
/// more than this multiple of the ideal oracle's energy on any shipped
/// scenario. Documented in DESIGN.md §14.
const ENERGY_CEILING: f64 = 1.5;

/// Report schema tag (the "policy-v1" report).
const SCHEMA: &str = "mcdvfs/policy-v1";

struct Row {
    scorecard: PolicyScorecard,
    decisions: u64,
    budget_exhaustions: u64,
}

/// Replays every shipped policy (plus the paper-overhead oracle, as a
/// labelled baseline row) over every shipped scenario.
fn evaluate() -> Vec<Row> {
    let budget = InefficiencyBudget::bounded(BUDGET).expect("valid budget");
    let ideal = GovernedRun::without_overheads();
    let overheads = GovernedRun::with_paper_overheads();
    let mut rows = Vec::new();
    for scenario in Scenario::all() {
        let data = Arc::new(CharacterizationGrid::characterize_auto(
            &platform(),
            scenario.trace(),
            FrequencyGrid::coarse(),
        ));
        let reference = ideal.execute(
            &data,
            scenario.trace(),
            &mut OracleOptimalGovernor::new(Arc::clone(&data), budget),
        );
        // The paper oracle under the same overheads the policies pay, so
        // the table shows what perfect knowledge alone is worth.
        let deadlines = PolicyGovernor::new(
            build_policy("deadline").expect("shipped policy"),
            &scenario,
            &data,
            budget,
        )
        .deadlines();
        rows.push(Row {
            scorecard: PolicyScorecard::score(
                &overheads,
                &data,
                scenario.trace(),
                &mut OracleOptimalGovernor::new(Arc::clone(&data), budget),
                &deadlines,
                scenario.name(),
                &reference,
            ),
            decisions: scenario.len() as u64,
            budget_exhaustions: 0,
        });
        for name in SHIPPED_POLICIES {
            let mut governor = PolicyGovernor::new(
                build_policy(name).expect("shipped policy"),
                &scenario,
                &data,
                budget,
            );
            let scorecard = PolicyScorecard::score(
                &overheads,
                &data,
                scenario.trace(),
                &mut governor,
                &deadlines,
                scenario.name(),
                &reference,
            );
            let counters = governor.counters();
            rows.push(Row {
                scorecard,
                decisions: counters.decisions,
                budget_exhaustions: counters.budget_exhaustions,
            });
        }
    }
    rows
}

/// Short policy label for report keys: strips the adapter's
/// `policy-<name>@<scenario>` wrapping back to `<name>`.
fn policy_label(row: &Row) -> String {
    let name = &row.scorecard.policy;
    name.strip_prefix("policy-")
        .and_then(|rest| rest.strip_suffix(&format!("@{}", row.scorecard.scenario)))
        .unwrap_or(name)
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke =
        args.iter().any(|a| a == "--smoke") || std::env::var_os("MCDVFS_BENCH_SMOKE").is_some();
    banner(
        "Policy eval",
        "online policies vs. the ideal oracle on the shipped scenarios",
    );

    let rows = evaluate();

    let mut gaps = Table::new(vec![
        "scenario",
        "policy",
        "energy_vs_emin",
        "energy_vs_oracle",
        "time_vs_oracle",
        "deadline_misses",
        "searches",
        "decisions",
        "budget_exhaustions",
        "overhead_time_%",
    ]);
    let mut transitions = Table::new(vec![
        "scenario",
        "policy",
        "joint",
        "cpu",
        "mem",
        "median_gap_ms",
    ]);
    for row in &rows {
        let sc = &row.scorecard;
        let label = policy_label(row);
        gaps.row(vec![
            sc.scenario.clone(),
            label.clone(),
            fmt(sc.energy_vs_emin, 4),
            fmt(sc.energy_vs_oracle, 4),
            fmt(sc.time_vs_oracle, 4),
            sc.deadline_misses.to_string(),
            sc.searches.to_string(),
            row.decisions.to_string(),
            row.budget_exhaustions.to_string(),
            fmt(sc.overhead_fraction * 100.0, 3),
        ]);
        transitions.row(vec![
            sc.scenario.clone(),
            label,
            sc.transitions.to_string(),
            sc.cpu_transitions.to_string(),
            sc.mem_transitions.to_string(),
            // Median gap between hardware transitions, fig08-style.
            median_gap_label(sc),
        ]);
    }

    let path = results_dir().join("BENCH_policy.json");
    if smoke {
        println!("{}", gaps.to_text());
        println!("{}", transitions.to_text());
        enforce_smoke_gate(&rows, &path);
        return;
    }

    let mut harness = Harness::new("policy_eval");
    harness.note("schema", SCHEMA);
    harness.note("grid", "coarse-70");
    harness.note("budget", BUDGET);
    harness.note("scenarios", Scenario::NAMES.join(","));
    harness.note("policies", SHIPPED_POLICIES.join(","));
    harness.note("energy_ceiling", ENERGY_CEILING);
    emit_artifact(&harness, &gaps, "policy_scorecards");
    emit_artifact(&harness, &transitions, "policy_transitions");

    let mut report = mcdvfs_bench::quickbench::BenchReport::new(SCHEMA);
    report.note("budget", BUDGET);
    report.note("energy_ceiling", ENERGY_CEILING);
    report.note("policies", SHIPPED_POLICIES.len() as f64);
    report.note("scenarios", Scenario::NAMES.len() as f64);
    for row in &rows {
        let sc = &row.scorecard;
        report.section(
            &format!("{}@{}", policy_label(row), sc.scenario),
            &[
                ("energy_vs_emin", sc.energy_vs_emin),
                ("energy_vs_oracle", sc.energy_vs_oracle),
                ("time_vs_oracle", sc.time_vs_oracle),
                ("deadline_misses", sc.deadline_misses as f64),
                ("transitions", sc.transitions as f64),
                ("cpu_transitions", sc.cpu_transitions as f64),
                ("mem_transitions", sc.mem_transitions as f64),
                ("searches", sc.searches as f64),
                ("decisions", row.decisions as f64),
                ("budget_exhaustions", row.budget_exhaustions as f64),
            ],
        );
    }
    report.write_json(&path).expect("write policy report");
    println!("[json written to {}]", path.display());
    harness.record_file(&path);
    harness.finish();
    println!(
        "gaps are relative to the ideal oracle (exact tracking, no overheads);\n\
         the oracle row pays the same paper-calibrated overheads as the policies."
    );
}

fn median_gap_label(sc: &PolicyScorecard) -> String {
    sc.median_transition_gap
        .map_or_else(|| "-".to_string(), |g| fmt(g * 1e3, 3))
}

/// The CI `policy-smoke` gate.
fn enforce_smoke_gate(rows: &[Row], committed: &std::path::Path) {
    let mut failures: Vec<String> = Vec::new();

    // Live run: every policy must respect the energy ceiling, and reactive
    // must transition less than deadline-driven on the load burst.
    let mut burst_transitions = std::collections::BTreeMap::new();
    for row in rows {
        let sc = &row.scorecard;
        let label = policy_label(row);
        if SHIPPED_POLICIES.contains(&label.as_str()) && sc.energy_vs_oracle > ENERGY_CEILING {
            failures.push(format!(
                "{label}@{}: energy_vs_oracle {:.4} exceeds the {ENERGY_CEILING} ceiling",
                sc.scenario, sc.energy_vs_oracle
            ));
        }
        if sc.scenario == "load_burst" {
            burst_transitions.insert(label, sc.transitions);
        }
    }
    match (
        burst_transitions.get("reactive"),
        burst_transitions.get("deadline"),
    ) {
        (Some(r), Some(d)) if r < d => {
            println!("load_burst transitions: reactive {r} < deadline {d}");
        }
        (Some(r), Some(d)) => failures.push(format!(
            "reactive must transition less than deadline on load_burst ({r} >= {d})"
        )),
        _ => failures.push("load_burst rows missing from the live run".to_string()),
    }

    // Committed report: schema + one row per policy x scenario + ceiling.
    match std::fs::read_to_string(committed)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
    {
        Ok(doc) => {
            match doc.get("schema").and_then(Json::as_str) {
                Some(SCHEMA) => {}
                other => failures.push(format!(
                    "{}: schema {other:?}, expected {SCHEMA:?}",
                    committed.display()
                )),
            }
            for policy in SHIPPED_POLICIES {
                for scenario in Scenario::NAMES {
                    let key = format!("{policy}@{scenario}");
                    let Some(section) = doc.get(&key) else {
                        failures.push(format!("committed report lacks the {key:?} row"));
                        continue;
                    };
                    let gap = section
                        .get("energy_vs_oracle")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::INFINITY);
                    println!("recorded {key:<28} energy_vs_oracle {gap:>7.3}");
                    if gap > ENERGY_CEILING {
                        failures.push(format!(
                            "committed {key}: energy_vs_oracle {gap:.3} exceeds the \
                             {ENERGY_CEILING} ceiling"
                        ));
                    }
                }
            }
        }
        Err(e) => failures.push(format!("cannot read {}: {e}", committed.display())),
    }

    if failures.is_empty() {
        println!("[policy smoke gate passed; committed report left untouched]");
    } else {
        for f in &failures {
            eprintln!("[policy smoke gate] {f}");
        }
        std::process::exit(1);
    }
}
