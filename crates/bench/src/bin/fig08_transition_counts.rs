//! Figure 8: transitions per billion instructions with varying inefficiency
//! budgets and cluster thresholds, across the featured benchmarks.
//!
//! "Tracking the optimal frequency settings results in the highest number
//! of transitions; the number of transitions required decreases with an
//! increase in cluster threshold. The amount of change varies with
//! benchmark and inefficiency budget."

use mcdvfs_bench::{
    banner, characterize_for, emit_artifact, Harness, PAPER_BUDGETS, PAPER_THRESHOLDS,
};
use mcdvfs_core::governor::{OracleClusterGovernor, OracleOptimalGovernor};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::transitions::{
    count_cluster_transitions, count_optimal_transitions, per_billion_instructions,
};
use mcdvfs_core::{cluster_series, GovernedRun, InefficiencyBudget, OptimalFinder};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Figure 8",
        "transitions per billion instructions (optimal vs 1%/3%/5% clusters)",
    );

    let mut harness = Harness::new("fig08_transition_counts");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    harness.note("budgets", "1.0,1.3,1.6");
    harness.note("thresholds", "0.01,0.03,0.05");

    let mut t = Table::new(vec![
        "benchmark",
        "budget",
        "optimal",
        "thr_1%",
        "thr_3%",
        "thr_5%",
    ]);
    for benchmark in Benchmark::featured() {
        let (data, _) = characterize_for(&harness, benchmark);
        let n = data.n_samples();
        for budget_v in PAPER_BUDGETS {
            let budget = InefficiencyBudget::bounded(budget_v).expect("valid budget");
            let optimal = OptimalFinder::new(budget).series(&data);
            let mut cells = vec![
                benchmark.name().to_string(),
                budget_v.to_string(),
                fmt(
                    per_billion_instructions(count_optimal_transitions(&optimal), n),
                    1,
                ),
            ];
            for thr in PAPER_THRESHOLDS {
                let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
                cells.push(fmt(
                    per_billion_instructions(count_cluster_transitions(&clusters), n),
                    1,
                ));
            }
            t.row(cells);
        }
    }
    emit_artifact(&harness, &t, "fig08_transition_counts");
    println!(
        "note: the paper reports this figure for budgets 1.0, 1.3 and 1.6;\n\
         columns are transitions per billion instructions."
    );

    // Governed-run cross-check: replay each benchmark end to end with a run
    // ledger attached and report the transitions the hardware *actually*
    // performed, split by domain, with the median time between them. Every
    // ledger is verified to replay into the run report's totals exactly.
    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let runner = GovernedRun::with_paper_overheads();
    let mut lt = Table::new(vec![
        "benchmark",
        "governor",
        "joint",
        "cpu",
        "mem",
        "median_gap_ms",
    ]);
    for benchmark in Benchmark::featured() {
        let (data, trace) = characterize_for(&harness, benchmark);
        let mut governors: Vec<Box<dyn mcdvfs_core::governor::Governor>> = vec![
            Box::new(OracleOptimalGovernor::new(Arc::clone(&data), budget)),
            Box::new(
                OracleClusterGovernor::new(Arc::clone(&data), budget, 0.05)
                    .expect("valid threshold"),
            ),
        ];
        for governor in &mut governors {
            let acc = runner.execute_accounted(&data, &trace, governor.as_mut());
            lt.row(vec![
                benchmark.name().to_string(),
                acc.report.governor.clone(),
                acc.joint_transitions.to_string(),
                acc.cpu_domain_transitions.to_string(),
                acc.mem_domain_transitions.to_string(),
                acc.median_gap_ms_label(),
            ]);
        }
    }
    println!("--- governed-run ledger: per-domain transitions (budget 1.3) ---");
    emit_artifact(&harness, &lt, "fig08_transition_counts_governed");
    harness.finish();
}
