//! Figure 8: transitions per billion instructions with varying inefficiency
//! budgets and cluster thresholds, across the featured benchmarks.
//!
//! "Tracking the optimal frequency settings results in the highest number
//! of transitions; the number of transitions required decreases with an
//! increase in cluster threshold. The amount of change varies with
//! benchmark and inefficiency budget."

use mcdvfs_bench::{banner, characterize, emit, PAPER_BUDGETS, PAPER_THRESHOLDS};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::transitions::{
    count_cluster_transitions, count_optimal_transitions, per_billion_instructions,
};
use mcdvfs_core::{cluster_series, InefficiencyBudget, OptimalFinder};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Figure 8",
        "transitions per billion instructions (optimal vs 1%/3%/5% clusters)",
    );

    let mut t = Table::new(vec![
        "benchmark", "budget", "optimal", "thr_1%", "thr_3%", "thr_5%",
    ]);
    for benchmark in Benchmark::featured() {
        let (data, _) = characterize(benchmark);
        let n = data.n_samples();
        for budget_v in PAPER_BUDGETS {
            let budget = InefficiencyBudget::bounded(budget_v).expect("valid budget");
            let optimal = OptimalFinder::new(budget).series(&data);
            let mut cells = vec![
                benchmark.name().to_string(),
                budget_v.to_string(),
                fmt(per_billion_instructions(count_optimal_transitions(&optimal), n), 1),
            ];
            for thr in PAPER_THRESHOLDS {
                let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
                cells.push(fmt(
                    per_billion_instructions(count_cluster_transitions(&clusters), n),
                    1,
                ));
            }
            t.row(cells);
        }
    }
    emit(&t, "fig08_transition_counts");
    println!(
        "note: the paper reports this figure for budgets 1.0, 1.3 and 1.6;\n\
         columns are transitions per billion instructions."
    );
}
