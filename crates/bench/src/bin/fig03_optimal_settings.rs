//! Figure 3: the optimal performance point for gobmk across inefficiency
//! budgets.
//!
//! Per sample (10 M instructions): the CPI/MPKI trace and the optimal
//! (CPU, memory) setting under budgets I ∈ {1, 1.3, 1.6, ∞}. At low
//! budgets the optimal follows the application's phases — memory-intensive
//! samples get high memory frequency and lower CPU frequency; the
//! unconstrained budget pins both domains at maximum.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, freq_sparkline, Harness};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{InefficiencyBudget, OptimalFinder};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Figure 3",
        "optimal settings for gobmk across inefficiencies",
    );

    let mut harness = Harness::new("fig03_optimal_settings");
    harness.note("grid", "coarse-70");
    harness.note("benchmark", "gobmk");
    harness.note("budgets", "1.0,1.3,1.6,inf");
    let (data, trace) = characterize_for(&harness, Benchmark::Gobmk);
    let budgets: Vec<(String, InefficiencyBudget)> = vec![
        ("1".into(), InefficiencyBudget::bounded(1.0).unwrap()),
        ("1.3".into(), InefficiencyBudget::bounded(1.3).unwrap()),
        ("1.6".into(), InefficiencyBudget::bounded(1.6).unwrap()),
        ("inf".into(), InefficiencyBudget::Unconstrained),
    ];

    let series: Vec<Vec<_>> = budgets
        .iter()
        .map(|(_, b)| OptimalFinder::new(*b).series(&data))
        .collect();

    let mut t = Table::new(vec![
        "sample", "cpi", "mpki", "cpu@1", "mem@1", "cpu@1.3", "mem@1.3", "cpu@1.6", "mem@1.6",
        "cpu@inf", "mem@inf",
    ]);
    for s in 0..data.n_samples() {
        let chars = trace.get(s).expect("sample in range");
        let mut cells = vec![s.to_string(), fmt(chars.base_cpi, 2), fmt(chars.mpki, 1)];
        for serie in &series {
            cells.push(serie[s].setting.cpu.mhz().to_string());
            cells.push(serie[s].setting.mem.mhz().to_string());
        }
        t.row(cells);
    }
    emit_artifact(&harness, &t, "fig03_optimal_settings_gobmk");

    println!("per-budget frequency traces (one glyph per sample, low→high):");
    for ((label, _), serie) in budgets.iter().zip(&series) {
        let cpu: Vec<u32> = serie.iter().map(|c| c.setting.cpu.mhz()).collect();
        let mem: Vec<u32> = serie.iter().map(|c| c.setting.mem.mhz()).collect();
        println!("I={label:<4} cpu {}", freq_sparkline(&cpu, 100, 1000));
        println!("       mem {}", freq_sparkline(&mem, 200, 800));
    }
    let changes = |serie: &[mcdvfs_core::OptimalChoice]| {
        serie
            .windows(2)
            .filter(|w| w[0].setting != w[1].setting)
            .count()
    };
    println!();
    for ((label, _), serie) in budgets.iter().zip(&series) {
        println!(
            "I={label:<4}: optimal changes {} times over {} samples",
            changes(serie),
            serie.len()
        );
    }
    harness.finish();
}
