//! Figure 12: sensitivity of performance clusters to the frequency step
//! size — the coarse 70-setting grid versus the fine 496-setting grid
//! (30 MHz CPU / 40 MHz memory steps), gobmk at I=1.3, threshold 1%.
//!
//! Finer steps offer more (and better) choices, so the average number of
//! samples one setting can serve decreases, while the performance gain
//! with free tuning stays below 1%.
//!
//! Per grid, one [`SweepEngine`] derives the optimal series once and
//! shares it between the cluster/region statistics and the governed run.

use mcdvfs_bench::{banner, characterize_on_for, emit_artifact, Harness};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget, SweepEngine};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Figure 12",
        "performance clusters at two frequency step sizes (gobmk, I=1.3, 1%)",
    );

    let mut harness = Harness::new("fig12_step_sensitivity");
    harness.note("grids", "coarse-70,fine-496");
    harness.note("benchmark", "gobmk");
    harness.note("budget", "1.3");
    harness.note("threshold", "0.01");
    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let runner = GovernedRun::without_overheads();

    let mut t = Table::new(vec![
        "grid",
        "settings",
        "mean_cluster_size",
        "stable_regions",
        "mean_region_len",
        "total_time_s",
    ]);
    let mut times = Vec::new();
    for (label, grid) in [
        ("coarse", FrequencyGrid::coarse()),
        ("fine", FrequencyGrid::fine()),
    ] {
        let (data, trace) = characterize_on_for(&harness, Benchmark::Gobmk, grid);
        let engine = SweepEngine::new(data).with_profiler(Arc::clone(harness.profiler()));
        let outcome = &engine.sweep(&[budget], &[0.01]).expect("valid threshold")[0];
        let report = &engine.governed_reports(&runner, &trace, &[budget])[0];
        times.push(report.total_time().value());
        t.row(vec![
            label.to_string(),
            grid.len().to_string(),
            fmt(outcome.mean_cluster_size(), 1),
            outcome.regions.len().to_string(),
            fmt(outcome.mean_region_len(), 2),
            fmt(report.total_time().value(), 4),
        ]);
    }
    emit_artifact(&harness, &t, "fig12_step_sensitivity");

    let improvement = (times[0] - times[1]) / times[0] * 100.0;
    println!(
        "performance improvement from 70 -> 496 settings with free tuning: {improvement:.2}% \
         (paper: < 1%)"
    );
    harness.finish();
}
