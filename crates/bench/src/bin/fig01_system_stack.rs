//! Figure 1: the system block diagram, exercised live.
//!
//! The paper's Figure 1 shows userspace → CPUfreq/Memfreq drivers → DVFS
//! controller device → CPU and DRAM clocks. This binary walks that exact
//! stack: it lists the simulated sysfs attributes, performs the paper's
//! "userspace governors before starting the benchmark" procedure through
//! string writes, and shows the hardware controller following along with
//! transition costs accounted.

use mcdvfs_bench::banner;
use mcdvfs_kernel::KernelShim;
use mcdvfs_types::FrequencyGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figure 1",
        "system block diagram: OS drivers over the DVFS controller",
    );

    let mut shim = KernelShim::new(FrequencyGrid::coarse());

    println!("cpufreq attributes:");
    for attr in shim.cpufreq().list() {
        println!(
            "  /sys/devices/system/cpu/cpu0/cpufreq/{attr} = {}",
            shim.read(&format!("cpufreq/{attr}"))?
        );
    }
    println!("devfreq attributes:");
    for attr in shim.devfreq().list() {
        println!(
            "  /sys/class/devfreq/memctrl/{attr} = {}",
            shim.read(&format!("devfreq/{attr}"))?
        );
    }

    println!("\nthe paper's benchmark setup procedure (Section III-C):");
    for (path, value) in [
        ("cpufreq/scaling_governor", "userspace"),
        ("cpufreq/scaling_setspeed", "700000"),
        ("devfreq/governor", "userspace"),
        ("devfreq/userspace/set_freq", "500000000"),
    ] {
        shim.write(path, value)?;
        println!("  echo {value} > {path}");
    }
    println!(
        "\nhardware now at {}, after {} transitions costing {:.0} µs / {:.1} µJ",
        shim.controller().current(),
        shim.controller().transition_count(),
        shim.controller().total_transition_latency().as_micros(),
        shim.controller().total_transition_energy().as_micros(),
    );

    // A thermal cap composes with the userspace pin, as in the kernel.
    shim.write("cpufreq/scaling_max_freq", "500000")?;
    println!(
        "after a 500 MHz thermal cap: cpu pinned target snaps to {}",
        shim.read("cpufreq/scaling_cur_freq")?
    );
    Ok(())
}
