//! Figure 9: distribution of stable-region lengths.
//!
//! (a) gobmk across budgets — rapidly changing phases keep regions short
//! regardless of budget or threshold; (b) bzip2 across budgets — at a 1.6
//! budget a single region covers the whole benchmark; (c) all featured
//! benchmarks at budget 1.3.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness, PAPER_THRESHOLDS};
use mcdvfs_core::analysis::BoxStats;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::transitions::region_lengths;
use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
use mcdvfs_workloads::Benchmark;

fn region_stats(harness: &Harness, benchmark: Benchmark, budget_v: f64, thr: f64) -> BoxStats {
    let (data, _) = characterize_for(harness, benchmark);
    let budget = InefficiencyBudget::bounded(budget_v).expect("valid budget");
    let clusters = cluster_series(&data, budget, thr).expect("valid threshold");
    BoxStats::of_lengths(&region_lengths(&stable_regions(&clusters)))
}

fn stats_row(t: &mut Table, label: &[String], s: BoxStats) {
    let mut cells = label.to_vec();
    cells.extend([
        fmt(s.min, 0),
        fmt(s.q1, 1),
        fmt(s.median, 1),
        fmt(s.q3, 1),
        fmt(s.max, 0),
        fmt(s.mean, 1),
        s.count.to_string(),
    ]);
    t.row(cells);
}

fn main() {
    banner(
        "Figure 9",
        "distribution of stable-region lengths (box statistics)",
    );

    let mut harness = Harness::new("fig09_region_lengths");
    harness.note("grid", "coarse-70");
    harness.note("budgets", "1.0,1.2,1.4,1.6 (panels a/b); 1.3 (panel c)");
    harness.note("thresholds", "0.01,0.03,0.05");

    // Panels (a) and (b): gobmk and bzip2 across budgets.
    for benchmark in [Benchmark::Gobmk, Benchmark::Bzip2] {
        let mut t = Table::new(vec![
            "budget",
            "threshold_%",
            "min",
            "q1",
            "median",
            "q3",
            "max",
            "mean",
            "regions",
        ]);
        for budget_v in [1.0, 1.2, 1.4, 1.6] {
            for thr in PAPER_THRESHOLDS {
                let s = region_stats(&harness, benchmark, budget_v, thr);
                stats_row(
                    &mut t,
                    &[budget_v.to_string(), format!("{}", (thr * 100.0) as u32)],
                    s,
                );
            }
        }
        println!("--- panel: {benchmark} ---");
        emit_artifact(
            &harness,
            &t,
            &format!("fig09_region_lengths_{}", benchmark.name().replace('.', "")),
        );
    }

    // Panel (c): all featured benchmarks at budget 1.3.
    let mut t = Table::new(vec![
        "benchmark",
        "threshold_%",
        "min",
        "q1",
        "median",
        "q3",
        "max",
        "mean",
        "regions",
    ]);
    for benchmark in Benchmark::featured() {
        for thr in PAPER_THRESHOLDS {
            let s = region_stats(&harness, benchmark, 1.3, thr);
            stats_row(
                &mut t,
                &[
                    benchmark.name().to_string(),
                    format!("{}", (thr * 100.0) as u32),
                ],
                s,
            );
        }
    }
    println!("--- panel: all benchmarks at I=1.3 ---");
    emit_artifact(&harness, &t, "fig09_region_lengths_all");
    harness.finish();
}
