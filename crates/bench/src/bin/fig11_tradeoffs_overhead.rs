//! Figure 11: energy-performance trade-offs at budget 1.3 for cluster
//! thresholds {1%, 3%, 5%}, with and without tuning overhead.
//!
//! Degradation and savings are relative to the application running at the
//! per-sample optimal settings (exact tracking). Without overhead,
//! degradation is bounded by the cluster threshold and energy consumption
//! falls. With the paper-calibrated overhead (≈500 µs / 30 µJ per
//! 70-setting tuning event plus hardware transition costs), performance and
//! energy improve *further* because the cluster tuner searches and
//! transitions far less often.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness, PAPER_THRESHOLDS};
use mcdvfs_core::governor::{OracleClusterGovernor, OracleOptimalGovernor, RegionChoice};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Figure 11",
        "energy-performance trade-offs at I=1.3, with and without tuning overhead",
    );

    let mut harness = Harness::new("fig11_tradeoffs_overhead");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    harness.note("budget", "1.3");
    harness.note("thresholds", "0.01,0.03,0.05");
    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    for (label, runner, csv) in [
        (
            "(a) no tuning overhead",
            GovernedRun::without_overheads(),
            "fig11a_no_overhead",
        ),
        (
            "(b) with tuning overhead",
            GovernedRun::with_paper_overheads(),
            "fig11b_with_overhead",
        ),
    ] {
        let mut t = Table::new(vec![
            "benchmark",
            "threshold_%",
            "perf_degradation_%",
            "energy_savings_%",
            "searches",
            "transitions",
            "mean_search_evals",
            "overhead_time_%",
        ]);
        for benchmark in Benchmark::featured() {
            let (data, trace) = characterize_for(&harness, benchmark);
            let mut tracker = OracleOptimalGovernor::new(Arc::clone(&data), budget);
            let reference = runner.execute(&data, &trace, &mut tracker);
            for thr in PAPER_THRESHOLDS {
                // The ideal algorithm trades the allowed performance loss
                // for energy: within each stable region it runs the most
                // efficient common setting.
                let mut governor = OracleClusterGovernor::with_choice(
                    Arc::clone(&data),
                    budget,
                    thr,
                    RegionChoice::LowestEnergy,
                )
                .expect("valid threshold");
                // The overhead columns come from the ledger-verified
                // event stream, via the shared accounting.
                let acc = runner.execute_accounted(&data, &trace, &mut governor);
                t.row(vec![
                    benchmark.name().to_string(),
                    format!("{}", (thr * 100.0) as u32),
                    fmt(acc.report.perf_degradation_vs(&reference) * 100.0, 2),
                    fmt(acc.report.energy_savings_vs(&reference) * 100.0, 2),
                    acc.report.searches.to_string(),
                    acc.report.transitions.to_string(),
                    fmt(acc.mean_search_evaluated, 1),
                    fmt(acc.overhead_fraction * 100.0, 3),
                ]);
            }
        }
        println!("--- {label} ---");
        emit_artifact(&harness, &t, csv);
    }
    println!(
        "positive energy_savings = cluster tuner consumed less than exact tracking;\n\
         perf_degradation is bounded by the threshold in (a) and shrinks (or goes\n\
         negative) in (b) as avoided search/transition overhead pays back."
    );
    harness.finish();
}
