//! Ablation: measurement-noise amplitude.
//!
//! Sweeps the simulator's per-(sample, setting) performance measurement
//! noise and reports how exact optimal tracking and 5% cluster following
//! respond (bzip2 at the loose 1.6 budget, the paper's Figure 9(b) case).
//! Clusters are robust to noise; exact tracking is not — the core argument
//! for tolerating a small performance loss.
//!
//! Each noise level characterizes on all available cores and derives the
//! optimal series and clusters through a [`SweepEngine`] (the series is
//! shared, not recomputed for the cluster pass).

use mcdvfs_bench::{banner, emit_artifact, Harness};
use mcdvfs_core::report::Table;
use mcdvfs_core::transitions::{count_cluster_transitions, count_optimal_transitions};
use mcdvfs_core::{InefficiencyBudget, SweepEngine};
use mcdvfs_sim::System;
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Ablation: measurement noise",
        "transitions vs noise amplitude (bzip2, I=1.6, threshold 5%)",
    );

    let mut harness = Harness::new("ablation_noise");
    harness.note("grid", "coarse-70");
    harness.note("benchmark", "bzip2");
    harness.note("budget", "1.6");
    harness.note("threshold", "0.05");
    harness.note("noise", "0.0,0.002,0.004,0.01");
    let budget = InefficiencyBudget::bounded(1.6).expect("valid budget");
    let trace = Benchmark::Bzip2.trace();
    let mut t = Table::new(vec![
        "noise_%",
        "optimal_transitions",
        "cluster5_transitions",
    ]);
    for noise in [0.0, 0.002, 0.004, 0.01] {
        let system = System::galaxy_nexus_class().with_measurement_noise(noise);
        let engine = SweepEngine::characterize(&system, &trace, FrequencyGrid::coarse())
            .with_profiler(Arc::clone(harness.profiler()));
        let outcome = &engine.sweep(&[budget], &[0.05]).expect("valid threshold")[0];
        t.row(vec![
            format!("{:.1}", noise * 100.0),
            count_optimal_transitions(&outcome.optimal).to_string(),
            count_cluster_transitions(&outcome.clusters).to_string(),
        ]);
    }
    emit_artifact(&harness, &t, "ablation_noise");
    harness.finish();
}
