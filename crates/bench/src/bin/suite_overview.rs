//! Suite overview: every modelled SPEC CPU2006-class benchmark at a
//! glance.
//!
//! The paper simulates 12 integer and 9 floating point benchmarks (Section
//! III-C); its figures zoom into six. This binary characterizes the *whole*
//! suite on the coarse grid and prints the per-benchmark summary the
//! zoomed figures are drawn from: trace shape, `Imax`, the whole-run
//! energy-optimal setting, and optimal-tracking transitions under the
//! mid budget.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::transitions::{count_optimal_transitions, per_billion_instructions};
use mcdvfs_core::{imax, InefficiencyBudget, OptimalFinder};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Suite overview",
        "all 21 modelled benchmarks on the 70-setting grid",
    );

    let mut harness = Harness::new("suite_overview");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "all-21");
    harness.note("budget", "1.3");
    let budget = InefficiencyBudget::bounded(1.3).expect("valid budget");
    let mut t = Table::new(vec![
        "benchmark",
        "suite",
        "samples",
        "mean_cpi",
        "mean_mpki",
        "Imax",
        "emin_cpu",
        "emin_mem",
        "opt_trans_per_1e9@1.3",
    ]);
    for benchmark in Benchmark::all() {
        let (data, trace) = characterize_for(&harness, benchmark);
        let stats = trace.stats();
        let emin_idx = (0..data.n_settings())
            .min_by(|&a, &b| {
                data.total_energy_at(a)
                    .value()
                    .partial_cmp(&data.total_energy_at(b).value())
                    .expect("finite energies")
            })
            .expect("grid nonempty");
        let emin_setting = data.grid().get(emin_idx).expect("index on grid");
        let optimal = OptimalFinder::new(budget).series(&data);
        t.row(vec![
            benchmark.name().to_string(),
            if benchmark.is_fp() { "fp" } else { "int" }.to_string(),
            data.n_samples().to_string(),
            fmt(stats.cpi_mean, 2),
            fmt(stats.mpki_mean, 1),
            fmt(imax(&data), 2),
            emin_setting.cpu.mhz().to_string(),
            emin_setting.mem.mhz().to_string(),
            fmt(
                per_billion_instructions(count_optimal_transitions(&optimal), data.n_samples()),
                1,
            ),
        ]);
    }
    emit_artifact(&harness, &t, "suite_overview");
    println!(
        "whole-run Emin sits near (300 MHz, 200 MHz) across the suite — at 300 MHz\n\
         CPU the memory system is rarely the bottleneck — with the streaming\n\
         members (libquantum, lbm) pulling their Emin memory frequency up; phase-\n\
         heavy members (gobmk, omnetpp, leslie3d) dominate the transition column."
    );
    harness.finish();
}
