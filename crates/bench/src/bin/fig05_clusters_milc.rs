//! Figure 5: performance clusters for milc at budgets {1.0, 1.3} and
//! cluster thresholds {1%, 5%}.
//!
//! milc is largely CPU intensive with occasional memory phases: at higher
//! thresholds its CPU frequency stays tightly bound while the cluster
//! covers a wide range of memory settings, because memory frequency barely
//! affects its performance.

use mcdvfs_bench::{banner, clusters_figure, Harness};
use mcdvfs_workloads::Benchmark;

fn main() {
    banner("Figure 5", "performance clusters for milc");
    let mut harness = Harness::new("fig05_clusters_milc");
    clusters_figure(&mut harness, Benchmark::Milc, "fig05_clusters_milc");
    harness.finish();
}
