//! Ablation: absolute-energy rate limiting vs the inefficiency budget
//! (paper Section II and IV).
//!
//! For each benchmark, the oracle tuner runs under an inefficiency budget
//! of 1.2; a Cinder-style rate limiter is then granted *the same average
//! power* and made to run the application at the maximum setting (its only
//! lever is pausing). The limiter finishes later at equal or worse energy,
//! because "rate limiting approaches waste energy as \[the\] energy budget
//! is specified for a given amount of time interval and doesn't require a
//! specific amount of work to be done within that budget."
//!
//! The benchmarks are independent, so they fan out across workers (each
//! characterizing sequentially to avoid nested thread pools); rows stay
//! in suite order.

use mcdvfs_bench::{banner, emit_artifact, platform, Harness};
use mcdvfs_core::ratelimit::RateLimiter;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::sweep::fan_out_profiled;
use mcdvfs_core::{GovernedRun, InefficiencyBudget, SweepEngine};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{FrequencyGrid, Seconds, Watts};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Ablation: rate limiting",
        "inefficiency budget vs absolute-energy rate limiting at equal power cap",
    );

    let budget = InefficiencyBudget::bounded(1.2).expect("valid budget");
    let runner = GovernedRun::without_overheads();
    let idle_power = Watts::from_millis(150.0); // screen-off phone idle
    let window = Seconds::from_millis(10.0);

    let mut harness = Harness::new("ablation_ratelimit");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    harness.note("budget", "1.2");
    let benchmarks = Benchmark::featured();
    let rows = fan_out_profiled(
        &benchmarks,
        CharacterizationGrid::default_threads(),
        harness.profiler(),
        0,
        "ratelimit",
        |&benchmark, _| {
            let trace = benchmark.trace();
            let data = Arc::new(CharacterizationGrid::characterize(
                &platform(),
                &trace,
                FrequencyGrid::coarse(),
            ));
            let engine = SweepEngine::with_threads(Arc::clone(&data), 1);
            let tuned = engine
                .governed_reports(&runner, &trace, &[budget])
                .pop()
                .expect("one budget, one report");

            let cap = tuned.total_energy() / tuned.total_time();
            let limiter =
                RateLimiter::new(cap * window, window, idle_power).expect("valid limiter");
            let limited = limiter
                .execute(&data, data.grid().max_setting())
                .expect("limiter completes");

            vec![
                benchmark.name().to_string(),
                fmt(tuned.total_time().as_micros() / 1e3, 1),
                fmt(limited.total_time().as_micros() / 1e3, 1),
                fmt(limited.total_time() / tuned.total_time(), 2),
                fmt(tuned.work_inefficiency(), 3),
                fmt(limited.inefficiency(&data), 3),
                limited.pauses.to_string(),
            ]
        },
    );

    let mut t = Table::new(vec![
        "benchmark",
        "tuned_time_ms",
        "limited_time_ms",
        "slowdown_x",
        "tuned_I",
        "limited_I",
        "pauses",
    ]);
    for row in rows {
        t.row(row);
    }
    emit_artifact(&harness, &t, "ablation_ratelimit");
    println!(
        "the limiter pauses at window boundaries and burns idle energy achieving\n\
         nothing; the inefficiency budget mandates the same work under the same\n\
         energy and finishes sooner at lower inefficiency."
    );
    harness.finish();
}
