//! Ablation: the optimal-settings noise tie-break.
//!
//! The paper filters simulation noise by treating settings within 0.5% of
//! the best performance as tied and picking the highest frequencies among
//! them. This ablation sweeps the tie tolerance and reports how many
//! transitions exact optimal tracking makes: with no tolerance, noise flips
//! the argmin constantly; widening the band suppresses the flapping until
//! it plateaus at the phase-change floor.
//!
//! Per benchmark, the eight (budget × tolerance) series derive in parallel
//! from one shared characterization via [`SweepEngine::optimal_sweep`].

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::Table;
use mcdvfs_core::transitions::count_optimal_transitions;
use mcdvfs_core::{InefficiencyBudget, OptimalFinder, SweepEngine};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Ablation: tie-break",
        "optimal-tracking transitions vs tie tolerance (I=1.3 and 1.6)",
    );

    let mut harness = Harness::new("ablation_tie_break");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    harness.note("budgets", "1.3,1.6");
    harness.note("tolerances", "0.0,0.0025,0.005,0.02");
    let budget_values = [1.3, 1.6];
    let tolerances = [0.0, 0.0025, 0.005, 0.02];
    let mut t = Table::new(vec![
        "benchmark",
        "budget",
        "tol_0%",
        "tol_0.25%",
        "tol_0.5%",
        "tol_2%",
    ]);
    for benchmark in Benchmark::featured() {
        let (data, _) = characterize_for(&harness, benchmark);
        let engine = SweepEngine::new(data).with_profiler(Arc::clone(harness.profiler()));
        // Budget-major finder grid, mirroring the table's row layout.
        let finders: Vec<OptimalFinder> = budget_values
            .iter()
            .flat_map(|&v| {
                let budget = InefficiencyBudget::bounded(v).expect("valid budget");
                tolerances
                    .iter()
                    .map(move |&tol| OptimalFinder::new(budget).with_tie_tolerance(tol))
            })
            .collect();
        let series = engine.optimal_sweep(&finders);
        for (&budget_v, chunk) in budget_values.iter().zip(series.chunks(tolerances.len())) {
            let mut cells = vec![benchmark.name().to_string(), budget_v.to_string()];
            cells.extend(
                chunk
                    .iter()
                    .map(|s| count_optimal_transitions(s).to_string()),
            );
            t.row(cells);
        }
    }
    emit_artifact(&harness, &t, "ablation_tie_break");
    println!("the paper's 0.5% tolerance suppresses most noise-induced transitions");
    harness.finish();
}
