//! Figure 2: inefficiency vs. speedup for bzip2, gobmk and milc over every
//! CPU/memory frequency pair of the coarse grid.
//!
//! For each whole-benchmark run at a fixed setting:
//! `speedup = longest_total_time / total_time` and
//! `inefficiency = total_energy / min_total_energy`.
//! Also prints the paper's Section IV observations: the slowest corner
//! wastes energy ("running slower ≠ running efficiently") and forcing the
//! full budget can degrade performance.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_types::FreqSetting;
use mcdvfs_workloads::Benchmark;

fn main() {
    banner(
        "Figure 2",
        "inefficiency vs speedup over all 70 settings (bzip2, gobmk, milc)",
    );
    let mut harness = Harness::new("fig02_inefficiency_speedup");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "bzip2,gobmk,milc");

    for benchmark in [Benchmark::Bzip2, Benchmark::Gobmk, Benchmark::Milc] {
        let (data, _) = characterize_for(&harness, benchmark);
        let grid = data.grid();
        let longest = data.longest_total_time();
        let emin = data.min_total_energy();

        let mut t = Table::new(vec!["cpu_mhz", "mem_mhz", "inefficiency", "speedup"]);
        for (idx, setting) in grid.settings().enumerate() {
            let ineff = data.total_energy_at(idx) / emin;
            let speedup = longest / data.total_time_at(idx);
            t.row(vec![
                setting.cpu.mhz().to_string(),
                setting.mem.mhz().to_string(),
                fmt(ineff, 3),
                fmt(speedup, 3),
            ]);
        }
        println!("--- {benchmark} ({} samples) ---", data.n_samples());

        // Compact matrix view: speedup by cpu (rows) x mem (cols).
        let mut matrix = Table::new(
            std::iter::once("cpu\\mem".to_string())
                .chain(grid.mem_freqs().map(|m| m.mhz().to_string()))
                .collect::<Vec<_>>(),
        );
        for cpu in grid.cpu_freqs() {
            let mut cells = vec![cpu.mhz().to_string()];
            for mem in grid.mem_freqs() {
                let idx = grid.index_of(FreqSetting::new(cpu, mem)).expect("on grid");
                let s = longest / data.total_time_at(idx);
                let i = data.total_energy_at(idx) / emin;
                cells.push(format!("{:.2}x/{:.2}", s, i));
            }
            matrix.row(cells);
        }
        println!("speedup/inefficiency matrix:");
        println!("{}", matrix.to_text());
        emit_artifact(
            &harness,
            &t,
            &format!("fig02_{}", benchmark.name().replace('.', "")),
        );

        // Paper's headline observations.
        let corner = grid
            .index_of(FreqSetting::from_mhz(100, 200))
            .expect("on grid");
        let top = grid.index_of(grid.max_setting()).expect("on grid");
        let forced = grid
            .index_of(FreqSetting::from_mhz(1000, 200))
            .expect("on grid");
        println!(
            "observations: I(100,200)={:.2} (slow ≠ efficient)  I(1000,800)={:.2}  \
             speedup(1000,800)={:.2}x vs forced (1000,200)={:.2}x",
            data.total_energy_at(corner) / emin,
            data.total_energy_at(top) / emin,
            longest / data.total_time_at(top),
            longest / data.total_time_at(forced),
        );
        println!();
    }
    harness.finish();
}
