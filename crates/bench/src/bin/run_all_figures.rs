//! Runs every figure, table and ablation binary in sequence, so one
//! command regenerates the complete `results/` directory.
//!
//! ```text
//! cargo run -p mcdvfs-bench --bin run_all_figures --release
//! cargo run -p mcdvfs-bench --bin run_all_figures --release -- --profile
//! ```
//!
//! With `--profile` every child binary runs with its pipeline profiler
//! enabled (via the `MCDVFS_PROFILE` environment variable), each records
//! per-phase timings into `results/MANIFEST.json`, and this driver closes
//! with a suite-wide flame-style summary plus a manifest audit: every
//! `results/*.csv` must be covered by a manifest entry whose checksum and
//! size match the file on disk. Audit failures exit nonzero.

use mcdvfs_bench::{results_dir, Manifest, PROFILE_ENV};
use mcdvfs_obs::fmt_ns;
use std::process::Command;

/// Every experiment binary, in paper order.
const BINARIES: [&str; 21] = [
    "tab01_system_config",
    "fig01_system_stack",
    "fig02_inefficiency_speedup",
    "fig03_optimal_settings",
    "fig04_clusters_gobmk",
    "fig05_clusters_milc",
    "fig06_stable_regions_lbm",
    "fig07_stable_regions_gcc_lbm",
    "fig08_transition_counts",
    "fig09_region_lengths",
    "fig10_perf_vs_inefficiency",
    "fig11_tradeoffs_overhead",
    "fig12_step_sensitivity",
    "suite_overview",
    "ablation_tie_break",
    "ablation_noise",
    "ablation_emin",
    "ablation_edp",
    "ablation_ratelimit",
    "run_ledger",
    "policy_eval",
];

fn main() {
    let profile = std::env::args().skip(1).any(|a| a == "--profile");
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("binaries live in a directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        println!("\n::::: {name} :::::");
        let mut cmd = Command::new(bin_dir.join(name));
        if profile {
            cmd.env(PROFILE_ENV, "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("could not launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment binaries completed", BINARIES.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
    if profile && !audit_manifest() {
        std::process::exit(1);
    }
}

/// Print the suite-wide per-phase timing summary from the manifest and
/// check that it covers every CSV in `results/`. Returns false on any
/// audit problem.
fn audit_manifest() -> bool {
    let dir = results_dir();
    let manifest = match Manifest::load(&Manifest::default_path()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("could not load manifest: {e}");
            return false;
        }
    };

    println!("\n::::: suite profile :::::");
    for producer in BINARIES {
        // One binary may emit several artifacts; the phase tree is the
        // producer's whole run, so print it once per producer.
        let Some(entry) = manifest
            .artifacts
            .iter()
            .find(|a| a.producer == producer && !a.phases.is_empty())
        else {
            continue;
        };
        let total: u64 = entry
            .phases
            .iter()
            .filter(|p| p.depth == 0)
            .map(|p| p.wall_ns)
            .sum();
        println!("{producer} ({} threads, {})", entry.threads, fmt_ns(total));
        for phase in &entry.phases {
            let bar_ns = if total > 0 { phase.wall_ns } else { 0 };
            let bar = "#".repeat(((bar_ns * 20) / total.max(1)) as usize);
            println!(
                "  {:indent$}{:<24} {:>10} x{:<5} {bar}",
                "",
                phase.path.rsplit('/').next().unwrap_or(&phase.path),
                fmt_ns(phase.wall_ns),
                phase.count,
                indent = phase.depth * 2,
            );
        }
    }

    let problems = manifest.validate(&dir);
    if problems.is_empty() {
        println!(
            "\nmanifest OK: {} artifacts cover every CSV in {}",
            manifest.artifacts.len(),
            dir.display()
        );
        true
    } else {
        eprintln!("\nmanifest audit FAILED:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        false
    }
}
