//! Runs every figure, table and ablation binary in sequence, so one
//! command regenerates the complete `results/` directory.
//!
//! ```text
//! cargo run -p mcdvfs-bench --bin run_all_figures --release
//! ```

use std::process::Command;

/// Every experiment binary, in paper order.
const BINARIES: [&str; 19] = [
    "tab01_system_config",
    "fig01_system_stack",
    "fig02_inefficiency_speedup",
    "fig03_optimal_settings",
    "fig04_clusters_gobmk",
    "fig05_clusters_milc",
    "fig06_stable_regions_lbm",
    "fig07_stable_regions_gcc_lbm",
    "fig08_transition_counts",
    "fig09_region_lengths",
    "fig10_perf_vs_inefficiency",
    "fig11_tradeoffs_overhead",
    "fig12_step_sensitivity",
    "suite_overview",
    "ablation_tie_break",
    "ablation_noise",
    "ablation_emin",
    "ablation_edp",
    "ablation_ratelimit",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("binaries live in a directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        println!("\n::::: {name} :::::");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("could not launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment binaries completed", BINARIES.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
