//! Scenario: auditing a governed run with the observability ledger.
//!
//! Runs the cluster tuner over gobmk with paper-calibrated overheads while
//! a [`RunLedger`] records every event the runner and the frequency
//! controller emit: tuning searches, hardware frequency transitions,
//! per-sample work, and stable-region boundaries. The ledger is then
//!
//! 1. verified — replaying it must reproduce the run report's time,
//!    energy, search and transition totals *bit for bit*;
//! 2. aggregated — per-domain transition counts, search-cost breakdown,
//!    transition inter-arrival histogram and region-length distribution;
//! 3. exported — JSON-lines and CSV under `results/`, both recorded in
//!    the provenance manifest.
//!
//! ```text
//! cargo run -p mcdvfs-bench --bin run_ledger
//! ```

use mcdvfs_bench::{results_dir, Harness};
use mcdvfs_core::governor::OracleClusterGovernor;
use mcdvfs_core::report::{fmt, ledger_table, write_ledger_jsonl};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_obs::RunLedger;
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::FrequencyGrid;
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut harness = Harness::new("run_ledger");
    harness.note("grid", "coarse-70");
    harness.note("benchmark", "gobmk");
    harness.note("budget", "1.3");
    harness.note("threshold", "0.05");

    let system = System::galaxy_nexus_class();
    let trace = Benchmark::Gobmk.trace();
    let data = Arc::new(CharacterizationGrid::characterize(
        &system,
        &trace,
        FrequencyGrid::coarse(),
    ));
    let budget = InefficiencyBudget::bounded(1.3)?;
    let mut governor = OracleClusterGovernor::new(Arc::clone(&data), budget, 0.05)?;

    // Record the run. `execute` is literally `execute_recorded` with a
    // no-op recorder, so attaching a ledger cannot change the results.
    let runner = GovernedRun::with_paper_overheads().with_budget_alert(1.3);
    let mut ledger = RunLedger::unbounded();
    let report = runner.execute_recorded(&data, &trace, &mut governor, &mut ledger);

    // The cross-check invariant: replaying the event stream reproduces the
    // report's totals exactly (f64 bit equality, not epsilon equality).
    report.verify_ledger(&ledger)?;
    println!(
        "ledger verified: {} events replay into the run report exactly\n",
        ledger.len()
    );

    println!(
        "{} on gobmk: {:.1} ms, {:.1} mJ, inefficiency {:.3}\n",
        report.governor,
        report.total_time().as_micros() / 1e3,
        report.total_energy().as_millis(),
        report.total_inefficiency()
    );

    let counts = ledger.domain_transition_counts();
    println!(
        "transitions: {} joint ({} touched CPU, {} touched memory)",
        counts.joint, counts.cpu, counts.mem
    );

    let search = ledger.search_breakdown();
    println!(
        "searches: {} totalling {:.1} ms / {:.1} mJ, {:.1} settings evaluated on average",
        search.searches,
        search.latency.as_micros() / 1e3,
        search.energy.as_millis(),
        search.mean_evaluated()
    );

    let lengths = ledger.region_lengths();
    let longest = lengths.iter().copied().max().unwrap_or(0);
    println!(
        "stable regions: {} covering {} samples (longest: {longest})",
        lengths.len(),
        lengths.iter().sum::<usize>()
    );

    // Inter-arrival histogram: how much breathing room does the hardware
    // get between consecutive frequency transitions?
    let edges = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1];
    let hist = ledger.interarrival_histogram(edges.to_vec());
    println!("\ntime between transitions:");
    for (i, count) in hist.counts().iter().enumerate() {
        println!(
            "  [{:>5} ms, {:>5} ms): {}",
            fmt(edges[i] * 1e3, 1),
            fmt(edges[i + 1] * 1e3, 1),
            count
        );
    }
    println!(
        "  >= {} ms: {}",
        fmt(edges[edges.len() - 1] * 1e3, 1),
        hist.overflow()
    );

    // Export the full event stream for offline analysis.
    let jsonl = results_dir().join("run_ledger_gobmk.jsonl");
    let csv = results_dir().join("run_ledger_gobmk.csv");
    write_ledger_jsonl(&ledger, &jsonl)?;
    ledger_table(&ledger).write_csv(&csv)?;
    harness.record_file(&jsonl);
    harness.record_file(&csv);
    println!("\nwrote {} and {}", jsonl.display(), csv.display());
    harness.finish();
    Ok(())
}
