//! Figure 10: variation of performance with the inefficiency budget.
//!
//! Execution time of each benchmark under the oracle tuner, normalized to
//! its own I=1.0 run. Performance improves monotonically as the budget
//! loosens, by a workload-dependent amount, and the achieved inefficiency
//! always stays within the budget (the paper's compliance verification).

use mcdvfs_bench::{banner, characterize, emit};
use mcdvfs_core::governor::OracleOptimalGovernor;
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Figure 10",
        "normalized execution time vs inefficiency budget",
    );

    let budgets = [1.0, 1.1, 1.2, 1.3, 1.6];
    let runner = GovernedRun::without_overheads();

    let mut t = Table::new(vec![
        "benchmark",
        "budget",
        "normalized_time",
        "achieved_inefficiency",
    ]);
    let mut all_compliant = true;
    for benchmark in Benchmark::featured() {
        let (data, trace) = characterize(benchmark);
        let mut baseline = None;
        for budget_v in budgets {
            let budget = InefficiencyBudget::bounded(budget_v).expect("valid budget");
            let mut governor = OracleOptimalGovernor::new(Arc::clone(&data), budget);
            let report = runner.execute(&data, &trace, &mut governor);
            let time = report.total_time().value();
            let base = *baseline.get_or_insert(time);
            let achieved = report.work_inefficiency();
            all_compliant &=
                achieved <= budget_v * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;
            t.row(vec![
                benchmark.name().to_string(),
                budget_v.to_string(),
                fmt(time / base, 3),
                fmt(achieved, 3),
            ]);
        }
    }
    emit(&t, "fig10_perf_vs_inefficiency");
    println!(
        "budget compliance across all runs: {}",
        if all_compliant {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
}
