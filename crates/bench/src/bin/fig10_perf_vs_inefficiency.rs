//! Figure 10: variation of performance with the inefficiency budget.
//!
//! Execution time of each benchmark under the oracle tuner, normalized to
//! its own I=1.0 run. Performance improves monotonically as the budget
//! loosens, by a workload-dependent amount, and the achieved inefficiency
//! always stays within the budget (the paper's compliance verification).
//!
//! Each benchmark's five budget points share one characterization and one
//! optimal-plan derivation per budget through [`SweepEngine`], instead of
//! re-searching the grid live at every sample of every run.

use mcdvfs_bench::{banner, characterize_for, emit_artifact, Harness};
use mcdvfs_core::report::{fmt, Table};
use mcdvfs_core::{GovernedRun, InefficiencyBudget, SweepEngine};
use mcdvfs_workloads::Benchmark;
use std::sync::Arc;

fn main() {
    banner(
        "Figure 10",
        "normalized execution time vs inefficiency budget",
    );

    let mut harness = Harness::new("fig10_perf_vs_inefficiency");
    harness.note("grid", "coarse-70");
    harness.note("benchmarks", "featured");
    harness.note("budgets", "1.0,1.1,1.2,1.3,1.6");
    let budget_values = [1.0, 1.1, 1.2, 1.3, 1.6];
    let budgets: Vec<InefficiencyBudget> = budget_values
        .iter()
        .map(|&v| InefficiencyBudget::bounded(v).expect("valid budget"))
        .collect();
    let runner = GovernedRun::without_overheads();

    let mut t = Table::new(vec![
        "benchmark",
        "budget",
        "normalized_time",
        "achieved_inefficiency",
    ]);
    let mut all_compliant = true;
    for benchmark in Benchmark::featured() {
        let (data, trace) = characterize_for(&harness, benchmark);
        let reports = SweepEngine::new(data)
            .with_profiler(Arc::clone(harness.profiler()))
            .governed_reports(&runner, &trace, &budgets);
        let base = reports[0].total_time().value();
        for (&budget_v, report) in budget_values.iter().zip(&reports) {
            let achieved = report.work_inefficiency();
            all_compliant &=
                achieved <= budget_v * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;
            t.row(vec![
                benchmark.name().to_string(),
                budget_v.to_string(),
                fmt(report.total_time().value() / base, 3),
                fmt(achieved, 3),
            ]);
        }
    }
    emit_artifact(&harness, &t, "fig10_perf_vs_inefficiency");
    println!(
        "budget compliance across all runs: {}",
        if all_compliant {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
    harness.finish();
}
