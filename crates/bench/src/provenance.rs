//! Provenance for results artifacts: checksummed manifest entries plus the
//! per-binary [`Harness`] that writes them.
//!
//! Every figure/table binary routes its outputs through a [`Harness`]
//! ([`Harness::emit_artifact`] for tables, [`Harness::record_file`] for
//! anything else), which mirrors the artifact under `results/` *and*
//! upserts one entry into `results/MANIFEST.json`:
//!
//! * the artifact path and size, with an [`fnv1a64`] content checksum —
//!   dependency-free and stable across platforms;
//! * the producing binary and its configuration notes (grid, budgets,
//!   thresholds, benchmarks — whatever the binary [`Harness::note`]s);
//! * the worker-thread count of the producing run;
//! * the per-phase wall-time breakdown captured from the harness
//!   [`Profiler`] at emit time (empty unless profiling was on).
//!
//! The manifest is *observational*: artifact bytes are identical with or
//! without it, and `run_all_figures --profile` uses
//! [`Manifest::validate`] to fail the suite when any `results/*.csv`
//! lacks an entry or drifted from its recorded checksum.
//!
//! Everything here is hand-rolled ([`Json`] included) because the
//! workspace builds offline with no serialization dependencies.

use crate::results_dir;
use mcdvfs_core::report::Table;
use mcdvfs_obs::{PhaseTotal, Profiler};
use mcdvfs_sim::CharacterizationGrid;
use std::collections::BTreeMap;
use std::fmt::Display;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// 64-bit FNV-1a hash of `bytes` — the manifest's content checksum.
///
/// # Examples
///
/// ```
/// use mcdvfs_bench::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes
        .iter()
        .fold(BASIS, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
}

/// Renders a checksum the way the manifest stores it.
#[must_use]
pub fn checksum_string(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (the workspace has no serde).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> std::result::Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on objects (first match), `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and `\n` line ends — the
    /// on-disk manifest format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_value(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> std::result::Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> std::result::Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().expect("non-empty by match");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn render_value(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                render_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in members.iter().enumerate() {
                out.push_str(&inner);
                render_string(key, out);
                out.push_str(": ");
                render_value(val, indent + 1, out);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One artifact's provenance record.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactEntry {
    /// Artifact file name, relative to the results directory.
    pub path: String,
    /// Size in bytes at record time.
    pub bytes: u64,
    /// Content checksum, `"fnv1a64:<16 hex digits>"`.
    pub checksum: String,
    /// Binary that produced the artifact.
    pub producer: String,
    /// Worker-thread count of the producing run.
    pub threads: usize,
    /// Producer configuration notes (grid, budgets, thresholds, …).
    pub config: BTreeMap<String, String>,
    /// Per-phase wall-time breakdown of the producing run (empty unless
    /// it ran with profiling on).
    pub phases: Vec<PhaseTotal>,
}

impl ArtifactEntry {
    fn to_json(&self) -> Json {
        let config = Json::Obj(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("path".to_string(), Json::Str(p.path.clone())),
                        ("depth".to_string(), Json::Num(p.depth as f64)),
                        ("wall_ns".to_string(), Json::Num(p.wall_ns as f64)),
                        ("count".to_string(), Json::Num(p.count as f64)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("path".to_string(), Json::Str(self.path.clone())),
            ("bytes".to_string(), Json::Num(self.bytes as f64)),
            ("checksum".to_string(), Json::Str(self.checksum.clone())),
            ("producer".to_string(), Json::Str(self.producer.clone())),
            ("threads".to_string(), Json::Num(self.threads as f64)),
            ("config".to_string(), config),
            ("phases".to_string(), phases),
        ])
    }

    fn from_json(value: &Json) -> std::result::Result<Self, String> {
        let text = |key: &str| -> std::result::Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("artifact entry missing string '{key}'"))
        };
        let num = |key: &str| -> std::result::Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("artifact entry missing number '{key}'"))
        };
        let mut config = BTreeMap::new();
        if let Some(Json::Obj(members)) = value.get("config") {
            for (k, v) in members {
                config.insert(
                    k.clone(),
                    v.as_str().map(str::to_string).unwrap_or_default(),
                );
            }
        }
        let mut phases = Vec::new();
        if let Some(items) = value.get("phases").and_then(Json::as_arr) {
            for item in items {
                phases.push(PhaseTotal {
                    path: item
                        .get("path")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    depth: item.get("depth").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                    wall_ns: item.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    count: item.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                });
            }
        }
        Ok(Self {
            path: text("path")?,
            bytes: num("bytes")? as u64,
            checksum: text("checksum")?,
            producer: text("producer")?,
            threads: num("threads")? as usize,
            config,
            phases,
        })
    }
}

/// The on-disk provenance manifest: `results/MANIFEST.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// All recorded artifacts, sorted by path.
    pub artifacts: Vec<ArtifactEntry>,
}

impl Manifest {
    /// Schema tag of the on-disk format.
    pub const SCHEMA: &'static str = "mcdvfs/manifest-v1";

    /// File name of the manifest inside the results directory.
    pub const FILE_NAME: &'static str = "MANIFEST.json";

    /// Path of the manifest under the active [`results_dir`].
    #[must_use]
    pub fn default_path() -> PathBuf {
        results_dir().join(Self::FILE_NAME)
    }

    /// Loads a manifest; a missing file is an empty manifest.
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found", or a file that is not a valid
    /// `mcdvfs/manifest-v1` document.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => return Err(e),
        };
        Self::from_text(&text).map_err(io::Error::other)
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema problem.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(Self::SCHEMA) => {}
            other => return Err(format!("unsupported manifest schema {other:?}")),
        }
        let mut artifacts = Vec::new();
        for item in doc.get("artifacts").and_then(Json::as_arr).unwrap_or(&[]) {
            artifacts.push(ArtifactEntry::from_json(item)?);
        }
        artifacts.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Self { artifacts })
    }

    /// Record for `path` (a results-relative file name), if any.
    #[must_use]
    pub fn entry(&self, path: &str) -> Option<&ArtifactEntry> {
        self.artifacts.iter().find(|a| a.path == path)
    }

    /// Inserts or replaces the record for `entry.path`, keeping the list
    /// sorted by path.
    pub fn upsert(&mut self, entry: ArtifactEntry) {
        match self.artifacts.binary_search_by(|a| a.path.cmp(&entry.path)) {
            Ok(i) => self.artifacts[i] = entry,
            Err(i) => self.artifacts.insert(i, entry),
        }
    }

    /// Serializes to the on-disk document.
    #[must_use]
    pub fn to_text(&self) -> String {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(Self::SCHEMA.to_string())),
            (
                "artifacts".to_string(),
                Json::Arr(self.artifacts.iter().map(ArtifactEntry::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Writes the manifest, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_text())
    }

    /// Cross-checks the manifest against the artifacts in `dir`.
    ///
    /// Reported problems: a `*.csv` in `dir` with no manifest entry, an
    /// entry whose file is missing, and an entry whose checksum or size no
    /// longer matches the file. An empty return means the manifest covers
    /// the directory exactly.
    #[must_use]
    pub fn validate(&self, dir: &Path) -> Vec<String> {
        let mut problems = Vec::new();
        for entry in &self.artifacts {
            let file = dir.join(&entry.path);
            match std::fs::read(&file) {
                Err(_) => problems.push(format!("{}: recorded but missing on disk", entry.path)),
                Ok(bytes) => {
                    if checksum_string(&bytes) != entry.checksum {
                        problems.push(format!(
                            "{}: checksum mismatch (recorded {}, found {})",
                            entry.path,
                            entry.checksum,
                            checksum_string(&bytes)
                        ));
                    } else if bytes.len() as u64 != entry.bytes {
                        problems.push(format!(
                            "{}: size mismatch (recorded {}, found {})",
                            entry.path,
                            entry.bytes,
                            bytes.len()
                        ));
                    }
                }
            }
        }
        let mut csvs: Vec<String> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|name| name.ends_with(".csv"))
                    .collect()
            })
            .unwrap_or_default();
        csvs.sort();
        for name in csvs {
            if self.entry(&name).is_none() {
                problems.push(format!(
                    "{name}: present in results but not in the manifest"
                ));
            }
        }
        problems
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Environment variable that turns figure-binary profiling on (any value
/// but `0`). `run_all_figures --profile` sets it for every child.
pub const PROFILE_ENV: &str = "MCDVFS_PROFILE";

/// Per-binary provenance and profiling harness.
///
/// Construct one at the top of a figure binary, [`note`](Self::note) the
/// run configuration, route every output through
/// [`emit_artifact`](Self::emit_artifact) /
/// [`record_file`](Self::record_file), and call
/// [`finish`](Self::finish) last (prints the phase summary when profiling
/// is on).
#[derive(Debug)]
pub struct Harness {
    producer: String,
    profiler: Arc<Profiler>,
    config: BTreeMap<String, String>,
    threads: usize,
}

impl Harness {
    /// A harness for the named producing binary. Profiling is enabled
    /// when [`PROFILE_ENV`] is set (to anything but `0`).
    #[must_use]
    pub fn new(producer: &str) -> Self {
        let on = std::env::var(PROFILE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        Self {
            producer: producer.to_string(),
            profiler: Arc::new(if on {
                Profiler::enabled()
            } else {
                Profiler::disabled()
            }),
            config: BTreeMap::new(),
            threads: CharacterizationGrid::default_threads(),
        }
    }

    /// The harness profiler — attach it to a
    /// [`SweepEngine`](mcdvfs_core::SweepEngine) or open spans on it
    /// directly.
    #[must_use]
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// Records one configuration note carried into every artifact entry
    /// this harness writes ("grid" = "coarse-70", "budgets" =
    /// "1.0,1.3,1.6", …).
    pub fn note(&mut self, key: &str, value: impl Display) {
        self.config.insert(key.to_string(), value.to_string());
    }

    /// Prints `table` and mirrors it to `results/<name>.csv` (exactly like
    /// [`emit`](crate::emit)), then records the artifact in the manifest.
    pub fn emit_artifact(&self, table: &Table, name: &str) {
        println!("{}", table.to_text());
        let dir = results_dir();
        let file = format!("{name}.csv");
        let path = dir.join(&file);
        let csv = table.to_csv();
        let write = || -> io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, &csv)
        };
        match write() {
            Ok(()) => {
                println!("[csv written to {}]", path.display());
                self.record(&file, csv.as_bytes());
            }
            Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
        }
        println!();
    }

    /// Records an already-written artifact (JSONL ledgers, bench JSON, …)
    /// in the manifest. `path` must live inside the results directory.
    pub fn record_file(&self, path: &Path) {
        let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
            eprintln!(
                "[warning: cannot record unnamed artifact {}]",
                path.display()
            );
            return;
        };
        match std::fs::read(path) {
            Ok(bytes) => self.record(file, &bytes),
            Err(e) => eprintln!("[warning: could not record {}: {e}]", path.display()),
        }
    }

    fn record(&self, file: &str, bytes: &[u8]) {
        let entry = ArtifactEntry {
            path: file.to_string(),
            bytes: bytes.len() as u64,
            checksum: checksum_string(bytes),
            producer: self.producer.clone(),
            threads: self.threads,
            config: self.config.clone(),
            phases: self.profiler.phase_totals(),
        };
        let manifest_path = Manifest::default_path();
        let result = Manifest::load(&manifest_path).and_then(|mut m| {
            m.upsert(entry);
            m.write(&manifest_path)
        });
        if let Err(e) = result {
            eprintln!(
                "[warning: could not update {}: {e}]",
                manifest_path.display()
            );
        }
    }

    /// Prints the per-phase profile summary when profiling is on. Call
    /// once, after the last artifact.
    pub fn finish(&self) {
        if self.profiler.is_enabled() {
            println!("--- profile: {} ---", self.producer);
            print!("{}", self.profiler.render_summary());
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(checksum_string(b""), "fnv1a64:cbf29ce484222325");
    }

    #[test]
    fn json_round_trips_the_manifest_shapes() {
        let text = r#"{"schema": "x", "artifacts": [{"path": "a.csv", "bytes": 12,
            "nested": {"k": [1, 2.5, -3e2, true, false, null]},
            "esc": "line\nbreak \"quoted\" A"}]}"#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("x"));
        let entry = &doc.get("artifacts").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("bytes").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            entry.get("esc").and_then(Json::as_str),
            Some("line\nbreak \"quoted\" A")
        );
        // Render → parse is the identity on the value.
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn manifest_upserts_sorted_and_round_trips() {
        let entry = |path: &str, producer: &str| ArtifactEntry {
            path: path.to_string(),
            bytes: 3,
            checksum: checksum_string(b"abc"),
            producer: producer.to_string(),
            threads: 4,
            config: BTreeMap::from([("grid".to_string(), "coarse-70".to_string())]),
            phases: vec![PhaseTotal {
                path: "sweep".to_string(),
                depth: 0,
                wall_ns: 123,
                count: 1,
            }],
        };
        let mut m = Manifest::default();
        m.upsert(entry("b.csv", "bin_b"));
        m.upsert(entry("a.csv", "bin_a"));
        m.upsert(entry("b.csv", "bin_b2"));
        assert_eq!(m.artifacts.len(), 2);
        assert_eq!(m.artifacts[0].path, "a.csv");
        assert_eq!(m.entry("b.csv").unwrap().producer, "bin_b2");

        let parsed = Manifest::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.entry("a.csv").unwrap().phases[0].wall_ns, 123);
        assert_eq!(
            parsed.entry("a.csv").unwrap().config.get("grid").unwrap(),
            "coarse-70"
        );
    }

    #[test]
    fn manifest_rejects_unknown_schema() {
        assert!(Manifest::from_text(r#"{"schema": "other", "artifacts": []}"#).is_err());
    }

    #[test]
    fn validate_reports_uncovered_missing_and_drifted() {
        let dir = std::env::temp_dir().join(format!("mcdvfs_manifest_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("covered.csv"), b"x,y\n1,2\n").unwrap();
        std::fs::write(dir.join("orphan.csv"), b"a\n").unwrap();
        std::fs::write(dir.join("drifted.csv"), b"new contents\n").unwrap();

        let entry = |path: &str, bytes: &[u8]| ArtifactEntry {
            path: path.to_string(),
            bytes: bytes.len() as u64,
            checksum: checksum_string(bytes),
            producer: "test".to_string(),
            threads: 1,
            config: BTreeMap::new(),
            phases: Vec::new(),
        };
        let mut m = Manifest::default();
        m.upsert(entry("covered.csv", b"x,y\n1,2\n"));
        m.upsert(entry("drifted.csv", b"old contents\n"));
        m.upsert(entry("gone.csv", b"whatever"));

        let problems = m.validate(&dir);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("orphan.csv")));
        assert!(problems
            .iter()
            .any(|p| p.contains("drifted.csv") && p.contains("checksum")));
        assert!(problems.iter().any(|p| p.contains("gone.csv")));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
