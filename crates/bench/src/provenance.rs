//! Provenance for results artifacts: checksummed manifest entries plus the
//! per-binary [`Harness`] that writes them.
//!
//! Every figure/table binary routes its outputs through a [`Harness`]
//! ([`Harness::emit_artifact`] for tables, [`Harness::record_file`] for
//! anything else), which mirrors the artifact under `results/` *and*
//! upserts one entry into `results/MANIFEST.json`:
//!
//! * the artifact path and size, with an [`fnv1a64`] content checksum —
//!   dependency-free and stable across platforms;
//! * the producing binary and its configuration notes (grid, budgets,
//!   thresholds, benchmarks — whatever the binary [`Harness::note`]s);
//! * the worker-thread count of the producing run;
//! * the per-phase wall-time breakdown captured from the harness
//!   [`Profiler`] at emit time (empty unless profiling was on).
//!
//! The manifest is *observational*: artifact bytes are identical with or
//! without it, and `run_all_figures --profile` uses
//! [`Manifest::validate`] to fail the suite when any `results/*.csv`
//! lacks an entry or drifted from its recorded checksum.
//!
//! Everything here is hand-rolled because the workspace builds offline
//! with no serialization dependencies; the JSON value/parser and FNV-1a
//! hashing live in `mcdvfs-types` ([`Json`], [`fnv1a64`]) so the serving
//! layer shares them, and are re-exported here unchanged.

use crate::results_dir;
use mcdvfs_core::report::Table;
use mcdvfs_obs::{PhaseTotal, Profiler};
use mcdvfs_sim::CharacterizationGrid;
use std::collections::BTreeMap;
use std::fmt::Display;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use mcdvfs_types::{fnv1a64, Json};

/// Renders a checksum the way the manifest stores it.
#[must_use]
pub fn checksum_string(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(bytes))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One artifact's provenance record.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactEntry {
    /// Artifact file name, relative to the results directory.
    pub path: String,
    /// Size in bytes at record time.
    pub bytes: u64,
    /// Content checksum, `"fnv1a64:<16 hex digits>"`.
    pub checksum: String,
    /// Binary that produced the artifact.
    pub producer: String,
    /// Worker-thread count of the producing run.
    pub threads: usize,
    /// Producer configuration notes (grid, budgets, thresholds, …).
    pub config: BTreeMap<String, String>,
    /// Per-phase wall-time breakdown of the producing run (empty unless
    /// it ran with profiling on).
    pub phases: Vec<PhaseTotal>,
}

impl ArtifactEntry {
    fn to_json(&self) -> Json {
        let config = Json::Obj(
            self.config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("path".to_string(), Json::Str(p.path.clone())),
                        ("depth".to_string(), Json::Num(p.depth as f64)),
                        ("wall_ns".to_string(), Json::Num(p.wall_ns as f64)),
                        ("count".to_string(), Json::Num(p.count as f64)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("path".to_string(), Json::Str(self.path.clone())),
            ("bytes".to_string(), Json::Num(self.bytes as f64)),
            ("checksum".to_string(), Json::Str(self.checksum.clone())),
            ("producer".to_string(), Json::Str(self.producer.clone())),
            ("threads".to_string(), Json::Num(self.threads as f64)),
            ("config".to_string(), config),
            ("phases".to_string(), phases),
        ])
    }

    fn from_json(value: &Json) -> std::result::Result<Self, String> {
        let text = |key: &str| -> std::result::Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("artifact entry missing string '{key}'"))
        };
        let num = |key: &str| -> std::result::Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("artifact entry missing number '{key}'"))
        };
        let mut config = BTreeMap::new();
        if let Some(Json::Obj(members)) = value.get("config") {
            for (k, v) in members {
                config.insert(
                    k.clone(),
                    v.as_str().map(str::to_string).unwrap_or_default(),
                );
            }
        }
        let mut phases = Vec::new();
        if let Some(items) = value.get("phases").and_then(Json::as_arr) {
            for item in items {
                phases.push(PhaseTotal {
                    path: item
                        .get("path")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    depth: item.get("depth").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                    wall_ns: item.get("wall_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    count: item.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                });
            }
        }
        Ok(Self {
            path: text("path")?,
            bytes: num("bytes")? as u64,
            checksum: text("checksum")?,
            producer: text("producer")?,
            threads: num("threads")? as usize,
            config,
            phases,
        })
    }
}

/// The on-disk provenance manifest: `results/MANIFEST.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// All recorded artifacts, sorted by path.
    pub artifacts: Vec<ArtifactEntry>,
}

impl Manifest {
    /// Schema tag of the on-disk format.
    pub const SCHEMA: &'static str = "mcdvfs/manifest-v1";

    /// File name of the manifest inside the results directory.
    pub const FILE_NAME: &'static str = "MANIFEST.json";

    /// Path of the manifest under the active [`results_dir`].
    #[must_use]
    pub fn default_path() -> PathBuf {
        results_dir().join(Self::FILE_NAME)
    }

    /// Loads a manifest; a missing file is an empty manifest.
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found", or a file that is not a valid
    /// `mcdvfs/manifest-v1` document.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => return Err(e),
        };
        Self::from_text(&text).map_err(io::Error::other)
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema problem.
    pub fn from_text(text: &str) -> std::result::Result<Self, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(Self::SCHEMA) => {}
            other => return Err(format!("unsupported manifest schema {other:?}")),
        }
        let mut artifacts = Vec::new();
        for item in doc.get("artifacts").and_then(Json::as_arr).unwrap_or(&[]) {
            artifacts.push(ArtifactEntry::from_json(item)?);
        }
        artifacts.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Self { artifacts })
    }

    /// Record for `path` (a results-relative file name), if any.
    #[must_use]
    pub fn entry(&self, path: &str) -> Option<&ArtifactEntry> {
        self.artifacts.iter().find(|a| a.path == path)
    }

    /// Inserts or replaces the record for `entry.path`, keeping the list
    /// sorted by path.
    pub fn upsert(&mut self, entry: ArtifactEntry) {
        match self.artifacts.binary_search_by(|a| a.path.cmp(&entry.path)) {
            Ok(i) => self.artifacts[i] = entry,
            Err(i) => self.artifacts.insert(i, entry),
        }
    }

    /// Serializes to the on-disk document.
    #[must_use]
    pub fn to_text(&self) -> String {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(Self::SCHEMA.to_string())),
            (
                "artifacts".to_string(),
                Json::Arr(self.artifacts.iter().map(ArtifactEntry::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Writes the manifest, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_text())
    }

    /// Cross-checks the manifest against the artifacts in `dir`.
    ///
    /// Reported problems: a `*.csv` in `dir` with no manifest entry, an
    /// entry whose file is missing, and an entry whose checksum or size no
    /// longer matches the file. An empty return means the manifest covers
    /// the directory exactly.
    #[must_use]
    pub fn validate(&self, dir: &Path) -> Vec<String> {
        let mut problems = Vec::new();
        for entry in &self.artifacts {
            let file = dir.join(&entry.path);
            match std::fs::read(&file) {
                Err(_) => problems.push(format!("{}: recorded but missing on disk", entry.path)),
                Ok(bytes) => {
                    if checksum_string(&bytes) != entry.checksum {
                        problems.push(format!(
                            "{}: checksum mismatch (recorded {}, found {})",
                            entry.path,
                            entry.checksum,
                            checksum_string(&bytes)
                        ));
                    } else if bytes.len() as u64 != entry.bytes {
                        problems.push(format!(
                            "{}: size mismatch (recorded {}, found {})",
                            entry.path,
                            entry.bytes,
                            bytes.len()
                        ));
                    }
                }
            }
        }
        let mut csvs: Vec<String> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|name| name.ends_with(".csv"))
                    .collect()
            })
            .unwrap_or_default();
        csvs.sort();
        for name in csvs {
            if self.entry(&name).is_none() {
                problems.push(format!(
                    "{name}: present in results but not in the manifest"
                ));
            }
        }
        problems
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Environment variable that turns figure-binary profiling on (any value
/// but `0`). `run_all_figures --profile` sets it for every child.
pub const PROFILE_ENV: &str = "MCDVFS_PROFILE";

/// Per-binary provenance and profiling harness.
///
/// Construct one at the top of a figure binary, [`note`](Self::note) the
/// run configuration, route every output through
/// [`emit_artifact`](Self::emit_artifact) /
/// [`record_file`](Self::record_file), and call
/// [`finish`](Self::finish) last (prints the phase summary when profiling
/// is on).
#[derive(Debug)]
pub struct Harness {
    producer: String,
    profiler: Arc<Profiler>,
    config: BTreeMap<String, String>,
    threads: usize,
}

impl Harness {
    /// A harness for the named producing binary. Profiling is enabled
    /// when [`PROFILE_ENV`] is set (to anything but `0`).
    #[must_use]
    pub fn new(producer: &str) -> Self {
        let on = std::env::var(PROFILE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        Self {
            producer: producer.to_string(),
            profiler: Arc::new(if on {
                Profiler::enabled()
            } else {
                Profiler::disabled()
            }),
            config: BTreeMap::new(),
            threads: CharacterizationGrid::default_threads(),
        }
    }

    /// The harness profiler — attach it to a
    /// [`SweepEngine`](mcdvfs_core::SweepEngine) or open spans on it
    /// directly.
    #[must_use]
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// Records one configuration note carried into every artifact entry
    /// this harness writes ("grid" = "coarse-70", "budgets" =
    /// "1.0,1.3,1.6", …).
    pub fn note(&mut self, key: &str, value: impl Display) {
        self.config.insert(key.to_string(), value.to_string());
    }

    /// Prints `table` and mirrors it to `results/<name>.csv` (exactly like
    /// [`emit`](crate::emit)), then records the artifact in the manifest.
    pub fn emit_artifact(&self, table: &Table, name: &str) {
        println!("{}", table.to_text());
        let dir = results_dir();
        let file = format!("{name}.csv");
        let path = dir.join(&file);
        let csv = table.to_csv();
        let write = || -> io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, &csv)
        };
        match write() {
            Ok(()) => {
                println!("[csv written to {}]", path.display());
                self.record(&file, csv.as_bytes());
            }
            Err(e) => eprintln!("[warning: could not write {}: {e}]", path.display()),
        }
        println!();
    }

    /// Records an already-written artifact (JSONL ledgers, bench JSON, …)
    /// in the manifest. `path` must live inside the results directory.
    pub fn record_file(&self, path: &Path) {
        let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
            eprintln!(
                "[warning: cannot record unnamed artifact {}]",
                path.display()
            );
            return;
        };
        match std::fs::read(path) {
            Ok(bytes) => self.record(file, &bytes),
            Err(e) => eprintln!("[warning: could not record {}: {e}]", path.display()),
        }
    }

    fn record(&self, file: &str, bytes: &[u8]) {
        let entry = ArtifactEntry {
            path: file.to_string(),
            bytes: bytes.len() as u64,
            checksum: checksum_string(bytes),
            producer: self.producer.clone(),
            threads: self.threads,
            config: self.config.clone(),
            phases: self.profiler.phase_totals(),
        };
        let manifest_path = Manifest::default_path();
        let result = Manifest::load(&manifest_path).and_then(|mut m| {
            m.upsert(entry);
            m.write(&manifest_path)
        });
        if let Err(e) = result {
            eprintln!(
                "[warning: could not update {}: {e}]",
                manifest_path.display()
            );
        }
    }

    /// Prints the per-phase profile summary when profiling is on. Call
    /// once, after the last artifact.
    pub fn finish(&self) {
        if self.profiler.is_enabled() {
            println!("--- profile: {} ---", self.producer);
            print!("{}", self.profiler.render_summary());
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(checksum_string(b""), "fnv1a64:cbf29ce484222325");
    }

    #[test]
    fn manifest_upserts_sorted_and_round_trips() {
        let entry = |path: &str, producer: &str| ArtifactEntry {
            path: path.to_string(),
            bytes: 3,
            checksum: checksum_string(b"abc"),
            producer: producer.to_string(),
            threads: 4,
            config: BTreeMap::from([("grid".to_string(), "coarse-70".to_string())]),
            phases: vec![PhaseTotal {
                path: "sweep".to_string(),
                depth: 0,
                wall_ns: 123,
                count: 1,
            }],
        };
        let mut m = Manifest::default();
        m.upsert(entry("b.csv", "bin_b"));
        m.upsert(entry("a.csv", "bin_a"));
        m.upsert(entry("b.csv", "bin_b2"));
        assert_eq!(m.artifacts.len(), 2);
        assert_eq!(m.artifacts[0].path, "a.csv");
        assert_eq!(m.entry("b.csv").unwrap().producer, "bin_b2");

        let parsed = Manifest::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.entry("a.csv").unwrap().phases[0].wall_ns, 123);
        assert_eq!(
            parsed.entry("a.csv").unwrap().config.get("grid").unwrap(),
            "coarse-70"
        );
    }

    #[test]
    fn manifest_rejects_unknown_schema() {
        assert!(Manifest::from_text(r#"{"schema": "other", "artifacts": []}"#).is_err());
    }

    #[test]
    fn validate_reports_uncovered_missing_and_drifted() {
        let dir = std::env::temp_dir().join(format!("mcdvfs_manifest_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("covered.csv"), b"x,y\n1,2\n").unwrap();
        std::fs::write(dir.join("orphan.csv"), b"a\n").unwrap();
        std::fs::write(dir.join("drifted.csv"), b"new contents\n").unwrap();

        let entry = |path: &str, bytes: &[u8]| ArtifactEntry {
            path: path.to_string(),
            bytes: bytes.len() as u64,
            checksum: checksum_string(bytes),
            producer: "test".to_string(),
            threads: 1,
            config: BTreeMap::new(),
            phases: Vec::new(),
        };
        let mut m = Manifest::default();
        m.upsert(entry("covered.csv", b"x,y\n1,2\n"));
        m.upsert(entry("drifted.csv", b"old contents\n"));
        m.upsert(entry("gone.csv", b"whatever"));

        let problems = m.validate(&dir);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("orphan.csv")));
        assert!(problems
            .iter()
            .any(|p| p.contains("drifted.csv") && p.contains("checksum")));
        assert!(problems.iter().any(|p| p.contains("gone.csv")));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
