//! Full-system sample simulator for the `mcdvfs` workspace.
//!
//! This crate plays the role Gem5 plays in the paper: it combines the CPU
//! models (`mcdvfs-cpu`), the DRAM models (`mcdvfs-dram`) and a workload
//! trace (`mcdvfs-workloads`) into per-sample measurements of execution
//! time and energy at any CPU/memory frequency setting.
//!
//! * [`System`] — the platform model; [`System::simulate_sample`] solves
//!   the CPU↔DRAM coupling (stall time depends on memory latency, which
//!   depends on utilization, which depends on execution time) by monotone
//!   fixed-point iteration;
//! * [`CharacterizationGrid`] — the product of the paper's "70 simulations
//!   per benchmark": a complete `(sample × frequency-setting)` measurement
//!   matrix, the input to every algorithm in `mcdvfs-core`;
//! * [`DvfsController`] — the OS-visible controller device of the paper's
//!   Figure 1, tracking the platform's current setting and accounting
//!   hardware transition costs from the [`TransitionModel`];
//! * [`EventQueue`] — a small discrete-event kernel used by the controller
//!   for pending-transition bookkeeping.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_sim::System;
//! use mcdvfs_types::{FreqSetting, SampleCharacteristics};
//!
//! let system = System::galaxy_nexus_class();
//! let sample = SampleCharacteristics::new(1.0, 5.0);
//! let slow = system.simulate_sample(&sample, FreqSetting::from_mhz(200, 400));
//! let fast = system.simulate_sample(&sample, FreqSetting::from_mhz(1000, 400));
//! assert!(fast.time < slow.time);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
mod clock;
mod kernel;
mod plan;
mod system;
mod transition;

pub use characterize::CharacterizationGrid;
pub use clock::{DvfsController, TransitionRecord};
pub use kernel::EventQueue;
pub use plan::EvalPlan;
pub use system::System;
pub use transition::{TransitionCost, TransitionModel};
