//! Plan-compiled sample evaluation — the characterization hot path.
//!
//! [`System::simulate_sample`] is written for clarity: every evaluation of
//! the CPU↔DRAM fixed point re-derives frequency-dependent latency terms,
//! bandwidths and power coefficients from the component models, and the
//! bisection performs ~67 such evaluations per `(sample, setting)` cell.
//! A full fine-grid characterization multiplies that by
//! `samples × 496 settings`, which is why `characterize/fine` dominates
//! every sweep, figure harness and serve cold-start.
//!
//! [`EvalPlan`] compiles a `(System, FrequencyGrid)` pair once: every
//! quantity that depends only on the *setting* (row-hit/miss latencies,
//! effective bandwidth, queueing service time, clock rates, voltage and
//! power coefficients, scaled standby currents, burst/refresh energies) is
//! hoisted into setting-major flat arrays, and every quantity that depends
//! only on the *sample* is hoisted per row. What remains in the bisection
//! inner loop is a handful of multiplies and two divides over values
//! already in cache — branch-free and contiguous, so rows evaluate as
//! tight passes over the arrays.
//!
//! The plan is a *pure* reformulation: each cell performs the exact same
//! IEEE-754 operation sequence as [`System::simulate_sample`] (no
//! re-association, no factored constants, no reciprocal-multiply
//! substitutions), so its measurements are bit-identical to the
//! interpreted path. The equivalence suite pins this.

use crate::system::System;
use mcdvfs_dram::IddCurrents;
use mcdvfs_types::{
    FreqSetting, FrequencyGrid, Joules, SampleCharacteristics, SampleMeasurement, Seconds,
    BYTES_PER_DRAM_ACCESS, INSTRUCTIONS_PER_SAMPLE,
};

/// Per-sample constants hoisted out of the per-setting loop.
struct SamplePre {
    bytes: f64,
    accesses: f64,
    core_cycles: f64,
    stall_exposure: f64,
    mlp: f64,
    row_hit_rate: f64,
    one_minus_rhr: f64,
    activity: f64,
    write_frac: f64,
    one_minus_wf: f64,
}

/// A `(System, FrequencyGrid)` pair compiled for repeated row evaluation.
///
/// Build one with [`EvalPlan::compile`], then evaluate whole sample rows
/// with [`EvalPlan::eval_row_into`]. Results are bit-identical to calling
/// [`System::simulate_sample`] per cell.
///
/// # Examples
///
/// ```
/// use mcdvfs_sim::{EvalPlan, System};
/// use mcdvfs_types::{FrequencyGrid, SampleCharacteristics};
///
/// let system = System::galaxy_nexus_class();
/// let grid = FrequencyGrid::coarse();
/// let plan = EvalPlan::compile(&system, grid);
/// let sample = SampleCharacteristics::new(1.0, 6.0);
/// let mut row = Vec::new();
/// plan.eval_row_into(&sample, &mut row);
/// assert_eq!(row.len(), grid.len());
/// let direct = system.simulate_sample(&sample, grid.settings().next().unwrap());
/// assert_eq!(row[0], direct);
/// ```
#[derive(Debug, Clone)]
pub struct EvalPlan {
    system: System,
    settings: Vec<FreqSetting>,
    // Model-wide constants.
    ctrl_ns: f64,
    max_util: f64,
    min_cpi: f64,
    peak_dynamic_w: f64,
    activate_j: f64,
    bursts_per_access: f64,
    // Setting-major arrays, indexed by the grid's flat setting index.
    hit_ns: Vec<f64>,
    miss_mix_ns: Vec<f64>,
    service_ns: Vec<f64>,
    eff_bw: Vec<f64>,
    cpu_mhz_f: Vec<f64>,
    cpu_hz: Vec<f64>,
    v_ratio_sq: Vec<f64>,
    f_ratio: Vec<f64>,
    bg_w: Vec<f64>,
    leak_w: Vec<f64>,
    idd2n: Vec<IddCurrents>,
    idd3n: Vec<IddCurrents>,
    burst_read_j: Vec<f64>,
    burst_write_j: Vec<f64>,
    refresh_w: Vec<f64>,
}

impl EvalPlan {
    /// Compiles `system` over `grid`: one pass over the grid's settings
    /// evaluating every frequency-dependent model term exactly as the
    /// interpreted path would, stored setting-major.
    #[must_use]
    pub fn compile(system: &System, grid: FrequencyGrid) -> Self {
        let settings: Vec<FreqSetting> = grid.settings().collect();
        let n = settings.len();
        let latency = system.latency_model();
        let perf = system.perf_model();
        let cpu_power = system.cpu_power_model();
        let dram_power = system.dram_power_model();
        let vf = system.vf_curve();
        let f_ref_mhz = f64::from(cpu_power.reference_freq().mhz());

        let mut plan = Self {
            system: system.clone(),
            settings,
            ctrl_ns: latency.ctrl_overhead_ns(),
            max_util: latency.max_utilization(),
            min_cpi: perf.min_cpi(),
            peak_dynamic_w: cpu_power.peak_dynamic().value(),
            activate_j: dram_power.activate_energy().value(),
            bursts_per_access: (BYTES_PER_DRAM_ACCESS as f64
                / dram_power.timings().bytes_per_burst() as f64)
                .ceil(),
            hit_ns: Vec::with_capacity(n),
            miss_mix_ns: Vec::with_capacity(n),
            service_ns: Vec::with_capacity(n),
            eff_bw: Vec::with_capacity(n),
            cpu_mhz_f: Vec::with_capacity(n),
            cpu_hz: Vec::with_capacity(n),
            v_ratio_sq: Vec::with_capacity(n),
            f_ratio: Vec::with_capacity(n),
            bg_w: Vec::with_capacity(n),
            leak_w: Vec::with_capacity(n),
            idd2n: Vec::with_capacity(n),
            idd3n: Vec::with_capacity(n),
            burst_read_j: Vec::with_capacity(n),
            burst_write_j: Vec::with_capacity(n),
            refresh_w: Vec::with_capacity(n),
        };
        for &setting in &plan.settings {
            let (cpu, mem) = (setting.cpu, setting.mem);
            plan.hit_ns.push(latency.timings().row_hit_ns(mem));
            plan.miss_mix_ns.push(latency.miss_mix_ns(mem));
            plan.service_ns.push(latency.service_time_ns(mem));
            plan.eff_bw.push(latency.effective_bandwidth(mem));
            plan.cpu_mhz_f.push(f64::from(cpu.mhz()));
            plan.cpu_hz.push(cpu.hz());
            plan.v_ratio_sq.push(vf.voltage_ratio(cpu).powi(2));
            plan.f_ratio.push(f64::from(cpu.mhz()) / f_ref_mhz);
            // Activity 0 and busy 0 zero the dynamic term, leaving the
            // clocked background and leakage terms exactly as the
            // interpreted path computes them for this operating point.
            let idle = cpu_power.breakdown(cpu, vf, 0.0, 0.0);
            plan.bg_w.push(idle.background.value());
            plan.leak_w.push(idle.leakage.value());
            let (idd2n, idd3n) = dram_power.standby_currents(mem);
            plan.idd2n.push(idd2n);
            plan.idd3n.push(idd3n);
            plan.burst_read_j
                .push(dram_power.burst_energy(mem, false).value());
            plan.burst_write_j
                .push(dram_power.burst_energy(mem, true).value());
            plan.refresh_w.push(dram_power.refresh_power(mem).value());
        }
        plan
    }

    /// Number of settings (cells per row) the plan evaluates.
    #[must_use]
    pub fn n_settings(&self) -> usize {
        self.settings.len()
    }

    /// The settings the plan was compiled over, in grid order.
    #[must_use]
    pub fn settings(&self) -> &[FreqSetting] {
        &self.settings
    }

    fn pre(&self, chars: &SampleCharacteristics) -> SamplePre {
        SamplePre {
            bytes: chars.dram_bytes() as f64,
            accesses: chars.dram_accesses() as f64,
            core_cycles: INSTRUCTIONS_PER_SAMPLE as f64 * chars.base_cpi.max(self.min_cpi),
            stall_exposure: chars.stall_exposure,
            mlp: chars.mlp,
            row_hit_rate: chars.row_hit_rate,
            one_minus_rhr: 1.0 - chars.row_hit_rate,
            activity: chars.activity_factor,
            write_frac: chars.write_frac,
            one_minus_wf: 1.0 - chars.write_frac,
        }
    }

    /// Total cycles at a fixed queueing utilization ρ for setting `j`:
    /// the M/D/1 wait, the exposed latency and the stall-cycle
    /// conversion, in the same association order as the interpreted
    /// models. `base` is the ρ-independent latency for this row/setting.
    #[inline]
    fn total_at_rho(&self, pre: &SamplePre, base: f64, j: usize, rho: f64) -> f64 {
        let wait = rho * self.service_ns[j] / (2.0 * (1.0 - rho));
        let lat = base + wait;
        let exposed = lat * pre.stall_exposure / pre.mlp;
        let stall = pre.accesses * exposed * self.cpu_mhz_f[j] * 1e-3;
        pre.core_cycles + stall
    }

    /// Post-processes one cell's converged `(total cycles, model time)`
    /// into its measurement. Mirrors [`System::simulate_sample`] operation
    /// for operation.
    #[inline]
    fn finish_cell(
        &self,
        chars: &SampleCharacteristics,
        pre: &SamplePre,
        j: usize,
        total: f64,
        t_model: f64,
    ) -> SampleMeasurement {
        let eff_bw = self.eff_bw[j];
        let hz = self.cpu_hz[j];
        let busy_frac = pre.core_cycles / total;

        // Physical bandwidth floor, noise, busy fraction and CPI — the
        // same post-processing as the interpreted path.
        let bw_floor = if pre.bytes > 0.0 {
            pre.bytes / eff_bw
        } else {
            0.0
        };
        let time_exact = t_model.max(bw_floor);
        let time = time_exact * self.system.noise_factor(chars, self.settings[j], 1);
        let busy = (busy_frac * t_model / time_exact).min(1.0);
        let cpi = time * hz / INSTRUCTIONS_PER_SAMPLE as f64;

        // CPU energy: dynamic (scaled by activity and busy) + clocked
        // background + leakage, over the noise-free time.
        let dynamic =
            self.peak_dynamic_w * (pre.activity * busy * self.v_ratio_sq[j] * self.f_ratio[j]);
        let cpu_energy = (dynamic + self.bg_w[j] + self.leak_w[j]) * time_exact;

        // DRAM energy: utilization-blended standby, activates, bursts and
        // refresh, summed in the breakdown's component order.
        let rho_e = (pre.bytes / time_exact / eff_bw).min(self.max_util);
        let (i2, i3) = (self.idd2n[j], self.idd3n[j]);
        let blended = IddCurrents::new(
            i2.vdd1_ma + (i3.vdd1_ma - i2.vdd1_ma) * rho_e,
            i2.vdd2_ma + (i3.vdd2_ma - i2.vdd2_ma) * rho_e,
        );
        let background = self.system.dram_power_model().rail_power(blended).value() * time_exact;
        let activations = pre.accesses * pre.one_minus_rhr;
        let read_bursts = pre.accesses * self.bursts_per_access * pre.one_minus_wf;
        let write_bursts = pre.accesses * self.bursts_per_access * pre.write_frac;
        let activate = self.activate_j * activations;
        let rw = self.burst_read_j[j] * read_bursts + self.burst_write_j[j] * write_bursts;
        let refresh = self.refresh_w[j] * time_exact;
        let mem_energy = ((background + activate) + rw) + refresh;

        SampleMeasurement {
            time: Seconds::new(time),
            cpu_energy: Joules::new(cpu_energy),
            mem_energy: Joules::new(mem_energy),
            cpi,
        }
    }

    /// Evaluates one sample at every compiled setting, appending
    /// `n_settings` measurements to `out` in grid order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `chars` is invalid.
    pub fn eval_row_into(&self, chars: &SampleCharacteristics, out: &mut Vec<SampleMeasurement>) {
        let start = out.len();
        out.resize(
            start + self.settings.len(),
            SampleMeasurement {
                time: Seconds::ZERO,
                cpu_energy: Joules::ZERO,
                mem_energy: Joules::ZERO,
                cpi: 0.0,
            },
        );
        self.eval_row_slice(chars, &mut out[start..]);
    }

    /// Evaluates one sample at every compiled setting, writing into a
    /// preallocated row slice (used by incremental recharacterization).
    ///
    /// The bisection runs *iteration-major*: each of the 64 refinement
    /// steps sweeps the whole row, so the divides of neighbouring settings
    /// overlap in the pipeline (and vectorize) instead of chaining through
    /// one cell's 64-step dependency before the next cell starts. Per
    /// cell, the operation sequence — and therefore every output bit — is
    /// unchanged from [`System::simulate_sample`]; only the interleaving
    /// across independent cells differs.
    ///
    /// # Panics
    ///
    /// Panics when `row.len() != self.n_settings()`; in debug builds, when
    /// `chars` is invalid.
    pub fn eval_row_slice(&self, chars: &SampleCharacteristics, row: &mut [SampleMeasurement]) {
        debug_assert!(chars.is_valid(), "invalid sample characteristics");
        assert_eq!(row.len(), self.settings.len(), "row width mismatch");
        let pre = self.pre(chars);
        let w = self.settings.len();

        // ρ-independent latency per setting, then the bisection brackets.
        // A zero-traffic sample degenerates cleanly (ρ is exactly 0.0 at
        // every step, so the converged cell equals the single-evaluation
        // form the interpreted path uses) — no special case, no branch.
        let mut base = vec![0.0f64; w];
        let mut lo = vec![0.0f64; w];
        let mut hi = vec![0.0f64; w];
        for j in 0..w {
            base[j] = (self.ctrl_ns + pre.row_hit_rate * self.hit_ns[j])
                + pre.one_minus_rhr * self.miss_mix_ns[j];
            let lo0 = self.total_at_rho(&pre, base[j], j, 0.0) / self.cpu_hz[j];
            let hi0 = self.total_at_rho(&pre, base[j], j, self.max_util) / self.cpu_hz[j];
            lo[j] = lo0;
            hi[j] = hi0.max(lo0 * (1.0 + 1e-12));
        }

        // Bisect the fixed point of T = core + stall(ρ(T)), whole row per
        // step. The branch-free select keeps the inner loop a straight
        // run of arithmetic over contiguous arrays.
        for _ in 0..64 {
            for j in 0..w {
                let mid = 0.5 * (lo[j] + hi[j]);
                let rho = (pre.bytes / mid / self.eff_bw[j]).min(self.max_util);
                let t = self.total_at_rho(&pre, base[j], j, rho) / self.cpu_hz[j];
                let grow = t > mid;
                lo[j] = if grow { mid } else { lo[j] };
                hi[j] = if grow { hi[j] } else { mid };
            }
        }

        // Converged evaluation and per-cell post-processing.
        for (j, cell) in row.iter_mut().enumerate() {
            let t = 0.5 * (lo[j] + hi[j]);
            let rho = (pre.bytes / t / self.eff_bw[j]).min(self.max_util);
            let total = self.total_at_rho(&pre, base[j], j, rho);
            *cell = self.finish_cell(chars, &pre, j, total, total / self.cpu_hz[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SampleCharacteristics> {
        let mut v = vec![
            SampleCharacteristics::new(0.72, 0.6),
            SampleCharacteristics::new(0.55, 22.0),
            SampleCharacteristics::new(1.0, 6.0),
            SampleCharacteristics::new(0.8, 0.0), // no DRAM traffic
            SampleCharacteristics::new(0.01, 0.0), // CPI floor
        ];
        v[1].mlp = 4.0;
        v[1].row_hit_rate = 0.85;
        v[1].stall_exposure = 0.8;
        v[2].activity_factor = 0.8;
        v
    }

    #[test]
    fn plan_matches_simulate_sample_bit_for_bit() {
        for system in [
            System::galaxy_nexus_class(),
            System::galaxy_nexus_class().with_measurement_noise(0.0),
        ] {
            for grid in [
                FrequencyGrid::coarse(),
                FrequencyGrid::new(200, 1000, 200, 200, 800, 200).unwrap(),
            ] {
                let plan = EvalPlan::compile(&system, grid);
                for chars in samples() {
                    let mut row = Vec::new();
                    plan.eval_row_into(&chars, &mut row);
                    assert_eq!(row.len(), grid.len());
                    for (j, setting) in grid.settings().enumerate() {
                        let direct = system.simulate_sample(&chars, setting);
                        assert_eq!(
                            row[j].time.value().to_bits(),
                            direct.time.value().to_bits(),
                            "time at {setting} for {chars:?}"
                        );
                        assert_eq!(
                            row[j].cpu_energy.value().to_bits(),
                            direct.cpu_energy.value().to_bits(),
                            "cpu energy at {setting}"
                        );
                        assert_eq!(
                            row[j].mem_energy.value().to_bits(),
                            direct.mem_energy.value().to_bits(),
                            "mem energy at {setting}"
                        );
                        assert_eq!(
                            row[j].cpi.to_bits(),
                            direct.cpi.to_bits(),
                            "cpi at {setting}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slice_and_push_paths_agree() {
        let system = System::galaxy_nexus_class();
        let grid = FrequencyGrid::coarse();
        let plan = EvalPlan::compile(&system, grid);
        let chars = SampleCharacteristics::new(1.1, 4.0);
        let mut pushed = Vec::new();
        plan.eval_row_into(&chars, &mut pushed);
        let mut sliced = vec![
            SampleMeasurement {
                time: Seconds::ZERO,
                cpu_energy: Joules::ZERO,
                mem_energy: Joules::ZERO,
                cpi: 0.0,
            };
            plan.n_settings()
        ];
        plan.eval_row_slice(&chars, &mut sliced);
        assert_eq!(pushed, sliced);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let plan = EvalPlan::compile(&System::galaxy_nexus_class(), FrequencyGrid::coarse());
        let mut row = Vec::new();
        plan.eval_row_slice(&SampleCharacteristics::new(1.0, 1.0), &mut row);
    }
}
