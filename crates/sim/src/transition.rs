//! Hardware frequency-transition costs.
//!
//! The paper notes that commercial PLLs take "on the order of 10s of
//! microseconds" to change voltage and frequency, and that memory frequency
//! changes require the controller to idle the channel and retrain. Both
//! domains transition in parallel, so the latency of a joint change is the
//! maximum of the changed domains; the energies add.

use mcdvfs_types::{FreqSetting, Joules, Seconds};

/// Cost of one hardware transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionCost {
    /// Wall-clock time the affected domains are unavailable.
    pub latency: Seconds,
    /// Energy burned performing the transition.
    pub energy: Joules,
}

impl TransitionCost {
    /// A free transition (no domain changed).
    pub const ZERO: Self = Self {
        latency: Seconds::ZERO,
        energy: Joules::ZERO,
    };
}

/// Per-domain transition cost model.
///
/// # Examples
///
/// ```
/// use mcdvfs_sim::TransitionModel;
/// use mcdvfs_types::FreqSetting;
///
/// let m = TransitionModel::mobile_soc();
/// let same = m.cost(FreqSetting::from_mhz(500, 400), FreqSetting::from_mhz(500, 400));
/// assert_eq!(same.latency.value(), 0.0);
/// let both = m.cost(FreqSetting::from_mhz(500, 400), FreqSetting::from_mhz(600, 600));
/// let cpu_only = m.cost(FreqSetting::from_mhz(500, 400), FreqSetting::from_mhz(600, 400));
/// assert!(both.energy > cpu_only.energy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionModel {
    /// PLL relock + voltage ramp for the CPU domain.
    pub cpu_latency: Seconds,
    /// Energy per CPU domain change.
    pub cpu_energy: Joules,
    /// Channel idle + DLL retrain for the memory domain.
    pub mem_latency: Seconds,
    /// Energy per memory domain change.
    pub mem_energy: Joules,
}

impl TransitionModel {
    /// Mobile-SoC-class costs: 30 µs / 6 µJ per CPU change (PLL + PMIC
    /// ramp), 20 µs / 4 µJ per memory change (retrain), so a joint change
    /// lands in the paper's "10s of microseconds" regime.
    #[must_use]
    pub fn mobile_soc() -> Self {
        Self {
            cpu_latency: Seconds::from_micros(30.0),
            cpu_energy: Joules::from_micros(6.0),
            mem_latency: Seconds::from_micros(20.0),
            mem_energy: Joules::from_micros(4.0),
        }
    }

    /// A free transition model, for "no overhead" baselines.
    #[must_use]
    pub fn free() -> Self {
        Self {
            cpu_latency: Seconds::ZERO,
            cpu_energy: Joules::ZERO,
            mem_latency: Seconds::ZERO,
            mem_energy: Joules::ZERO,
        }
    }

    /// Cost of moving from `from` to `to`: domains transition in parallel
    /// (latency is the max of the changed domains), energies add.
    #[must_use]
    pub fn cost(&self, from: FreqSetting, to: FreqSetting) -> TransitionCost {
        let (cpu_changes, mem_changes) = from.domain_changes(to);
        let mut latency = Seconds::ZERO;
        let mut energy = Joules::ZERO;
        if cpu_changes {
            latency = latency.max(self.cpu_latency);
            energy += self.cpu_energy;
        }
        if mem_changes {
            latency = latency.max(self.mem_latency);
            energy += self.mem_energy;
        }
        TransitionCost { latency, energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> TransitionModel {
        TransitionModel::mobile_soc()
    }

    #[test]
    fn unchanged_setting_is_free() {
        let s = FreqSetting::from_mhz(700, 600);
        assert_eq!(m().cost(s, s), TransitionCost::ZERO);
    }

    #[test]
    fn cpu_only_change_costs_cpu_domain() {
        let c = m().cost(
            FreqSetting::from_mhz(700, 600),
            FreqSetting::from_mhz(800, 600),
        );
        assert_eq!(c.latency, m().cpu_latency);
        assert_eq!(c.energy, m().cpu_energy);
    }

    #[test]
    fn mem_only_change_costs_mem_domain() {
        let c = m().cost(
            FreqSetting::from_mhz(700, 600),
            FreqSetting::from_mhz(700, 400),
        );
        assert_eq!(c.latency, m().mem_latency);
        assert_eq!(c.energy, m().mem_energy);
    }

    #[test]
    fn joint_change_parallelizes_latency_and_sums_energy() {
        let c = m().cost(
            FreqSetting::from_mhz(700, 600),
            FreqSetting::from_mhz(100, 200),
        );
        assert_eq!(c.latency, m().cpu_latency.max(m().mem_latency));
        assert_eq!(c.energy, m().cpu_energy + m().mem_energy);
    }

    #[test]
    fn latency_is_tens_of_microseconds() {
        let c = m().cost(
            FreqSetting::from_mhz(100, 200),
            FreqSetting::from_mhz(1000, 800),
        );
        let us = c.latency.as_micros();
        assert!((10.0..100.0).contains(&us), "latency {us} µs");
    }

    #[test]
    fn free_model_is_free() {
        let f = TransitionModel::free();
        let c = f.cost(
            FreqSetting::from_mhz(100, 200),
            FreqSetting::from_mhz(1000, 800),
        );
        assert_eq!(c, TransitionCost::ZERO);
    }
}
