//! The combined CPU + DRAM platform model.
//!
//! [`System`] is the substitute for the paper's Gem5 full-system setup: it
//! executes one fixed-work sample at one frequency setting and returns the
//! measured time and per-component energy.
//!
//! The CPU and memory models are coupled: stall time depends on average
//! DRAM latency, which depends on channel utilization, which depends on
//! execution time, which depends on stall time. The closure
//! `T ↦ core_time + stall(ρ(T))` is strictly decreasing in `T` (more time
//! means lower utilization means less queueing), so the fixed point is
//! unique and found by bisection.

use mcdvfs_cpu::{CorePerfModel, CpuPowerModel, SampleExecution, VfCurve};
use mcdvfs_dram::{DramPowerModel, LatencyModel};
use mcdvfs_types::{
    FreqSetting, SampleCharacteristics, SampleMeasurement, Seconds, INSTRUCTIONS_PER_SAMPLE,
};

/// The simulated mobile platform (CPU + caches + LPDDR3 memory).
///
/// # Examples
///
/// Reproduce the paper's core observation that running slower is not the
/// same as running efficiently — at the lowest frequencies a balanced
/// sample burns *more* total energy than at moderate ones:
///
/// ```
/// use mcdvfs_sim::System;
/// use mcdvfs_types::{FreqSetting, SampleCharacteristics};
///
/// let system = System::galaxy_nexus_class();
/// let sample = SampleCharacteristics::new(1.0, 6.0);
/// let slowest = system.simulate_sample(&sample, FreqSetting::from_mhz(100, 200));
/// let moderate = system.simulate_sample(&sample, FreqSetting::from_mhz(500, 400));
/// assert!(slowest.energy() > moderate.energy());
/// ```
#[derive(Debug, Clone)]
pub struct System {
    perf: CorePerfModel,
    cpu_power: CpuPowerModel,
    vf: VfCurve,
    dram_power: DramPowerModel,
    latency: LatencyModel,
    /// Relative amplitude of per-(sample, setting) measurement noise.
    noise: f64,
}

impl System {
    /// Default measurement-noise amplitude: ±0.4%. Near-tied settings'
    /// readings can then diverge by up to 0.8% — slightly past the paper's
    /// 0.5% tie-break band, so exact optimal tracking occasionally flaps
    /// among true performance ties (the behaviour whose cost performance
    /// clusters exist to eliminate), while the tie-break still pools the
    /// bulk of the noise.
    pub const DEFAULT_NOISE: f64 = 0.004;

    /// The platform the paper emulates: a Galaxy-Nexus-class phone with an
    /// A15-like core model, PandaBoard-calibrated CPU power, and Micron
    /// LPDDR3 memory. Measurements carry the default ±0.5% noise,
    /// deterministic per (sample, setting) so repeated simulation of the
    /// same pair reproduces the same reading.
    #[must_use]
    pub fn galaxy_nexus_class() -> Self {
        Self {
            perf: CorePerfModel::a15_like(),
            cpu_power: CpuPowerModel::pandaboard(),
            vf: VfCurve::pandaboard(),
            dram_power: DramPowerModel::micron_lpddr3(),
            latency: LatencyModel::lpddr3(),
            noise: Self::DEFAULT_NOISE,
        }
    }

    /// Builds a system from explicit component models (noise-free; chain
    /// [`Self::with_measurement_noise`] to add noise).
    #[must_use]
    pub fn new(
        perf: CorePerfModel,
        cpu_power: CpuPowerModel,
        vf: VfCurve,
        dram_power: DramPowerModel,
        latency: LatencyModel,
    ) -> Self {
        Self {
            perf,
            cpu_power,
            vf,
            dram_power,
            latency,
            noise: 0.0,
        }
    }

    /// Sets the relative measurement-noise amplitude (`0.0` disables it;
    /// `0.005` is the paper-level default).
    ///
    /// # Panics
    ///
    /// Panics when `amplitude` is negative or ≥ 10% (that would no longer
    /// be measurement noise).
    #[must_use]
    pub fn with_measurement_noise(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..0.1).contains(&amplitude),
            "noise amplitude must be in [0, 0.1)"
        );
        self.noise = amplitude;
        self
    }

    /// Deterministic noise factor `1 ± noise` derived from the sample
    /// characteristics and the setting, so each (sample, setting) pair
    /// reads the same value on every simulation.
    pub(crate) fn noise_factor(
        &self,
        chars: &SampleCharacteristics,
        setting: FreqSetting,
        salt: u64,
    ) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        let mut z = chars.base_cpi.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ chars.mpki.to_bits().rotate_left(17)
            ^ (u64::from(setting.cpu.mhz()) << 32)
            ^ u64::from(setting.mem.mhz())
            ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        // splitmix64 finalizer.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.noise * (2.0 * unit - 1.0)
    }

    /// The analytic DRAM latency model in use.
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The CPU voltage curve in use.
    #[must_use]
    pub fn vf_curve(&self) -> &VfCurve {
        &self.vf
    }

    /// The core performance model in use (for plan compilation).
    pub(crate) fn perf_model(&self) -> &CorePerfModel {
        &self.perf
    }

    /// The CPU power model in use (for plan compilation).
    pub(crate) fn cpu_power_model(&self) -> &CpuPowerModel {
        &self.cpu_power
    }

    /// The DRAM power model in use (for plan compilation).
    pub(crate) fn dram_power_model(&self) -> &DramPowerModel {
        &self.dram_power
    }

    /// Executes one sample at `setting`, returning the measurement a
    /// Gem5-style run would record for it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `chars` is invalid.
    #[must_use]
    pub fn simulate_sample(
        &self,
        chars: &SampleCharacteristics,
        setting: FreqSetting,
    ) -> SampleMeasurement {
        debug_assert!(chars.is_valid(), "invalid sample characteristics");
        let bytes = chars.dram_bytes() as f64;

        let exec_at = |time_guess: f64| -> SampleExecution {
            let rho = self.latency.utilization(setting.mem, bytes, time_guess);
            let lat = self
                .latency
                .avg_latency_ns(setting.mem, chars.row_hit_rate, rho);
            self.perf.execute(chars, setting.cpu, lat)
        };

        let exec = if bytes == 0.0 {
            // No DRAM traffic: single evaluation, no coupling.
            self.perf.execute(
                chars,
                setting.cpu,
                self.latency
                    .avg_latency_ns(setting.mem, chars.row_hit_rate, 0.0),
            )
        } else {
            // Bisect the fixed point of T = core + stall(ρ(T)).
            // Lower bound: unloaded memory. Upper bound: saturated memory.
            let lo0 = {
                let lat = self
                    .latency
                    .avg_latency_ns(setting.mem, chars.row_hit_rate, 0.0);
                self.perf.execute(chars, setting.cpu, lat).time.value()
            };
            let hi0 = {
                let lat = self.latency.avg_latency_ns(
                    setting.mem,
                    chars.row_hit_rate,
                    self.latency.max_utilization(),
                );
                self.perf.execute(chars, setting.cpu, lat).time.value()
            };
            let (mut lo, mut hi) = (lo0, hi0.max(lo0 * (1.0 + 1e-12)));
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                if exec_at(mid).time.value() > mid {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            exec_at(0.5 * (lo + hi))
        };

        // Physical bandwidth floor: the sample cannot finish before its
        // bytes have crossed the channel.
        let bw_floor = if bytes > 0.0 {
            bytes / self.latency.effective_bandwidth(setting.mem)
        } else {
            0.0
        };
        let time_exact = Seconds::new(exec.time.value().max(bw_floor));
        // Reported time carries the per-(sample, setting) performance
        // measurement noise — the thing the paper's 0.5% tie-break filters.
        let time = time_exact * self.noise_factor(chars, setting, 1);
        // If the floor extended the sample, the extra time is stall.
        let busy = (exec.busy_frac * exec.time.value() / time_exact.value()).min(1.0);
        let cpi = time.value() * setting.cpu.hz() / INSTRUCTIONS_PER_SAMPLE as f64;

        // Energies are computed from the noise-free time: keeping the
        // energy side deterministic keeps budget feasibility stable, so
        // noise flips choices only among performance near-ties, never
        // across inefficiency tiers.
        let cpu_energy = self.cpu_power.energy(
            setting.cpu,
            &self.vf,
            chars.activity_factor,
            busy,
            time_exact,
        );
        let rho = self
            .latency
            .utilization(setting.mem, bytes, time_exact.value());
        let mem_energy = self
            .dram_power
            .energy(
                setting.mem,
                time_exact,
                chars.dram_accesses(),
                chars.row_hit_rate,
                chars.write_frac,
                rho,
            )
            .total();

        SampleMeasurement {
            time,
            cpu_energy,
            mem_energy,
            cpi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise-free system: model-exactness tests need deterministic values.
    fn sys() -> System {
        System::galaxy_nexus_class().with_measurement_noise(0.0)
    }

    fn cpu_bound() -> SampleCharacteristics {
        let mut c = SampleCharacteristics::new(0.72, 0.6);
        c.activity_factor = 0.9;
        c
    }

    fn mem_bound() -> SampleCharacteristics {
        let mut c = SampleCharacteristics::new(0.55, 22.0);
        c.mlp = 4.0;
        c.row_hit_rate = 0.85;
        c.stall_exposure = 0.8;
        c
    }

    fn balanced() -> SampleCharacteristics {
        let mut c = SampleCharacteristics::new(1.0, 6.0);
        c.activity_factor = 0.8;
        c.mlp = 1.6;
        c.stall_exposure = 0.75;
        c
    }

    #[test]
    fn measurements_are_valid() {
        let s = sys();
        for setting in [
            FreqSetting::from_mhz(100, 200),
            FreqSetting::from_mhz(500, 400),
            FreqSetting::from_mhz(1000, 800),
        ] {
            for chars in [cpu_bound(), mem_bound(), balanced()] {
                let m = s.simulate_sample(&chars, setting);
                assert!(m.is_valid(), "{setting} {chars:?} -> {m:?}");
            }
        }
    }

    #[test]
    fn cpu_bound_sample_is_insensitive_to_memory_frequency() {
        // Paper anchor: bzip2 at 1000 MHz CPU is within 3% between 200 and
        // 800 MHz memory.
        let s = sys();
        let slow = s.simulate_sample(&cpu_bound(), FreqSetting::from_mhz(1000, 200));
        let fast = s.simulate_sample(&cpu_bound(), FreqSetting::from_mhz(1000, 800));
        let loss = slow.time.value() / fast.time.value() - 1.0;
        assert!(
            (0.0..0.03).contains(&loss),
            "memory sensitivity of CPU-bound sample: {loss}"
        );
        // ...but saves memory energy at the lower frequency.
        assert!(slow.mem_energy < fast.mem_energy);
    }

    #[test]
    fn memory_bound_sample_needs_memory_frequency() {
        let s = sys();
        let slow = s.simulate_sample(&mem_bound(), FreqSetting::from_mhz(1000, 200));
        let fast = s.simulate_sample(&mem_bound(), FreqSetting::from_mhz(1000, 800));
        assert!(
            slow.time.value() > 1.4 * fast.time.value(),
            "memory-bound slowdown {}x",
            slow.time.value() / fast.time.value()
        );
    }

    #[test]
    fn running_slowest_is_not_most_efficient() {
        // Paper Section IV: at 100/200 MHz, total energy *increases* —
        // leakage and background dominate the stretched execution.
        let s = sys();
        let slowest = s.simulate_sample(&balanced(), FreqSetting::from_mhz(100, 200));
        let moderate = s.simulate_sample(&balanced(), FreqSetting::from_mhz(500, 400));
        assert!(slowest.energy().value() > 1.2 * moderate.energy().value());
    }

    #[test]
    fn fastest_is_not_most_efficient_either() {
        let s = sys();
        let fastest = s.simulate_sample(&balanced(), FreqSetting::from_mhz(1000, 800));
        let moderate = s.simulate_sample(&balanced(), FreqSetting::from_mhz(500, 400));
        assert!(fastest.energy().value() > 1.15 * moderate.energy().value());
        assert!(fastest.time < moderate.time);
    }

    #[test]
    fn time_is_monotone_in_cpu_frequency() {
        let s = sys();
        for chars in [cpu_bound(), balanced(), mem_bound()] {
            let mut prev = f64::INFINITY;
            for mhz in (100..=1000).step_by(100) {
                let m = s.simulate_sample(&chars, FreqSetting::from_mhz(mhz, 400));
                assert!(m.time.value() < prev, "{chars:?} at {mhz} MHz");
                prev = m.time.value();
            }
        }
    }

    #[test]
    fn time_is_monotone_in_memory_frequency() {
        let s = sys();
        for chars in [balanced(), mem_bound()] {
            let mut prev = f64::INFINITY;
            for mhz in (200..=800).step_by(100) {
                let m = s.simulate_sample(&chars, FreqSetting::from_mhz(800, mhz));
                assert!(m.time.value() <= prev, "{chars:?} at mem {mhz} MHz");
                prev = m.time.value();
            }
        }
    }

    #[test]
    fn saturated_memory_hits_the_bandwidth_floor() {
        let s = sys();
        let m = s.simulate_sample(&mem_bound(), FreqSetting::from_mhz(1000, 200));
        let bytes = mem_bound().dram_bytes() as f64;
        let floor = bytes
            / s.latency_model()
                .effective_bandwidth(mcdvfs_types::MemFreq::from_mhz(200));
        assert!(m.time.value() >= floor * 0.999);
    }

    #[test]
    fn no_dram_traffic_short_circuits() {
        let s = sys();
        let mut silent = SampleCharacteristics::new(0.8, 0.0);
        silent.activity_factor = 0.95;
        let slow_mem = s.simulate_sample(&silent, FreqSetting::from_mhz(800, 200));
        let fast_mem = s.simulate_sample(&silent, FreqSetting::from_mhz(800, 800));
        assert!((slow_mem.time.value() - fast_mem.time.value()).abs() < 1e-12);
        // CPU energy identical; only memory background differs.
        assert!((slow_mem.cpu_energy.value() - fast_mem.cpu_energy.value()).abs() < 1e-15);
        assert!(slow_mem.mem_energy < fast_mem.mem_energy);
    }

    #[test]
    fn fixed_point_is_stable() {
        // Evaluating the returned time's utilization must reproduce the
        // returned time (the solver converged).
        let s = sys();
        let chars = mem_bound();
        let setting = FreqSetting::from_mhz(900, 300);
        let m = s.simulate_sample(&chars, setting);
        let bytes = chars.dram_bytes() as f64;
        let rho = s
            .latency_model()
            .utilization(setting.mem, bytes, m.time.value());
        let lat = s
            .latency_model()
            .avg_latency_ns(setting.mem, chars.row_hit_rate, rho);
        let re = CorePerfModel::a15_like().execute(&chars, setting.cpu, lat);
        let t_model = re
            .time
            .value()
            .max(bytes / s.latency_model().effective_bandwidth(setting.mem));
        assert!(
            (t_model - m.time.value()).abs() / m.time.value() < 1e-6,
            "fixed point drift: {} vs {}",
            t_model,
            m.time.value()
        );
    }

    #[test]
    fn imax_lands_in_papers_range() {
        // The paper observes maximum achievable inefficiency between ~1.3
        // and 2 across benchmarks. Check the balanced profile's grid.
        let s = sys();
        let mut energies = Vec::new();
        for cpu in (100..=1000).step_by(100) {
            for mem in (200..=800).step_by(100) {
                energies.push(
                    s.simulate_sample(&balanced(), FreqSetting::from_mhz(cpu, mem))
                        .energy()
                        .value(),
                );
            }
        }
        let emin = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let emax = energies.iter().cloned().fold(0.0, f64::max);
        let imax = emax / emin;
        assert!(
            (1.25..2.3).contains(&imax),
            "Imax {imax} outside the paper's observed band"
        );
    }

    #[test]
    fn cpi_reflects_final_time() {
        let s = sys();
        let m = s.simulate_sample(&balanced(), FreqSetting::from_mhz(600, 400));
        let expect = m.time.value() * 600e6 / 1e7;
        assert!((m.cpi - expect).abs() < 1e-9);
    }

    #[test]
    fn measurement_noise_is_deterministic_and_bounded() {
        let noisy = System::galaxy_nexus_class();
        let clean = sys();
        let chars = balanced();
        let setting = FreqSetting::from_mhz(700, 500);
        let a = noisy.simulate_sample(&chars, setting);
        let b = noisy.simulate_sample(&chars, setting);
        assert_eq!(a, b, "same (sample, setting) reads the same value");
        let exact = clean.simulate_sample(&chars, setting);
        let rel = (a.time.value() / exact.time.value() - 1.0).abs();
        assert!(rel <= System::DEFAULT_NOISE + 1e-12, "time noise {rel}");
        // Energy is deliberately noise-free so budget feasibility is
        // stable across repeated measurements.
        assert_eq!(a.cpu_energy, exact.cpu_energy);
        assert_eq!(a.mem_energy, exact.mem_energy);
    }

    #[test]
    fn noise_differs_across_settings_and_samples() {
        let noisy = System::galaxy_nexus_class();
        let clean = sys();
        let chars = balanced();
        let ratio = |setting| {
            noisy.simulate_sample(&chars, setting).time.value()
                / clean.simulate_sample(&chars, setting).time.value()
        };
        // Two CPU-equivalent settings get independent noise draws.
        let r1 = ratio(FreqSetting::from_mhz(1000, 700));
        let r2 = ratio(FreqSetting::from_mhz(1000, 800));
        assert!((r1 - r2).abs() > 1e-6, "noise must vary per setting");
    }

    #[test]
    #[should_panic(expected = "noise amplitude")]
    fn excessive_noise_rejected() {
        let _ = System::galaxy_nexus_class().with_measurement_noise(0.5);
    }
}
