//! Minimal discrete-event kernel.
//!
//! A time-ordered event queue with stable FIFO ordering among simultaneous
//! events. The [`DvfsController`](crate::DvfsController) uses it to retire
//! pending frequency transitions; it is generic so tests and extensions can
//! drive any payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    /// Simulated time in seconds.
    at: f64,
    /// Monotone sequence number for FIFO tie-breaking.
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A monotone discrete-event queue.
///
/// # Examples
///
/// ```
/// use mcdvfs_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or earlier than the current time — the kernel
    /// is monotone; events cannot be scheduled in the past.
    pub fn schedule(&mut self, at: f64, payload: T) {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.now,
            "cannot schedule in the past ({at} < {})",
            self.now
        );
        self.heap.push(Scheduled {
            at,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: f64) -> Option<(f64, T)> {
        if self.heap.peek().is_some_and(|e| e.at <= deadline) {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        q.schedule(1.0, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "early");
        q.schedule(10.0, "late");
        assert_eq!(q.pop_until(5.0), Some((1.0, "early")));
        assert_eq!(q.pop_until(5.0), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(10.0));
    }

    #[test]
    fn empty_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
