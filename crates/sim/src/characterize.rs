//! Grid characterization — the product of the paper's simulation campaign.
//!
//! The paper runs 70 Gem5 simulations per benchmark (one per coarse-grid
//! setting; 496 for the fine grid) and collects performance and energy
//! every 10 M user-mode instructions. [`CharacterizationGrid`] holds the
//! same data: a dense `(sample × setting)` matrix of
//! [`SampleMeasurement`]s, *measured* (simulated) rather than predicted,
//! exactly as the paper emphasizes.
//!
//! The matrix lives in one contiguous row-major arena (sample-major,
//! setting minor), so a sample row is a plain slice of the arena and a
//! full-matrix scan is a single linear pass. Per-sample `Emin` and
//! per-setting time/energy column totals are computed once at
//! construction; the repeated-sweep analyses (optimal series, clusters,
//! stable regions, Figures 2–12) hit cached values instead of rescanning
//! the matrix.

use crate::plan::EvalPlan;
use crate::system::System;
use mcdvfs_obs::{count_edges, MetricSet, Profiler};
use mcdvfs_types::{
    hash_measurements, Error, FreqSetting, FrequencyGrid, Joules, Result, SampleMeasurement,
    Seconds,
};
use mcdvfs_workloads::SampleTrace;
use std::time::Instant;

/// A complete measurement matrix for one workload on one platform grid.
///
/// Row `s` holds sample `s` measured at every grid setting, indexed by the
/// grid's flat setting index. Rows are stored back to back in one
/// contiguous arena.
///
/// # Examples
///
/// ```
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let system = System::galaxy_nexus_class();
/// let grid = FrequencyGrid::coarse();
/// let data = CharacterizationGrid::characterize(
///     &system,
///     &Benchmark::Bzip2.trace().window(0, 4),
///     grid,
/// );
/// assert_eq!(data.n_samples(), 4);
/// assert_eq!(data.n_settings(), 70);
/// // Per-sample Emin is the row minimum.
/// let emin = data.sample_emin(0);
/// assert!(data.sample_row(0).iter().all(|m| m.energy() >= emin));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationGrid {
    name: String,
    grid: FrequencyGrid,
    /// Number of settings per row (the arena's stride).
    n_settings: usize,
    /// Row-major arena: sample `s` at setting `idx` lives at
    /// `arena[s * n_settings + idx]`.
    arena: Vec<SampleMeasurement>,
    /// Cached per-sample minimum energy (row minimum).
    emin: Vec<Joules>,
    /// Cached per-setting total execution time (column sum).
    col_time: Vec<Seconds>,
    /// Cached per-setting total energy (column sum).
    col_energy: Vec<Joules>,
    /// Cached per-row content hash ([`hash_measurements`] of each row);
    /// [`Self::fingerprint`] folds these, so an incremental update only
    /// rehashes the rows it rewrote.
    row_hashes: Vec<u64>,
}

impl CharacterizationGrid {
    /// Runs the full campaign: every sample of `trace` at every setting of
    /// `grid` on `system`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn characterize(system: &System, trace: &SampleTrace, grid: FrequencyGrid) -> Self {
        assert!(!trace.is_empty(), "cannot characterize an empty trace");
        let plan = EvalPlan::compile(system, grid);
        let mut arena = Vec::with_capacity(trace.len() * plan.n_settings());
        for chars in trace.iter() {
            plan.eval_row_into(chars, &mut arena);
        }
        Self::from_arena(trace.name(), grid, plan.n_settings(), arena)
    }

    /// As [`Self::characterize`], fanned out over `threads` OS threads
    /// (sample rows are independent, so the result is bit-identical to the
    /// sequential run).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `threads` is zero.
    #[must_use]
    pub fn characterize_parallel(
        system: &System,
        trace: &SampleTrace,
        grid: FrequencyGrid,
        threads: usize,
    ) -> Self {
        Self::characterize_profiled(system, trace, grid, threads, Profiler::noop())
    }

    /// As [`Self::characterize_parallel`], with phase spans and per-worker
    /// metrics flowing into `profiler`.
    ///
    /// The instrumentation is purely observational: each worker opens one
    /// `characterize/worker` span and builds a private [`MetricSet`]
    /// (rows simulated, busy nanoseconds) that the spawning thread merges
    /// after the scoped joins, so the measurement arena — and everything
    /// derived from it — is bit-identical with profiling on or off, at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `threads` is zero.
    #[must_use]
    pub fn characterize_profiled(
        system: &System,
        trace: &SampleTrace,
        grid: FrequencyGrid,
        threads: usize,
        profiler: &Profiler,
    ) -> Self {
        assert!(!trace.is_empty(), "cannot characterize an empty trace");
        assert!(threads > 0, "need at least one thread");
        let phase = profiler.span("characterize");
        let phase_id = phase.id();
        let plan = EvalPlan::compile(system, grid);
        let samples = trace.samples();
        let chunk = samples.len().div_ceil(threads);
        let width = plan.n_settings();
        let mut arena: Vec<SampleMeasurement> = Vec::with_capacity(samples.len() * width);
        std::thread::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks(chunk)
                .map(|part| {
                    let plan = &plan;
                    scope.spawn(move || {
                        let _worker = profiler.span_under(phase_id, "worker");
                        let started = profiler.is_enabled().then(Instant::now);
                        let mut rows = Vec::with_capacity(part.len() * width);
                        for chars in part {
                            plan.eval_row_into(chars, &mut rows);
                        }
                        let mut metrics = MetricSet::new();
                        if let Some(t0) = started {
                            metrics.incr("characterize.samples", part.len() as u64);
                            metrics.observe(
                                "characterize.worker_rows",
                                (part.len() * width) as f64,
                                count_edges,
                            );
                            metrics.observe_duration_ns(
                                "characterize.worker_busy_ns",
                                t0.elapsed().as_nanos() as f64,
                            );
                        }
                        (rows, metrics)
                    })
                })
                .collect();
            for handle in handles {
                let (rows, metrics) = handle.join().expect("worker thread panicked");
                arena.extend(rows);
                profiler.absorb(metrics);
            }
        });
        drop(phase);
        Self::from_arena(trace.name(), grid, width, arena)
    }

    /// As [`Self::characterize_parallel`] with the thread count defaulted
    /// from [`Self::default_threads`] — the constructor the figure and
    /// sweep harnesses use.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn characterize_auto(system: &System, trace: &SampleTrace, grid: FrequencyGrid) -> Self {
        Self::characterize_parallel(system, trace, grid, Self::default_threads())
    }

    /// Default worker-thread count: the machine's available parallelism,
    /// falling back to one thread when it cannot be queried.
    #[must_use]
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// Builds a grid directly from a row-major measurement arena — the
    /// constructor reference implementations (see `mcdvfs_core::legacy`)
    /// use to produce a grid without going through the compiled
    /// [`EvalPlan`] path.
    ///
    /// # Panics
    ///
    /// Panics when `n_settings` is zero, `arena` is empty, its length is
    /// not a multiple of `n_settings`, or `n_settings` differs from the
    /// grid's size.
    #[must_use]
    pub fn from_measurements(
        name: &str,
        grid: FrequencyGrid,
        n_settings: usize,
        arena: Vec<SampleMeasurement>,
    ) -> Self {
        assert!(n_settings > 0, "need at least one setting");
        assert_eq!(n_settings, grid.len(), "arena stride must match the grid");
        assert!(
            !arena.is_empty() && arena.len().is_multiple_of(n_settings),
            "arena must hold whole rows"
        );
        Self::from_arena(name, grid, n_settings, arena)
    }

    fn from_arena(
        name: &str,
        grid: FrequencyGrid,
        n_settings: usize,
        arena: Vec<SampleMeasurement>,
    ) -> Self {
        debug_assert!(n_settings > 0 && arena.len().is_multiple_of(n_settings));
        // One linear pass fills every cache: row minima (Emin), column
        // totals accumulated in sample order (so the cached sums are
        // bit-identical to summing rows on demand), and per-row content
        // hashes for the incremental fingerprint.
        let n_samples = arena.len() / n_settings;
        let mut emin = Vec::with_capacity(n_samples);
        let mut row_hashes = Vec::with_capacity(n_samples);
        let mut col_time = vec![Seconds::ZERO; n_settings];
        let mut col_energy = vec![Joules::ZERO; n_settings];
        for row in arena.chunks_exact(n_settings) {
            let mut row_min = Joules::new(f64::INFINITY);
            for (idx, m) in row.iter().enumerate() {
                row_min = row_min.min(m.energy());
                col_time[idx] += m.time;
                col_energy[idx] += m.energy();
            }
            emin.push(row_min);
            row_hashes.push(hash_measurements(row));
        }
        Self {
            name: name.to_string(),
            grid,
            n_settings,
            arena,
            emin,
            col_time,
            col_energy,
            row_hashes,
        }
    }

    /// Incrementally re-characterizes the samples listed in `dirty` after
    /// their characteristics changed, leaving every other row's
    /// measurements untouched.
    ///
    /// `trace` is the *updated* trace (same length and workload as the one
    /// originally characterized). Each dirty row is re-simulated through a
    /// freshly compiled [`EvalPlan`] — bit-identical to what a full
    /// recharacterization of the updated trace would produce for that row
    /// — and its cached `Emin` and content hash are refreshed. The
    /// per-setting column totals are then rebuilt in one linear pass in
    /// sample order: floating-point sums are order-sensitive, so
    /// re-accumulating (rather than delta-adjusting) is what keeps the
    /// cached totals bit-identical to a full recompute. That pass touches
    /// only already-materialized measurements, so its cost is microseconds
    /// against the milliseconds-per-row simulation it avoids.
    ///
    /// Duplicate indices in `dirty` are evaluated once.
    ///
    /// # Panics
    ///
    /// Panics when `trace` has a different number of samples than the
    /// grid, or when a dirty index is out of range.
    pub fn recharacterize(&mut self, system: &System, trace: &SampleTrace, dirty: &[usize]) {
        assert_eq!(
            trace.len(),
            self.n_samples(),
            "updated trace must match the characterized sample count"
        );
        if dirty.is_empty() {
            return;
        }
        let plan = EvalPlan::compile(system, self.grid);
        debug_assert_eq!(plan.n_settings(), self.n_settings);
        let mut seen = vec![false; self.n_samples()];
        for &s in dirty {
            assert!(s < seen.len(), "dirty sample index {s} out of range");
            if std::mem::replace(&mut seen[s], true) {
                continue;
            }
            let row = &mut self.arena[s * self.n_settings..(s + 1) * self.n_settings];
            plan.eval_row_slice(&trace.samples()[s], row);
            let mut row_min = Joules::new(f64::INFINITY);
            for m in row.iter() {
                row_min = row_min.min(m.energy());
            }
            self.emin[s] = row_min;
            self.row_hashes[s] = hash_measurements(row);
        }
        for t in &mut self.col_time {
            *t = Seconds::ZERO;
        }
        for e in &mut self.col_energy {
            *e = Joules::ZERO;
        }
        for row in self.arena.chunks_exact(self.n_settings) {
            for (idx, m) in row.iter().enumerate() {
                self.col_time[idx] += m.time;
                self.col_energy[idx] += m.energy();
            }
        }
    }

    /// The workload's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform grid characterized.
    #[must_use]
    pub fn grid(&self) -> FrequencyGrid {
        self.grid
    }

    /// Number of samples (matrix rows).
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.emin.len()
    }

    /// Number of settings (matrix columns).
    #[must_use]
    pub fn n_settings(&self) -> usize {
        self.n_settings
    }

    /// Total instructions represented (samples × 10 M).
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.n_samples() as u64 * mcdvfs_types::INSTRUCTIONS_PER_SAMPLE
    }

    /// All measurements of sample `s`, indexed by setting — a contiguous
    /// slice of the arena.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn sample_row(&self, s: usize) -> &[SampleMeasurement] {
        &self.arena[s * self.n_settings..(s + 1) * self.n_settings]
    }

    /// Measurement of sample `s` at flat setting index `idx`.
    #[must_use]
    pub fn measurement(&self, s: usize, idx: usize) -> &SampleMeasurement {
        &self.sample_row(s)[idx]
    }

    /// Measurement of sample `s` at `setting`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SettingOffGrid`] when `setting` is not on the grid.
    pub fn measurement_at(&self, s: usize, setting: FreqSetting) -> Result<&SampleMeasurement> {
        let idx = self.grid.index_of(setting).ok_or(Error::SettingOffGrid {
            setting: setting.to_string(),
        })?;
        Ok(self.measurement(s, idx))
    }

    /// Minimum energy any setting achieves for sample `s` — the paper's
    /// per-sample `Emin`, found by brute-force search over the grid.
    #[must_use]
    pub fn sample_emin(&self, s: usize) -> Joules {
        self.emin[s]
    }

    /// Sum of per-sample `Emin` over the whole trace: the least energy the
    /// workload could consume with free per-sample retuning.
    #[must_use]
    pub fn total_emin(&self) -> Joules {
        self.emin.iter().copied().sum()
    }

    /// Total execution time when the whole trace runs at one fixed setting
    /// (cached column sum).
    #[must_use]
    pub fn total_time_at(&self, idx: usize) -> Seconds {
        self.col_time[idx]
    }

    /// Total energy when the whole trace runs at one fixed setting (cached
    /// column sum).
    #[must_use]
    pub fn total_energy_at(&self, idx: usize) -> Joules {
        self.col_energy[idx]
    }

    /// The longest fixed-setting execution time — the paper's speedup
    /// baseline (speedup 1.0).
    #[must_use]
    pub fn longest_total_time(&self) -> Seconds {
        self.col_time
            .iter()
            .copied()
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Minimum fixed-setting total energy — the denominator of the paper's
    /// Figure 2 whole-run inefficiency.
    #[must_use]
    pub fn min_total_energy(&self) -> Joules {
        self.col_energy
            .iter()
            .copied()
            .fold(Joules::new(f64::INFINITY), Joules::min)
    }

    /// A stable 64-bit content fingerprint of the characterization:
    /// workload name, grid shape and settings, and every measurement's
    /// exact IEEE-754 bits.
    ///
    /// Two grids fingerprint equal iff they would answer every query
    /// identically, so the serving layer keys its response cache on this
    /// value. FNV-1a over raw bits (not rendered decimals) means values
    /// that print alike but differ in the last ulp still get distinct
    /// fingerprints.
    ///
    /// The fingerprint folds the cached per-row hashes rather than
    /// re-reading the arena, so after [`Self::recharacterize`] updates a
    /// few rows, refreshing it costs `O(rows)` hash folds instead of a
    /// full `O(rows × settings)` measurement scan.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = mcdvfs_types::Fnv1a64::new();
        h.write(self.name.as_bytes());
        h.write_u64(self.n_samples() as u64);
        h.write_u64(self.n_settings as u64);
        for setting in self.grid.settings() {
            h.write_u64(u64::from(setting.cpu.mhz()));
            h.write_u64(u64::from(setting.mem.mhz()));
        }
        for &row_hash in &self.row_hashes {
            h.write_u64(row_hash);
        }
        h.finish()
    }

    /// Freezes this characterization into a [`mcdvfs_store::Snapshot`] for
    /// persistence. The snapshot carries the raw measurement arena plus the
    /// current [`Self::fingerprint`]; [`Self::from_snapshot`] reconstructs a
    /// grid that compares equal (bit-identical floats, identical caches).
    #[must_use]
    pub fn to_snapshot(&self) -> mcdvfs_store::Snapshot {
        mcdvfs_store::Snapshot {
            name: self.name.clone(),
            grid: self.grid,
            n_settings: self.n_settings,
            fingerprint: self.fingerprint(),
            arena: self.arena.clone(),
        }
    }

    /// Reconstructs a characterization from a decoded snapshot.
    ///
    /// The arena is rehydrated through the same single-pass cache builder
    /// fresh characterization uses, so the result is `==` to the grid that
    /// produced the snapshot — every derived answer (optimal settings,
    /// clusters, governed schedules) is bit-identical. The rebuilt grid's
    /// fingerprint is re-derived and checked against the snapshot header, so
    /// a snapshot whose contents drifted from its key is rejected rather
    /// than silently served.
    ///
    /// # Errors
    ///
    /// Returns [`mcdvfs_store::SnapshotError::Malformed`] when the dims are
    /// inconsistent, or `FingerprintMismatch` when the rebuilt grid does not
    /// hash to the snapshot's advertised fingerprint.
    pub fn from_snapshot(
        snapshot: mcdvfs_store::Snapshot,
    ) -> std::result::Result<Self, mcdvfs_store::SnapshotError> {
        let malformed = |reason: &str| mcdvfs_store::SnapshotError::Malformed {
            reason: reason.to_string(),
        };
        if snapshot.n_settings == 0 || snapshot.n_settings != snapshot.grid.len() {
            return Err(malformed("snapshot stride does not match its grid"));
        }
        if snapshot.arena.is_empty() || !snapshot.arena.len().is_multiple_of(snapshot.n_settings) {
            return Err(malformed("snapshot arena does not hold whole rows"));
        }
        let fingerprint = snapshot.fingerprint;
        let grid = Self::from_arena(
            &snapshot.name,
            snapshot.grid,
            snapshot.n_settings,
            snapshot.arena,
        );
        let computed = grid.fingerprint();
        if computed != fingerprint {
            return Err(mcdvfs_store::SnapshotError::FingerprintMismatch {
                stored: fingerprint,
                computed,
            });
        }
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_workloads::Benchmark;

    fn small_grid() -> FrequencyGrid {
        FrequencyGrid::new(200, 1000, 200, 200, 800, 200).unwrap()
    }

    fn data() -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &Benchmark::Gobmk.trace().window(0, 10),
            small_grid(),
        )
    }

    #[test]
    fn dimensions_match_inputs() {
        let d = data();
        assert_eq!(d.n_samples(), 10);
        assert_eq!(d.n_settings(), small_grid().len());
        assert_eq!(d.name(), "gobmk");
        assert_eq!(d.total_instructions(), 100_000_000);
    }

    #[test]
    fn every_measurement_is_valid() {
        let d = data();
        for s in 0..d.n_samples() {
            for m in d.sample_row(s) {
                assert!(m.is_valid());
            }
        }
    }

    #[test]
    fn emin_is_the_row_minimum() {
        let d = data();
        for s in 0..d.n_samples() {
            let emin = d.sample_emin(s);
            let actual = d
                .sample_row(s)
                .iter()
                .map(|m| m.energy())
                .fold(Joules::new(f64::INFINITY), Joules::min);
            assert_eq!(emin, actual);
            assert!(emin.value() > 0.0);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let d = data();
        // Deterministic: recharacterizing the same inputs reproduces it.
        assert_eq!(d.fingerprint(), data().fingerprint());
        // Sensitive to the trace window, the grid, and the workload.
        let other_window = CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &Benchmark::Gobmk.trace().window(0, 11),
            small_grid(),
        );
        assert_ne!(d.fingerprint(), other_window.fingerprint());
        let other_grid = CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &Benchmark::Gobmk.trace().window(0, 10),
            FrequencyGrid::coarse(),
        );
        assert_ne!(d.fingerprint(), other_grid.fingerprint());
        let other_workload = CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &Benchmark::Mcf.trace().window(0, 10),
            small_grid(),
        );
        assert_ne!(d.fingerprint(), other_workload.fingerprint());
    }

    #[test]
    fn total_emin_sums_rows() {
        let d = data();
        let total: Joules = (0..d.n_samples()).map(|s| d.sample_emin(s)).sum();
        assert!((d.total_emin().value() - total.value()).abs() < 1e-15);
    }

    #[test]
    fn fixed_setting_totals_are_consistent() {
        let d = data();
        for idx in [0, d.n_settings() - 1] {
            let t: f64 = (0..d.n_samples())
                .map(|s| d.measurement(s, idx).time.value())
                .sum();
            assert!((d.total_time_at(idx).value() - t).abs() < 1e-12);
            // Any fixed setting's total energy is at least total Emin.
            assert!(d.total_energy_at(idx) >= d.total_emin());
        }
    }

    #[test]
    fn cached_column_totals_match_on_demand_sums_exactly() {
        // The caches must be bit-identical to summing each column in
        // sample order, which is what the pre-arena implementation did.
        let d = data();
        for idx in 0..d.n_settings() {
            let time: Seconds = (0..d.n_samples()).map(|s| d.measurement(s, idx).time).sum();
            let energy: Joules = (0..d.n_samples())
                .map(|s| d.measurement(s, idx).energy())
                .sum();
            assert_eq!(
                d.total_time_at(idx).value().to_bits(),
                time.value().to_bits()
            );
            assert_eq!(
                d.total_energy_at(idx).value().to_bits(),
                energy.value().to_bits()
            );
        }
    }

    #[test]
    fn longest_time_is_at_the_slowest_corner() {
        let d = data();
        let slowest_idx = small_grid().index_of(small_grid().min_setting()).unwrap();
        assert_eq!(d.longest_total_time(), d.total_time_at(slowest_idx));
    }

    #[test]
    fn measurement_at_validates_grid_membership() {
        let d = data();
        assert!(d.measurement_at(0, FreqSetting::from_mhz(400, 400)).is_ok());
        assert!(d
            .measurement_at(0, FreqSetting::from_mhz(450, 400))
            .is_err());
    }

    #[test]
    fn min_total_energy_is_positive_and_below_extremes() {
        let d = data();
        let min = d.min_total_energy();
        assert!(min.value() > 0.0);
        assert!(min <= d.total_energy_at(0));
        assert!(min <= d.total_energy_at(d.n_settings() - 1));
    }

    #[test]
    fn parallel_characterization_is_bit_identical() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 13);
        let grid = small_grid();
        let sequential = CharacterizationGrid::characterize(&system, &trace, grid);
        for threads in [1, 2, 4, 7] {
            let parallel =
                CharacterizationGrid::characterize_parallel(&system, &trace, grid, threads);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        let auto = CharacterizationGrid::characterize_auto(&system, &trace, grid);
        assert_eq!(auto, sequential, "auto thread count");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(CharacterizationGrid::default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = CharacterizationGrid::characterize_parallel(
            &System::galaxy_nexus_class(),
            &Benchmark::Bzip2.trace().window(0, 2),
            small_grid(),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_panics() {
        let t = Benchmark::Bzip2.trace().window(0, 0);
        let _ = CharacterizationGrid::characterize(&System::galaxy_nexus_class(), &t, small_grid());
    }

    #[test]
    #[should_panic]
    fn out_of_range_sample_row_panics() {
        let d = data();
        let _ = d.sample_row(d.n_samples());
    }

    #[test]
    fn from_measurements_reproduces_characterize() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 5);
        let grid = small_grid();
        let settings: Vec<FreqSetting> = grid.settings().collect();
        let mut arena = Vec::new();
        for chars in trace.iter() {
            for &s in &settings {
                arena.push(system.simulate_sample(chars, s));
            }
        }
        let raw =
            CharacterizationGrid::from_measurements(trace.name(), grid, settings.len(), arena);
        let planned = CharacterizationGrid::characterize(&system, &trace, grid);
        assert_eq!(raw, planned);
        assert_eq!(raw.fingerprint(), planned.fingerprint());
    }

    #[test]
    #[should_panic(expected = "stride must match")]
    fn from_measurements_rejects_wrong_stride() {
        let m = data().sample_row(0).to_vec();
        let _ = CharacterizationGrid::from_measurements("x", small_grid(), m.len() - 1, m);
    }

    #[test]
    fn recharacterize_matches_full_recompute_bitwise() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 10);
        let grid = small_grid();
        let mut incremental = CharacterizationGrid::characterize(&system, &trace, grid);
        let mut samples = trace.samples().to_vec();
        samples[1].mpki *= 1.5;
        samples[4].base_cpi += 0.2;
        samples[7].row_hit_rate = 0.3;
        let updated = mcdvfs_workloads::SampleTrace::new(trace.name(), samples);
        // A duplicate dirty index must be harmless.
        incremental.recharacterize(&system, &updated, &[1, 4, 7, 4]);
        let full = CharacterizationGrid::characterize(&system, &updated, grid);
        assert_eq!(incremental, full);
        assert_eq!(incremental.fingerprint(), full.fingerprint());
        for s in 0..full.n_samples() {
            assert_eq!(
                incremental.sample_emin(s).value().to_bits(),
                full.sample_emin(s).value().to_bits()
            );
        }
        for idx in 0..full.n_settings() {
            assert_eq!(
                incremental.total_time_at(idx).value().to_bits(),
                full.total_time_at(idx).value().to_bits()
            );
            assert_eq!(
                incremental.total_energy_at(idx).value().to_bits(),
                full.total_energy_at(idx).value().to_bits()
            );
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let fresh = data();
        let snap = fresh.to_snapshot();
        assert_eq!(snap.fingerprint, fresh.fingerprint());
        let bytes = snap.encode();
        let decoded = mcdvfs_store::Snapshot::decode(&bytes).unwrap();
        let rebuilt = CharacterizationGrid::from_snapshot(decoded).unwrap();
        assert_eq!(rebuilt, fresh);
        assert_eq!(rebuilt.fingerprint(), fresh.fingerprint());
        for s in 0..fresh.n_samples() {
            for idx in 0..fresh.n_settings() {
                let (a, b) = (rebuilt.measurement(s, idx), fresh.measurement(s, idx));
                assert_eq!(a.time.value().to_bits(), b.time.value().to_bits());
                assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
            }
        }
    }

    #[test]
    fn from_snapshot_rejects_drifted_fingerprint() {
        let mut snap = data().to_snapshot();
        snap.fingerprint ^= 1;
        assert!(matches!(
            CharacterizationGrid::from_snapshot(snap),
            Err(mcdvfs_store::SnapshotError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn from_snapshot_rejects_bad_dims_without_panicking() {
        let mut snap = data().to_snapshot();
        snap.arena.pop();
        assert!(matches!(
            CharacterizationGrid::from_snapshot(snap),
            Err(mcdvfs_store::SnapshotError::Malformed { .. })
        ));
        let mut snap = data().to_snapshot();
        snap.n_settings += 1;
        assert!(CharacterizationGrid::from_snapshot(snap).is_err());
    }

    #[test]
    fn recharacterize_with_no_dirty_rows_is_a_no_op() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 6);
        let mut d = CharacterizationGrid::characterize(&system, &trace, small_grid());
        let before = d.fingerprint();
        d.recharacterize(&system, &trace, &[]);
        assert_eq!(d.fingerprint(), before);
        assert_eq!(
            d,
            CharacterizationGrid::characterize(&system, &trace, small_grid())
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recharacterize_rejects_out_of_range_index() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 4);
        let mut d = CharacterizationGrid::characterize(&system, &trace, small_grid());
        d.recharacterize(&system, &trace, &[4]);
    }

    #[test]
    #[should_panic(expected = "sample count")]
    fn recharacterize_rejects_mismatched_trace() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 4);
        let mut d = CharacterizationGrid::characterize(&system, &trace, small_grid());
        let shorter = Benchmark::Gobmk.trace().window(0, 3);
        d.recharacterize(&system, &shorter, &[0]);
    }
}
