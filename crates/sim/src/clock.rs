//! The OS-visible DVFS controller device.
//!
//! Models the controller block of the paper's Figure 1: the component the
//! cpufreq/memfreq drivers write to in order to change the platform's clock
//! domains at runtime. The controller validates requested settings against
//! the platform grid, accounts hardware transition costs through a
//! [`TransitionModel`], and keeps the per-domain transition counters the
//! paper's Figure 8 reports.

use crate::kernel::EventQueue;
use crate::transition::{TransitionCost, TransitionModel};
use mcdvfs_obs::{Event, Recorder};
use mcdvfs_types::{Error, FreqSetting, FrequencyGrid, Joules, Result, Seconds};

/// Record of one completed transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionRecord {
    /// Simulated time the transition was requested, seconds.
    pub at: Seconds,
    /// Setting before the change.
    pub from: FreqSetting,
    /// Setting after the change.
    pub to: FreqSetting,
    /// Hardware cost charged.
    pub cost: TransitionCost,
}

/// The platform DVFS/DFS controller.
///
/// # Examples
///
/// ```
/// use mcdvfs_sim::{DvfsController, TransitionModel};
/// use mcdvfs_types::{FreqSetting, FrequencyGrid};
///
/// let grid = FrequencyGrid::coarse();
/// let mut ctrl = DvfsController::new(grid, grid.max_setting(), TransitionModel::mobile_soc());
/// let cost = ctrl.request(FreqSetting::from_mhz(500, 400)).unwrap();
/// assert!(cost.latency.value() > 0.0);
/// assert_eq!(ctrl.current(), FreqSetting::from_mhz(500, 400));
/// assert_eq!(ctrl.transition_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DvfsController {
    grid: FrequencyGrid,
    current: FreqSetting,
    model: TransitionModel,
    clock: EventQueue<FreqSetting>,
    history: Vec<TransitionRecord>,
    cpu_transitions: u64,
    mem_transitions: u64,
    total_latency: Seconds,
    total_energy: Joules,
}

impl DvfsController {
    /// Creates a controller at `initial`, which must lie on `grid`.
    ///
    /// # Panics
    ///
    /// Panics when `initial` is off-grid — a platform cannot boot at a
    /// setting it does not support.
    #[must_use]
    pub fn new(grid: FrequencyGrid, initial: FreqSetting, model: TransitionModel) -> Self {
        assert!(
            grid.contains(initial),
            "initial setting {initial} is off-grid"
        );
        Self {
            grid,
            current: initial,
            model,
            clock: EventQueue::new(),
            history: Vec::new(),
            cpu_transitions: 0,
            mem_transitions: 0,
            total_latency: Seconds::ZERO,
            total_energy: Joules::ZERO,
        }
    }

    /// The platform's frequency grid.
    #[must_use]
    pub fn grid(&self) -> FrequencyGrid {
        self.grid
    }

    /// The setting currently applied.
    #[must_use]
    pub fn current(&self) -> FreqSetting {
        self.current
    }

    /// Advances the controller's notion of time by `dt` (sample execution).
    pub fn advance(&mut self, dt: Seconds) {
        let target = self.clock.now() + dt.value().max(0.0);
        // Retire any bookkeeping events that became due.
        while self.clock.pop_until(target).is_some() {}
        // The kernel clock only moves on pops; park a sentinel to pin time.
        self.clock.schedule(target, self.current);
        self.clock.pop();
    }

    /// Requests a change to `target`, applying it immediately and returning
    /// the hardware cost the caller must account (the controller blocks the
    /// affected domains for `cost.latency`).
    ///
    /// Requesting the current setting is free and does not count as a
    /// transition.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SettingOffGrid`] when `target` is not on the grid.
    pub fn request(&mut self, target: FreqSetting) -> Result<TransitionCost> {
        if !self.grid.contains(target) {
            return Err(Error::SettingOffGrid {
                setting: target.to_string(),
            });
        }
        if target == self.current {
            return Ok(TransitionCost::ZERO);
        }
        let cost = self.model.cost(self.current, target);
        let (cpu_changed, mem_changed) = self.current.domain_changes(target);
        self.cpu_transitions += u64::from(cpu_changed);
        self.mem_transitions += u64::from(mem_changed);
        self.total_latency += cost.latency;
        self.total_energy += cost.energy;
        self.history.push(TransitionRecord {
            at: Seconds::new(self.clock.now()),
            from: self.current,
            to: target,
            cost,
        });
        self.current = target;
        Ok(cost)
    }

    /// As [`request`](Self::request), additionally emitting a
    /// [`FrequencyTransition`](Event::FrequencyTransition) event to
    /// `recorder` when the hardware actually changes (same-setting requests
    /// stay silent). `sample` tags the event with the trace index about to
    /// run. The event carries the exact cost charged to the caller and the
    /// controller-clock timestamp, so replaying a ledger reproduces the
    /// controller's accounting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SettingOffGrid`] when `target` is not on the grid.
    pub fn request_recorded(
        &mut self,
        target: FreqSetting,
        sample: usize,
        recorder: &mut dyn Recorder,
    ) -> Result<TransitionCost> {
        let from = self.current;
        let cost = self.request(target)?;
        if target != from && recorder.enabled() {
            let (cpu_changed, mem_changed) = from.domain_changes(target);
            let at = self.history.last().expect("request just recorded").at;
            recorder.record(Event::FrequencyTransition {
                sample,
                at,
                from,
                to: target,
                latency: cost.latency,
                energy: cost.energy,
                cpu_changed,
                mem_changed,
            });
        }
        Ok(cost)
    }

    /// Number of joint transitions performed (a change to either domain
    /// counts once, matching the paper's transition counting).
    #[must_use]
    pub fn transition_count(&self) -> u64 {
        self.history.len() as u64
    }

    /// Number of CPU-domain changes.
    #[must_use]
    pub fn cpu_transition_count(&self) -> u64 {
        self.cpu_transitions
    }

    /// Number of memory-domain changes.
    #[must_use]
    pub fn mem_transition_count(&self) -> u64 {
        self.mem_transitions
    }

    /// Total hardware latency charged so far.
    #[must_use]
    pub fn total_transition_latency(&self) -> Seconds {
        self.total_latency
    }

    /// Total hardware energy charged so far.
    #[must_use]
    pub fn total_transition_energy(&self) -> Joules {
        self.total_energy
    }

    /// Completed transition records, oldest first.
    #[must_use]
    pub fn history(&self) -> &[TransitionRecord] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> DvfsController {
        let grid = FrequencyGrid::coarse();
        DvfsController::new(grid, grid.max_setting(), TransitionModel::mobile_soc())
    }

    #[test]
    fn boot_setting_is_current() {
        let c = ctrl();
        assert_eq!(c.current(), FreqSetting::from_mhz(1000, 800));
        assert_eq!(c.transition_count(), 0);
    }

    #[test]
    #[should_panic(expected = "off-grid")]
    fn off_grid_boot_panics() {
        let _ = DvfsController::new(
            FrequencyGrid::coarse(),
            FreqSetting::from_mhz(123, 456),
            TransitionModel::free(),
        );
    }

    #[test]
    fn off_grid_request_is_rejected() {
        let mut c = ctrl();
        let err = c.request(FreqSetting::from_mhz(150, 250)).unwrap_err();
        assert!(matches!(err, Error::SettingOffGrid { .. }));
        assert_eq!(c.transition_count(), 0);
    }

    #[test]
    fn same_setting_request_is_free() {
        let mut c = ctrl();
        let cost = c.request(c.current()).unwrap();
        assert_eq!(cost, TransitionCost::ZERO);
        assert_eq!(c.transition_count(), 0);
    }

    #[test]
    fn per_domain_counters_track_changes() {
        let mut c = ctrl();
        c.request(FreqSetting::from_mhz(900, 800)).unwrap(); // cpu only
        c.request(FreqSetting::from_mhz(900, 700)).unwrap(); // mem only
        c.request(FreqSetting::from_mhz(800, 600)).unwrap(); // both
        assert_eq!(c.transition_count(), 3);
        assert_eq!(c.cpu_transition_count(), 2);
        assert_eq!(c.mem_transition_count(), 2);
    }

    #[test]
    fn costs_accumulate() {
        let mut c = ctrl();
        c.request(FreqSetting::from_mhz(900, 700)).unwrap();
        c.request(FreqSetting::from_mhz(800, 600)).unwrap();
        let m = TransitionModel::mobile_soc();
        let expected_energy = (m.cpu_energy + m.mem_energy) * 2.0;
        assert!((c.total_transition_energy().value() - expected_energy.value()).abs() < 1e-15);
        assert!(c.total_transition_latency().value() > 0.0);
    }

    #[test]
    fn history_records_requests_with_timestamps() {
        let mut c = ctrl();
        c.advance(Seconds::from_millis(5.0));
        c.request(FreqSetting::from_mhz(500, 400)).unwrap();
        let rec = c.history()[0];
        assert!((rec.at.value() - 5e-3).abs() < 1e-12);
        assert_eq!(rec.from, FreqSetting::from_mhz(1000, 800));
        assert_eq!(rec.to, FreqSetting::from_mhz(500, 400));
    }

    #[test]
    fn recorded_requests_emit_only_real_transitions() {
        use mcdvfs_obs::RunLedger;
        let mut c = ctrl();
        let mut ledger = RunLedger::unbounded();
        c.advance(Seconds::from_millis(2.0));
        c.request_recorded(c.current(), 0, &mut ledger).unwrap(); // same setting
        c.request_recorded(FreqSetting::from_mhz(500, 800), 1, &mut ledger)
            .unwrap();
        assert_eq!(ledger.len(), 1, "free requests stay silent");
        match *ledger.events().next().unwrap() {
            Event::FrequencyTransition {
                sample,
                at,
                from,
                to,
                cpu_changed,
                mem_changed,
                ..
            } => {
                assert_eq!(sample, 1);
                assert!((at.value() - 2e-3).abs() < 1e-12);
                assert_eq!(from, FreqSetting::from_mhz(1000, 800));
                assert_eq!(to, FreqSetting::from_mhz(500, 800));
                assert!(cpu_changed);
                assert!(!mem_changed);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // A disabled recorder costs nothing and records nothing.
        let mut null = mcdvfs_obs::NullRecorder;
        c.request_recorded(FreqSetting::from_mhz(600, 600), 2, &mut null)
            .unwrap();
        assert_eq!(c.transition_count(), 2);
    }

    #[test]
    fn advance_ignores_negative_durations() {
        let mut c = ctrl();
        c.advance(Seconds::new(-1.0));
        c.request(FreqSetting::from_mhz(500, 400)).unwrap();
        assert_eq!(c.history()[0].at, Seconds::ZERO);
    }
}
