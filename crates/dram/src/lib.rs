//! LPDDR3 DRAM models for the `mcdvfs` workspace.
//!
//! Models the paper's memory subsystem: a single-channel, single-rank
//! LPDDR3 device with an open-page policy, frequency-scalable from 200 to
//! 800 MHz with *fixed* supply rails (VDD1 = 1.8 V, VDD2 = 1.2 V — the
//! paper scales memory frequency only, never voltage).
//!
//! Three layers are provided, mirroring how the paper's Gem5 + DRAMPower
//! setup is structured:
//!
//! * [`LpddrTimings`] — datasheet timing parameters and their scaling with
//!   clock frequency per Micron's technical note (analog parameters stay
//!   fixed in nanoseconds and are re-quantized to clock cycles; transfer
//!   parameters stay fixed in cycles);
//! * [`DramPowerModel`] — a DRAMPower-style energy model driven by IDD
//!   currents over both rails: background standby power, per-access
//!   activate/precharge and read/write burst energy, and refresh;
//! * [`MemoryController`] + [`Bank`] — an event-driven single-channel
//!   controller with FR-FCFS scheduling, bank state machines, and refresh,
//!   used to cross-validate the fast analytic latency model
//!   ([`LatencyModel`]) that the grid characterization uses.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_dram::{LatencyModel, LpddrTimings};
//! use mcdvfs_types::MemFreq;
//!
//! let model = LatencyModel::lpddr3();
//! let slow = model.avg_latency_ns(MemFreq::from_mhz(200), 0.6, 0.2);
//! let fast = model.avg_latency_ns(MemFreq::from_mhz(800), 0.6, 0.2);
//! assert!(slow > fast, "lower memory frequency means higher latency");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod controller;
mod latency;
mod power;
mod powerdown;
mod timing;

pub use bank::{Bank, BankState, Command, IllegalCommand};
pub use controller::{ControllerStats, MemoryController, Request, RequestResult};
pub use latency::LatencyModel;
pub use power::{DramEnergyBreakdown, DramPowerModel, IddCurrents};
pub use powerdown::{LowPowerStates, PowerDownPolicy};
pub use timing::LpddrTimings;
