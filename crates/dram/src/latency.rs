//! Fast analytic average-latency model.
//!
//! The grid characterization evaluates every (workload sample × frequency
//! setting) pair — hundreds of thousands of evaluations — so it uses this
//! closed-form model rather than the event-driven
//! [`MemoryController`](crate::MemoryController). The two are
//! cross-validated in the integration tests.
//!
//! Average access latency is modelled as
//!
//! ```text
//! L(f, hit, ρ) = t_ctrl + hit·t_row_hit(f) + (1-hit)·t_row_miss_mix(f) + W(ρ, f)
//! ```
//!
//! where `W` is an M/D/1-style queueing delay on channel utilization `ρ`
//! (demanded bandwidth over effective peak bandwidth). The queueing term is
//! what makes a 1000 MHz CPU paired with 200 MHz memory *collapse* — the
//! paper's "poor frequency selection hurts both performance and energy"
//! observation.

use crate::timing::LpddrTimings;
use mcdvfs_types::MemFreq;

/// Analytic single-channel DRAM latency/bandwidth model.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::LatencyModel;
/// use mcdvfs_types::MemFreq;
///
/// let m = LatencyModel::lpddr3();
/// let idle = m.avg_latency_ns(MemFreq::from_mhz(400), 0.6, 0.0);
/// let busy = m.avg_latency_ns(MemFreq::from_mhz(400), 0.6, 0.9);
/// assert!(busy > idle, "queueing delay grows with utilization");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    timings: LpddrTimings,
    /// Fixed controller + interconnect overhead, ns.
    ctrl_overhead_ns: f64,
    /// Fraction of theoretical peak bandwidth achievable under real access
    /// streams (bank conflicts, turnarounds, refresh).
    bandwidth_efficiency: f64,
    /// Utilization ceiling for the queueing term, keeping the model finite
    /// near saturation.
    max_utilization: f64,
    /// Fraction of row misses that are conflicts (another row open) rather
    /// than accesses to a precharged bank.
    conflict_fraction: f64,
}

impl LatencyModel {
    /// Model over the Micron LPDDR3 timing set with mobile-class controller
    /// overhead (20 ns) and 75% achievable bandwidth.
    #[must_use]
    pub fn lpddr3() -> Self {
        Self {
            timings: LpddrTimings::micron_lpddr3(),
            ctrl_overhead_ns: 20.0,
            bandwidth_efficiency: 0.75,
            max_utilization: 0.96,
            conflict_fraction: 0.5,
        }
    }

    /// The timing set used by this model.
    #[must_use]
    pub fn timings(&self) -> &LpddrTimings {
        &self.timings
    }

    /// Effective (achievable) bandwidth at `freq`, bytes/second.
    #[must_use]
    pub fn effective_bandwidth(&self, freq: MemFreq) -> f64 {
        self.timings.peak_bandwidth(freq)
            * self.bandwidth_efficiency
            * (1.0 - self.timings.refresh_overhead())
    }

    /// Fixed controller + interconnect overhead, ns.
    #[must_use]
    pub fn ctrl_overhead_ns(&self) -> f64 {
        self.ctrl_overhead_ns
    }

    /// Average row-*miss* latency at `freq`: the conflict-fraction-weighted
    /// mix of closed-bank misses and open-row conflicts. This is the
    /// `t_row_miss_mix(f)` term of the latency formula, exposed so callers
    /// that evaluate many samples at one frequency can hoist it.
    #[must_use]
    pub fn miss_mix_ns(&self, freq: MemFreq) -> f64 {
        let t = &self.timings;
        t.row_miss_ns(freq) * (1.0 - self.conflict_fraction)
            + t.row_conflict_ns(freq) * self.conflict_fraction
    }

    /// Mean service time of one cache-line transfer at `freq`, ns — the `S`
    /// of the M/D/1 queueing term, exposed for per-frequency hoisting.
    #[must_use]
    pub fn service_time_ns(&self, freq: MemFreq) -> f64 {
        mcdvfs_types::BYTES_PER_DRAM_ACCESS as f64 / self.effective_bandwidth(freq) * 1e9
    }

    /// Average access latency in ns at `freq`, for a stream with the given
    /// row-buffer hit rate and channel utilization `rho ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `row_hit_rate` is outside `[0, 1]` or
    /// `rho` is negative.
    #[must_use]
    pub fn avg_latency_ns(&self, freq: MemFreq, row_hit_rate: f64, rho: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&row_hit_rate));
        debug_assert!(rho >= 0.0);
        let hit = self.timings.row_hit_ns(freq);
        let miss = self.miss_mix_ns(freq);
        let base = self.ctrl_overhead_ns + row_hit_rate * hit + (1.0 - row_hit_rate) * miss;

        // M/D/1 mean wait: W = ρ·S / (2(1-ρ)), with S the mean service time
        // (one line transfer) and ρ clamped below saturation.
        let rho = rho.min(self.max_utilization);
        let wait = rho * self.service_time_ns(freq) / (2.0 * (1.0 - rho));
        base + wait
    }

    /// Channel utilization for a demand of `bytes` transferred over
    /// `interval_s` seconds at `freq`.
    #[must_use]
    pub fn utilization(&self, freq: MemFreq, bytes: f64, interval_s: f64) -> f64 {
        if interval_s <= 0.0 {
            return self.max_utilization;
        }
        (bytes / interval_s / self.effective_bandwidth(freq)).min(self.max_utilization)
    }

    /// The utilization ceiling applied by this model.
    #[must_use]
    pub fn max_utilization(&self) -> f64 {
        self.max_utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> LatencyModel {
        LatencyModel::lpddr3()
    }

    #[test]
    fn latency_decreases_with_frequency() {
        let m = m();
        let mut prev = f64::INFINITY;
        for mhz in (200..=800).step_by(100) {
            let l = m.avg_latency_ns(MemFreq::from_mhz(mhz), 0.6, 0.2);
            assert!(l < prev, "latency must fall as memory speeds up");
            prev = l;
        }
    }

    #[test]
    fn latency_increases_with_utilization() {
        let m = m();
        let f = MemFreq::from_mhz(400);
        let mut prev = 0.0;
        for rho in [0.0, 0.3, 0.6, 0.9] {
            let l = m.avg_latency_ns(f, 0.6, rho);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn saturation_is_capped_not_infinite() {
        let m = m();
        let l = m.avg_latency_ns(MemFreq::from_mhz(200), 0.6, 5.0);
        assert!(l.is_finite());
        assert!(l < 5000.0, "capped latency {l} ns");
    }

    #[test]
    fn row_hits_reduce_latency() {
        let m = m();
        let f = MemFreq::from_mhz(400);
        assert!(m.avg_latency_ns(f, 0.9, 0.2) < m.avg_latency_ns(f, 0.1, 0.2));
    }

    #[test]
    fn idle_latency_is_realistic_for_mobile_dram() {
        let m = m();
        let l = m.avg_latency_ns(MemFreq::from_mhz(800), 0.6, 0.0);
        assert!(
            (40.0..150.0).contains(&l),
            "idle latency {l} ns should be tens of ns"
        );
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let m = m();
        let f = MemFreq::from_mhz(800);
        assert!(m.effective_bandwidth(f) < m.timings().peak_bandwidth(f));
        assert!(m.effective_bandwidth(f) > 0.5 * m.timings().peak_bandwidth(f));
    }

    #[test]
    fn utilization_computation() {
        let m = m();
        let f = MemFreq::from_mhz(800);
        let bw = m.effective_bandwidth(f);
        let rho = m.utilization(f, bw * 0.5, 1.0);
        assert!((rho - 0.5).abs() < 1e-9);
        // Over-demand clamps to the ceiling.
        assert!((m.utilization(f, bw * 10.0, 1.0) - m.max_utilization()).abs() < 1e-12);
        // Degenerate interval clamps to the ceiling too.
        assert!((m.utilization(f, 1.0, 0.0) - m.max_utilization()).abs() < 1e-12);
    }

    #[test]
    fn slow_memory_saturates_earlier_in_absolute_demand() {
        let m = m();
        let demand = 1.5e9; // 1.5 GB/s
        let rho_slow = m.utilization(MemFreq::from_mhz(200), demand, 1.0);
        let rho_fast = m.utilization(MemFreq::from_mhz(800), demand, 1.0);
        assert!(rho_slow > rho_fast);
        assert!(
            (rho_slow - m.max_utilization()).abs() < 1e-9,
            "200 MHz is saturated"
        );
    }
}
