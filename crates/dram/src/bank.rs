//! DRAM bank state machine.
//!
//! Each of the eight LPDDR3 banks is an independent state machine under the
//! open-page policy: rows stay open after an access until a conflicting
//! access (or refresh) forces a precharge. Timing legality (tRCD, tRP,
//! tRAS) is enforced in controller clock ticks.

use crate::timing::LpddrTimings;
use mcdvfs_types::MemFreq;
use std::fmt;

/// Commands a memory controller can issue to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Open `row` in the bank.
    Activate {
        /// Row address to open.
        row: u64,
    },
    /// Close the open row.
    Precharge,
    /// Column read from the open row.
    Read,
    /// Column write to the open row.
    Write,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Activate { row } => write!(f, "ACT(row {row})"),
            Command::Precharge => f.write_str("PRE"),
            Command::Read => f.write_str("RD"),
            Command::Write => f.write_str("WR"),
        }
    }
}

/// Observable state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed (precharged).
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: u64,
    },
}

/// One DRAM bank with open-page row-buffer policy.
///
/// Time is expressed in controller cycles at a fixed [`MemFreq`]; the bank
/// records the earliest cycle each command class becomes legal.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::{Bank, Command, LpddrTimings};
/// use mcdvfs_types::MemFreq;
///
/// let t = LpddrTimings::micron_lpddr3();
/// let f = MemFreq::from_mhz(400);
/// let mut bank = Bank::new(&t, f);
/// let ready = bank.issue(Command::Activate { row: 7 }, 0).unwrap();
/// // A read is legal only after tRCD.
/// assert!(bank.issue(Command::Read, ready).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    trcd: u64,
    trp: u64,
    tras: u64,
    cas: u64,
    burst: u64,
    /// Cycle at which the current ACT completes (columns accessible).
    act_done_at: u64,
    /// Earliest cycle a PRE is allowed (tRAS from ACT).
    pre_allowed_at: u64,
    /// Earliest cycle the next ACT is allowed (tRP from PRE).
    act_allowed_at: u64,
    /// Cycle the data bus frees up after the last column command.
    bus_free_at: u64,
    /// Statistics: row-buffer outcomes.
    hits: u64,
    misses: u64,
    conflicts: u64,
}

/// Error returned when a command is illegal in the bank's current state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalCommand {
    /// What was attempted.
    pub command: String,
    /// Why it was illegal.
    pub reason: &'static str,
}

impl fmt::Display for IllegalCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal DRAM command {}: {}", self.command, self.reason)
    }
}

impl std::error::Error for IllegalCommand {}

impl Bank {
    /// Creates an idle bank operating at `freq` under timing set `t`.
    #[must_use]
    pub fn new(t: &LpddrTimings, freq: MemFreq) -> Self {
        Self {
            state: BankState::Idle,
            trcd: t.trcd_cycles(freq),
            trp: t.trp_cycles(freq),
            tras: t.tras_cycles(freq),
            cas: t.cas_cycles(freq),
            burst: t.burst_cycles(),
            act_done_at: 0,
            pre_allowed_at: 0,
            act_allowed_at: 0,
            bus_free_at: 0,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Row-buffer outcome counters: `(hits, misses, conflicts)`.
    #[must_use]
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    /// Issues `command` at cycle `now` (stalling internally to the earliest
    /// legal cycle), returning the cycle at which the command's effect
    /// completes: columns accessible for ACT, bank idle for PRE, data
    /// transferred for RD/WR.
    ///
    /// # Errors
    ///
    /// Returns [`IllegalCommand`] for column commands on an idle bank or an
    /// ACT on an already-active bank.
    pub fn issue(&mut self, command: Command, now: u64) -> Result<u64, IllegalCommand> {
        match command {
            Command::Activate { row } => {
                if let BankState::Active { .. } = self.state {
                    return Err(IllegalCommand {
                        command: command.to_string(),
                        reason: "bank already has an open row (precharge first)",
                    });
                }
                let start = now.max(self.act_allowed_at);
                self.state = BankState::Active { row };
                self.act_done_at = start + self.trcd;
                self.pre_allowed_at = start + self.tras;
                Ok(self.act_done_at)
            }
            Command::Precharge => {
                if self.state == BankState::Idle {
                    // Precharging an idle bank is a no-op, legal per spec.
                    return Ok(now.max(self.act_allowed_at));
                }
                let start = now.max(self.pre_allowed_at);
                self.state = BankState::Idle;
                self.act_allowed_at = start + self.trp;
                Ok(self.act_allowed_at)
            }
            Command::Read | Command::Write => {
                if self.state == BankState::Idle {
                    return Err(IllegalCommand {
                        command: command.to_string(),
                        reason: "no open row for a column access",
                    });
                }
                let start = now.max(self.act_done_at).max(self.bus_free_at);
                let done = start + self.cas + self.burst;
                self.bus_free_at = start + self.burst;
                Ok(done)
            }
        }
    }

    /// Services a full cache-line access to `row` at cycle `now` under the
    /// open-page policy, issuing whatever command sequence the row-buffer
    /// state requires, and returns `(completion_cycle, was_row_hit)`.
    pub fn access(&mut self, row: u64, write: bool, now: u64) -> (u64, bool) {
        let column = if write { Command::Write } else { Command::Read };
        match self.state {
            BankState::Active { row: open } if open == row => {
                self.hits += 1;
                let done = self.issue(column, now).expect("active bank accepts column");
                (done, true)
            }
            BankState::Active { .. } => {
                self.conflicts += 1;
                let t = self
                    .issue(Command::Precharge, now)
                    .expect("active bank accepts PRE");
                let t = self
                    .issue(Command::Activate { row }, t)
                    .expect("idle bank accepts ACT");
                let done = self.issue(column, t).expect("active bank accepts column");
                (done, false)
            }
            BankState::Idle => {
                self.misses += 1;
                let t = self
                    .issue(Command::Activate { row }, now)
                    .expect("idle bank accepts ACT");
                let done = self.issue(column, t).expect("active bank accepts column");
                (done, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(&LpddrTimings::micron_lpddr3(), MemFreq::from_mhz(400))
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let mut b = bank();
        let t = LpddrTimings::micron_lpddr3();
        let f = MemFreq::from_mhz(400);
        let act_done = b.issue(Command::Activate { row: 1 }, 0).unwrap();
        assert_eq!(act_done, t.trcd_cycles(f));
        // Read issued immediately still waits for tRCD internally.
        let rd_done = b.issue(Command::Read, 0).unwrap();
        assert_eq!(
            rd_done,
            t.trcd_cycles(f) + t.cas_cycles(f) + t.burst_cycles()
        );
    }

    #[test]
    fn column_on_idle_bank_is_illegal() {
        let mut b = bank();
        let err = b.issue(Command::Read, 0).unwrap_err();
        assert!(err.to_string().contains("no open row"));
    }

    #[test]
    fn double_activate_is_illegal() {
        let mut b = bank();
        b.issue(Command::Activate { row: 1 }, 0).unwrap();
        assert!(b.issue(Command::Activate { row: 2 }, 100).is_err());
    }

    #[test]
    fn precharge_respects_tras() {
        let mut b = bank();
        let t = LpddrTimings::micron_lpddr3();
        let f = MemFreq::from_mhz(400);
        b.issue(Command::Activate { row: 1 }, 0).unwrap();
        // PRE at cycle 0 must stall until tRAS.
        let idle_at = b.issue(Command::Precharge, 0).unwrap();
        assert_eq!(idle_at, t.tras_cycles(f) + t.trp_cycles(f));
        assert_eq!(b.state(), BankState::Idle);
    }

    #[test]
    fn row_hit_completes_faster_than_conflict() {
        let t = LpddrTimings::micron_lpddr3();
        let f = MemFreq::from_mhz(400);
        let mut b = Bank::new(&t, f);
        let (after_first, hit) = b.access(5, false, 0);
        assert!(!hit, "first access is a miss");
        let (hit_done, hit2) = b.access(5, false, after_first);
        assert!(hit2);
        let hit_latency = hit_done - after_first;

        let mut b2 = Bank::new(&t, f);
        let (after1, _) = b2.access(5, false, 0);
        let (conflict_done, hit3) = b2.access(9, false, after1);
        assert!(!hit3);
        let conflict_latency = conflict_done - after1;
        assert!(
            conflict_latency > hit_latency,
            "conflict {conflict_latency} vs hit {hit_latency}"
        );
    }

    #[test]
    fn outcome_counters_track_hits_misses_conflicts() {
        let mut b = bank();
        let (t1, _) = b.access(1, false, 0); // miss
        let (t2, _) = b.access(1, false, t1); // hit
        let (_t3, _) = b.access(2, true, t2); // conflict
        assert_eq!(b.outcome_counts(), (1, 1, 1));
    }

    #[test]
    fn precharge_idle_bank_is_noop() {
        let mut b = bank();
        assert_eq!(b.issue(Command::Precharge, 42), Ok(42));
        assert_eq!(b.state(), BankState::Idle);
    }

    #[test]
    fn back_to_back_reads_serialize_on_the_bus() {
        let mut b = bank();
        let (t1, _) = b.access(1, false, 0);
        // Two immediate row hits: second must finish at least a burst later.
        let (d1, _) = b.access(1, false, t1);
        let (d2, _) = b.access(1, false, t1);
        assert!(d2 >= d1 + Bank::new(&LpddrTimings::micron_lpddr3(), MemFreq::from_mhz(400)).burst);
    }

    #[test]
    fn command_display() {
        assert_eq!(Command::Activate { row: 3 }.to_string(), "ACT(row 3)");
        assert_eq!(Command::Precharge.to_string(), "PRE");
        assert_eq!(Command::Read.to_string(), "RD");
        assert_eq!(Command::Write.to_string(), "WR");
    }
}
