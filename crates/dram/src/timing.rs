//! LPDDR3 timing parameters and their frequency scaling.
//!
//! Datasheet timing constraints come in two kinds, and Micron's technical
//! note on scaling memory timing with frequency (which the paper follows)
//! treats them differently:
//!
//! * **analog** constraints (tRCD, tRP, tRAS, tWR, tRFC, tREFI) are fixed
//!   in *nanoseconds* — they describe sense-amplifier and array physics
//!   that do not speed up when the interface clock does. At a given clock
//!   they are rounded *up* to whole cycles.
//! * **transfer** constraints (CAS latency, burst length) are fixed in
//!   *cycles* at the device's rated frequency bin; CL is re-binned per
//!   frequency so that `CL × tCK` never drops below the analog access time.

use mcdvfs_types::MemFreq;

/// Timing parameter set for one LPDDR3 configuration.
///
/// All `*_ns` fields are analog constraints in nanoseconds. Cycle-valued
/// accessors quantize to the supplied clock frequency.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::LpddrTimings;
/// use mcdvfs_types::MemFreq;
///
/// let t = LpddrTimings::micron_lpddr3();
/// // Analog latency in ns does not improve at higher clock...
/// assert!(t.trcd_cycles(MemFreq::from_mhz(800)) >= 2 * t.trcd_cycles(MemFreq::from_mhz(200)) - 1);
/// // ...but the burst transfers faster.
/// assert!(t.burst_ns(MemFreq::from_mhz(800)) < t.burst_ns(MemFreq::from_mhz(200)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LpddrTimings {
    /// ACT-to-READ/WRITE delay (row to column), ns.
    pub trcd_ns: f64,
    /// PRE-to-ACT delay (row precharge), ns.
    pub trp_ns: f64,
    /// ACT-to-PRE minimum (row active time), ns.
    pub tras_ns: f64,
    /// Write recovery, ns.
    pub twr_ns: f64,
    /// Write-to-read turnaround (internal write-to-read delay), ns.
    pub twtr_ns: f64,
    /// Read-to-write bus turnaround, in clock cycles.
    pub trtw_ck: u32,
    /// Refresh cycle time (one all-bank REF), ns.
    pub trfc_ns: f64,
    /// Average refresh interval, ns.
    pub trefi_ns: f64,
    /// CAS access time floor, ns — CL is chosen per frequency so
    /// `CL·tCK ≥ taa_ns`.
    pub taa_ns: f64,
    /// Burst length in beats (LPDDR3 BL8).
    pub burst_length: u32,
    /// Number of banks.
    pub banks: u32,
    /// Data-bus width in bits (x32 for the modelled part).
    pub bus_width_bits: u32,
}

impl LpddrTimings {
    /// Micron 16 Gb x32 LPDDR3-class parameters (the datasheet family the
    /// paper configures Gem5 with).
    #[must_use]
    pub fn micron_lpddr3() -> Self {
        Self {
            trcd_ns: 18.0,
            trp_ns: 18.0,
            tras_ns: 42.0,
            twr_ns: 15.0,
            twtr_ns: 7.5,
            trtw_ck: 2,
            trfc_ns: 210.0,
            trefi_ns: 3900.0,
            taa_ns: 18.0,
            burst_length: 8,
            banks: 8,
            bus_width_bits: 32,
        }
    }

    /// Clock period at `freq`, ns.
    #[must_use]
    pub fn tck_ns(&self, freq: MemFreq) -> f64 {
        freq.period_ns()
    }

    /// tRCD in whole cycles at `freq` (rounded up).
    #[must_use]
    pub fn trcd_cycles(&self, freq: MemFreq) -> u64 {
        freq.cycles_in_ns(self.trcd_ns)
    }

    /// tRP in whole cycles at `freq` (rounded up).
    #[must_use]
    pub fn trp_cycles(&self, freq: MemFreq) -> u64 {
        freq.cycles_in_ns(self.trp_ns)
    }

    /// tRAS in whole cycles at `freq` (rounded up).
    #[must_use]
    pub fn tras_cycles(&self, freq: MemFreq) -> u64 {
        freq.cycles_in_ns(self.tras_ns)
    }

    /// CAS latency in cycles at `freq`: the smallest CL whose access time
    /// meets the analog floor `taa_ns`.
    #[must_use]
    pub fn cas_cycles(&self, freq: MemFreq) -> u64 {
        freq.cycles_in_ns(self.taa_ns).max(3)
    }

    /// Burst duration in cycles: `BL/2` for a double-data-rate interface.
    #[must_use]
    pub fn burst_cycles(&self) -> u64 {
        u64::from(self.burst_length / 2)
    }

    /// Burst duration in ns at `freq`.
    #[must_use]
    pub fn burst_ns(&self, freq: MemFreq) -> f64 {
        self.burst_cycles() as f64 * self.tck_ns(freq)
    }

    /// Row-cycle time tRC = tRAS + tRP, ns.
    #[must_use]
    pub fn trc_ns(&self) -> f64 {
        self.tras_ns + self.trp_ns
    }

    /// Row-buffer **hit** access latency at `freq`, ns: CAS + burst.
    #[must_use]
    pub fn row_hit_ns(&self, freq: MemFreq) -> f64 {
        let tck = self.tck_ns(freq);
        (self.cas_cycles(freq) + self.burst_cycles()) as f64 * tck
    }

    /// Row-buffer **miss** (closed row) access latency at `freq`, ns:
    /// ACT + CAS + burst.
    #[must_use]
    pub fn row_miss_ns(&self, freq: MemFreq) -> f64 {
        self.trcd_cycles(freq) as f64 * self.tck_ns(freq) + self.row_hit_ns(freq)
    }

    /// Row-buffer **conflict** latency at `freq`, ns: PRE + ACT + CAS +
    /// burst (another row was open).
    #[must_use]
    pub fn row_conflict_ns(&self, freq: MemFreq) -> f64 {
        self.trp_cycles(freq) as f64 * self.tck_ns(freq) + self.row_miss_ns(freq)
    }

    /// Write-to-read turnaround in whole cycles at `freq` (rounded up).
    #[must_use]
    pub fn twtr_cycles(&self, freq: MemFreq) -> u64 {
        freq.cycles_in_ns(self.twtr_ns)
    }

    /// Read-to-write bus turnaround in cycles (fixed in cycles: it covers
    /// driver/ODT switching on the interface, which tracks the clock).
    #[must_use]
    pub fn trtw_cycles(&self) -> u64 {
        u64::from(self.trtw_ck)
    }

    /// Bytes transferred per burst.
    #[must_use]
    pub fn bytes_per_burst(&self) -> u64 {
        u64::from(self.burst_length) * u64::from(self.bus_width_bits) / 8
    }

    /// Theoretical peak bandwidth at `freq`, bytes/second: two beats per
    /// clock (DDR) across the bus width.
    #[must_use]
    pub fn peak_bandwidth(&self, freq: MemFreq) -> f64 {
        freq.hz() * 2.0 * f64::from(self.bus_width_bits) / 8.0
    }

    /// Fraction of time consumed by refresh at `freq` — tRFC out of every
    /// tREFI (frequency-independent since both are analog).
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        self.trfc_ns / self.trefi_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> LpddrTimings {
        LpddrTimings::micron_lpddr3()
    }

    #[test]
    fn analog_cycles_scale_with_frequency() {
        let t = t();
        // 18 ns at 200 MHz (5 ns period) = 4 cycles; at 800 MHz (1.25 ns) = 15.
        assert_eq!(t.trcd_cycles(MemFreq::from_mhz(200)), 4);
        assert_eq!(t.trcd_cycles(MemFreq::from_mhz(800)), 15);
    }

    #[test]
    fn quantization_rounds_up() {
        let t = t();
        // 42 ns at 400 MHz (2.5ns) = 16.8 -> 17 cycles.
        assert_eq!(t.tras_cycles(MemFreq::from_mhz(400)), 17);
    }

    #[test]
    fn cas_latency_rebins_per_frequency() {
        let t = t();
        let cl200 = t.cas_cycles(MemFreq::from_mhz(200));
        let cl800 = t.cas_cycles(MemFreq::from_mhz(800));
        assert!(cl800 > cl200, "higher clock needs more CL cycles");
        // CL x tCK never beats the analog floor.
        for mhz in [200, 400, 600, 800] {
            let f = MemFreq::from_mhz(mhz);
            assert!(t.cas_cycles(f) as f64 * t.tck_ns(f) >= t.taa_ns - 1e-9);
        }
    }

    #[test]
    fn row_hit_is_faster_than_miss_is_faster_than_conflict() {
        let t = t();
        for mhz in [200, 400, 800] {
            let f = MemFreq::from_mhz(mhz);
            assert!(t.row_hit_ns(f) < t.row_miss_ns(f));
            assert!(t.row_miss_ns(f) < t.row_conflict_ns(f));
        }
    }

    #[test]
    fn latency_in_ns_improves_only_modestly_with_frequency() {
        let t = t();
        let hit200 = t.row_hit_ns(MemFreq::from_mhz(200));
        let hit800 = t.row_hit_ns(MemFreq::from_mhz(800));
        // Burst time shrinks 4x but CAS stays near the analog floor: total
        // improvement must be well under the 4x clock ratio.
        assert!(hit800 < hit200);
        assert!(hit200 / hit800 < 2.5, "ratio {}", hit200 / hit800);
    }

    #[test]
    fn peak_bandwidth_scales_linearly() {
        let t = t();
        let bw200 = t.peak_bandwidth(MemFreq::from_mhz(200));
        let bw800 = t.peak_bandwidth(MemFreq::from_mhz(800));
        assert!((bw800 / bw200 - 4.0).abs() < 1e-12);
        // x32 at 800 MHz DDR = 6.4 GB/s.
        assert!((bw800 - 6.4e9).abs() < 1e-3);
    }

    #[test]
    fn bytes_per_burst_is_a_cache_line_half() {
        // BL8 x 32 bits = 32 bytes per burst; a 64-byte line needs 2 bursts.
        assert_eq!(t().bytes_per_burst(), 32);
    }

    #[test]
    fn refresh_overhead_is_small_and_frequency_independent() {
        let overhead = t().refresh_overhead();
        assert!(overhead > 0.0 && overhead < 0.1, "overhead {overhead}");
    }

    #[test]
    fn trc_is_ras_plus_rp() {
        let t = t();
        assert!((t.trc_ns() - 60.0).abs() < 1e-12);
    }
}
