//! Event-driven single-channel memory controller.
//!
//! A cycle-level (controller-clock) model of the paper's single-channel,
//! single-rank LPDDR3 memory system: eight [`Bank`] state machines, an
//! FR-FCFS scheduler (row hits first, then oldest), a shared data bus with
//! CAS pipelining, and periodic all-bank refresh.
//!
//! The analytic [`LatencyModel`](crate::LatencyModel) used by the grid
//! characterization is cross-validated against this simulator in the
//! workspace integration tests: both must agree on how average latency
//! scales with frequency, locality and load.
//!
//! Modelling notes: a 64-byte line transfer is two BL8×32 bursts issued
//! back-to-back to the same row; consecutive transfers to different banks
//! overlap their CAS phase with the previous burst on the shared bus.

use crate::bank::Bank;
use crate::timing::LpddrTimings;
use mcdvfs_types::{MemFreq, BYTES_PER_DRAM_ACCESS};
use std::collections::VecDeque;

/// One cache-line request presented to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in controller cycles.
    pub arrival_cycle: u64,
    /// Byte address.
    pub addr: u64,
    /// `true` for a write-back, `false` for a fill.
    pub write: bool,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestResult {
    /// The request this result answers.
    pub request: Request,
    /// Cycle the first command for the request issued.
    pub start_cycle: u64,
    /// Cycle the full line finished transferring.
    pub done_cycle: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

impl RequestResult {
    /// End-to-end latency in controller cycles (queueing included).
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.done_cycle - self.request.arrival_cycle
    }
}

/// Aggregate statistics over a completed request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerStats {
    /// Number of requests serviced.
    pub requests: u64,
    /// Mean end-to-end latency, ns.
    pub avg_latency_ns: f64,
    /// Maximum end-to-end latency, ns.
    pub max_latency_ns: f64,
    /// Achieved bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Row-buffer hit rate over the stream.
    pub row_hit_rate: f64,
    /// Number of refresh operations performed.
    pub refreshes: u64,
}

/// The single-channel controller.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::{MemoryController, Request};
/// use mcdvfs_types::MemFreq;
///
/// let mut ctrl = MemoryController::lpddr3(MemFreq::from_mhz(400));
/// let stream: Vec<Request> = (0..64)
///     .map(|i| Request { arrival_cycle: i * 10, addr: i * 64, write: false })
///     .collect();
/// let results = ctrl.run(&stream);
/// let stats = MemoryController::stats(&results, MemFreq::from_mhz(400), ctrl.refreshes());
/// assert_eq!(stats.requests, 64);
/// assert!(stats.row_hit_rate > 0.5, "sequential stream is row-friendly");
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    timings: LpddrTimings,
    freq: MemFreq,
    banks: Vec<Bank>,
    /// Bytes covered by one row (row-buffer size).
    row_bytes: u64,
    /// Shared data-bus release cycle.
    data_bus_free: u64,
    /// Direction of the last column operation, for turnaround penalties.
    last_was_write: Option<bool>,
    /// Next scheduled refresh, in cycles.
    next_refresh: u64,
    refreshes: u64,
}

impl MemoryController {
    /// Builds a controller over the Micron LPDDR3 timing set at `freq` with
    /// a 2 KB row buffer.
    #[must_use]
    pub fn lpddr3(freq: MemFreq) -> Self {
        let timings = LpddrTimings::micron_lpddr3();
        let banks = (0..timings.banks)
            .map(|_| Bank::new(&timings, freq))
            .collect();
        let next_refresh = freq.cycles_in_ns(timings.trefi_ns);
        Self {
            timings,
            freq,
            banks,
            row_bytes: 2048,
            data_bus_free: 0,
            last_was_write: None,
            next_refresh,
            refreshes: 0,
        }
    }

    /// Number of refresh operations performed so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Maps a byte address to `(bank, row)` with line-interleaved banks, so
    /// sequential lines stripe across banks while staying in open rows.
    #[must_use]
    pub fn map_address(&self, addr: u64) -> (usize, u64) {
        let line = addr / BYTES_PER_DRAM_ACCESS;
        let banks = u64::from(self.timings.banks);
        let bank = (line % banks) as usize;
        let row = line / banks / (self.row_bytes / BYTES_PER_DRAM_ACCESS);
        (bank, row)
    }

    /// Services `requests` (any order; they are scheduled FR-FCFS) and
    /// returns one completion record per request, in completion order.
    pub fn run(&mut self, requests: &[Request]) -> Vec<RequestResult> {
        let mut pending: Vec<Request> = requests.to_vec();
        pending.sort_by_key(|r| r.arrival_cycle);
        let mut pending: VecDeque<Request> = pending.into();
        let mut window: Vec<Request> = Vec::new();
        let mut results = Vec::with_capacity(requests.len());
        let mut now = 0u64;

        while !pending.is_empty() || !window.is_empty() {
            // Admit everything that has arrived.
            while pending.front().is_some_and(|r| r.arrival_cycle <= now) {
                window.push(pending.pop_front().expect("front checked"));
            }
            if window.is_empty() {
                // Jump to the next arrival.
                now = pending.front().expect("pending nonempty").arrival_cycle;
                continue;
            }

            self.maybe_refresh(now);

            // FR-FCFS: oldest row hit, else oldest overall.
            let pick = window
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    let (bank, row) = self.map_address(r.addr);
                    self.banks[bank].state() == crate::bank::BankState::Active { row }
                })
                .min_by_key(|(_, r)| r.arrival_cycle)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    window
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| r.arrival_cycle)
                        .map(|(i, _)| i)
                        .expect("window nonempty")
                });
            let req = window.swap_remove(pick);
            let (bank_idx, row) = self.map_address(req.addr);

            // Shared-bus constraint with CAS overlap: the next access can
            // start its CAS while the previous burst drains. A direction
            // switch adds the tWTR/tRTW turnaround.
            let cas = self.timings.cas_cycles(self.freq);
            let turnaround = match self.last_was_write {
                Some(prev_write) if prev_write != req.write => {
                    if prev_write {
                        self.timings.twtr_cycles(self.freq)
                    } else {
                        self.timings.trtw_cycles()
                    }
                }
                _ => 0,
            };
            let start = now.max(self.data_bus_free.saturating_sub(cas) + turnaround);
            self.last_was_write = Some(req.write);
            let bank = &mut self.banks[bank_idx];
            let (_first, row_hit) = bank.access(row, req.write, start);
            // Second burst completes the 64-byte line.
            let column = if req.write {
                crate::bank::Command::Write
            } else {
                crate::bank::Command::Read
            };
            let done = bank
                .issue(column, start)
                .expect("bank is active after access");
            self.data_bus_free = done;
            now = now.max(start + 1);

            results.push(RequestResult {
                request: req,
                start_cycle: start,
                done_cycle: done,
                row_hit,
            });
        }
        results
    }

    /// Performs any refresshes that have come due by `now`: precharge all
    /// banks and block for tRFC.
    fn maybe_refresh(&mut self, now: u64) {
        while now >= self.next_refresh {
            let mut idle_at = self.next_refresh;
            for bank in &mut self.banks {
                let t = bank
                    .issue(crate::bank::Command::Precharge, self.next_refresh)
                    .expect("precharge is always legal");
                idle_at = idle_at.max(t);
            }
            let done = idle_at + self.freq.cycles_in_ns(self.timings.trfc_ns);
            self.data_bus_free = self.data_bus_free.max(done);
            self.refreshes += 1;
            self.next_refresh += self.freq.cycles_in_ns(self.timings.trefi_ns);
        }
    }

    /// Summarizes a completed run.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    #[must_use]
    pub fn stats(results: &[RequestResult], freq: MemFreq, refreshes: u64) -> ControllerStats {
        assert!(!results.is_empty(), "no results to summarize");
        let tck = freq.period_ns();
        let n = results.len() as f64;
        let lat_ns: Vec<f64> = results
            .iter()
            .map(|r| r.latency_cycles() as f64 * tck)
            .collect();
        let first_arrival = results
            .iter()
            .map(|r| r.request.arrival_cycle)
            .min()
            .expect("nonempty");
        let last_done = results
            .iter()
            .map(|r| r.done_cycle)
            .max()
            .expect("nonempty");
        let span_s = (last_done - first_arrival) as f64 * tck * 1e-9;
        let hits = results.iter().filter(|r| r.row_hit).count() as f64;
        ControllerStats {
            requests: results.len() as u64,
            avg_latency_ns: lat_ns.iter().sum::<f64>() / n,
            max_latency_ns: lat_ns.iter().fold(0.0, |a, &b| a.max(b)),
            bandwidth: results.len() as f64 * BYTES_PER_DRAM_ACCESS as f64 / span_s.max(1e-12),
            row_hit_rate: hits / n,
            refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_stream(n: u64, gap_cycles: u64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                arrival_cycle: i * gap_cycles,
                addr: i * 64,
                write: false,
            })
            .collect()
    }

    fn random_stream(n: u64, gap_cycles: u64) -> Vec<Request> {
        // Deterministic LCG scatter across a 256 MB footprint.
        let mut state = 12345u64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Request {
                    arrival_cycle: i * gap_cycles,
                    addr: (state % (256 * 1024 * 1024 / 64)) * 64,
                    write: false,
                }
            })
            .collect()
    }

    #[test]
    fn sequential_stream_gets_high_row_hit_rate() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        let results = ctrl.run(&seq_stream(512, 10));
        let stats = MemoryController::stats(&results, f, ctrl.refreshes());
        assert!(
            stats.row_hit_rate > 0.8,
            "sequential hit rate {}",
            stats.row_hit_rate
        );
    }

    #[test]
    fn random_stream_gets_low_row_hit_rate() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        let results = ctrl.run(&random_stream(512, 50));
        let stats = MemoryController::stats(&results, f, ctrl.refreshes());
        assert!(
            stats.row_hit_rate < 0.2,
            "random hit rate {}",
            stats.row_hit_rate
        );
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        let stream = random_stream(300, 20);
        let results = ctrl.run(&stream);
        assert_eq!(results.len(), stream.len());
        let mut addrs: Vec<u64> = results.iter().map(|r| r.request.addr).collect();
        let mut expect: Vec<u64> = stream.iter().map(|r| r.addr).collect();
        addrs.sort_unstable();
        expect.sort_unstable();
        assert_eq!(addrs, expect);
    }

    #[test]
    fn latency_never_precedes_arrival() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        for r in ctrl.run(&random_stream(200, 10)) {
            assert!(
                r.start_cycle >= r.request.arrival_cycle
                    || r.start_cycle + 64 > r.request.arrival_cycle
            );
            assert!(r.done_cycle > r.request.arrival_cycle);
        }
    }

    #[test]
    fn higher_frequency_reduces_average_latency_ns() {
        let slow_f = MemFreq::from_mhz(200);
        let fast_f = MemFreq::from_mhz(800);
        // Same arrival times in *nanoseconds* — convert per frequency.
        let gap_ns = 100.0;
        let make = |f: MemFreq| -> Vec<Request> {
            (0..400)
                .map(|i| Request {
                    arrival_cycle: f.cycles_in_ns(gap_ns * i as f64),
                    addr: (i % 64) * 64 * 131 * 64, // scattered
                    write: false,
                })
                .collect()
        };
        let mut slow = MemoryController::lpddr3(slow_f);
        let rs = slow.run(&make(slow_f));
        let ss = MemoryController::stats(&rs, slow_f, slow.refreshes());
        let mut fast = MemoryController::lpddr3(fast_f);
        let rf = fast.run(&make(fast_f));
        let fs = MemoryController::stats(&rf, fast_f, fast.refreshes());
        assert!(
            fs.avg_latency_ns < ss.avg_latency_ns,
            "800 MHz {} ns vs 200 MHz {} ns",
            fs.avg_latency_ns,
            ss.avg_latency_ns
        );
    }

    #[test]
    fn saturating_load_queues_up() {
        let f = MemFreq::from_mhz(200);
        let mut open = MemoryController::lpddr3(f);
        let relaxed = open.run(&seq_stream(400, 200));
        let relaxed_stats = MemoryController::stats(&relaxed, f, open.refreshes());
        let mut ctrl = MemoryController::lpddr3(f);
        let slammed = ctrl.run(&seq_stream(400, 1));
        let slammed_stats = MemoryController::stats(&slammed, f, ctrl.refreshes());
        assert!(
            slammed_stats.avg_latency_ns > 2.0 * relaxed_stats.avg_latency_ns,
            "back-to-back {} ns vs relaxed {} ns",
            slammed_stats.avg_latency_ns,
            relaxed_stats.avg_latency_ns
        );
    }

    #[test]
    fn achieved_bandwidth_is_below_effective_peak() {
        let f = MemFreq::from_mhz(800);
        let mut ctrl = MemoryController::lpddr3(f);
        let results = ctrl.run(&seq_stream(2048, 1));
        let stats = MemoryController::stats(&results, f, ctrl.refreshes());
        let peak = LpddrTimings::micron_lpddr3().peak_bandwidth(f);
        assert!(stats.bandwidth < peak);
        assert!(
            stats.bandwidth > 0.3 * peak,
            "sequential saturating stream should reach a large peak fraction, got {:.2} GB/s of {:.2}",
            stats.bandwidth / 1e9,
            peak / 1e9,
        );
    }

    #[test]
    fn refresh_fires_on_long_runs() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        // Spread arrivals over > 2 x tREFI.
        let trefi_cycles = f.cycles_in_ns(LpddrTimings::micron_lpddr3().trefi_ns);
        let stream: Vec<Request> = (0..64)
            .map(|i| Request {
                arrival_cycle: i * trefi_cycles / 16,
                addr: i * 64,
                write: false,
            })
            .collect();
        ctrl.run(&stream);
        assert!(ctrl.refreshes() >= 2, "refreshes {}", ctrl.refreshes());
    }

    #[test]
    fn address_mapping_stripes_banks_and_preserves_rows() {
        let ctrl = MemoryController::lpddr3(MemFreq::from_mhz(400));
        let (b0, r0) = ctrl.map_address(0);
        let (b1, _r1) = ctrl.map_address(64);
        assert_ne!(b0, b1, "consecutive lines go to different banks");
        // Lines 0 and 8 share bank 0; within a 2 KB row (32 lines/bank).
        let (b8, r8) = ctrl.map_address(8 * 64);
        assert_eq!(b0, b8);
        assert_eq!(r0, r8);
    }

    #[test]
    fn writes_are_serviced_like_reads() {
        let f = MemFreq::from_mhz(400);
        let mut ctrl = MemoryController::lpddr3(f);
        let stream: Vec<Request> = (0..64)
            .map(|i| Request {
                arrival_cycle: i * 30,
                addr: i * 64,
                write: i % 2 == 0,
            })
            .collect();
        let results = ctrl.run(&stream);
        assert_eq!(results.len(), 64);
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn stats_of_empty_run_panics() {
        let _ = MemoryController::stats(&[], MemFreq::from_mhz(400), 0);
    }

    #[test]
    fn read_write_turnaround_costs_bandwidth() {
        let f = MemFreq::from_mhz(400);
        // Saturating sequential streams: pure reads vs alternating
        // read/write. The alternating stream pays tWTR/tRTW every request.
        let pure: Vec<Request> = (0..512)
            .map(|i| Request {
                arrival_cycle: i,
                addr: i * 64,
                write: false,
            })
            .collect();
        let mixed: Vec<Request> = (0..512)
            .map(|i| Request {
                arrival_cycle: i,
                addr: i * 64,
                write: i % 2 == 0,
            })
            .collect();
        let mut a = MemoryController::lpddr3(f);
        let ra = a.run(&pure);
        let sa = MemoryController::stats(&ra, f, a.refreshes());
        let mut b = MemoryController::lpddr3(f);
        let rb = b.run(&mixed);
        let sb = MemoryController::stats(&rb, f, b.refreshes());
        assert!(
            sb.bandwidth < sa.bandwidth * 0.97,
            "mixed {:.2} GB/s must trail pure reads {:.2} GB/s",
            sb.bandwidth / 1e9,
            sa.bandwidth / 1e9
        );
    }

    #[test]
    fn same_direction_stream_pays_no_turnaround() {
        let f = MemFreq::from_mhz(400);
        let writes: Vec<Request> = (0..256)
            .map(|i| Request {
                arrival_cycle: i,
                addr: i * 64,
                write: true,
            })
            .collect();
        let reads: Vec<Request> = writes
            .iter()
            .map(|r| Request { write: false, ..*r })
            .collect();
        let mut a = MemoryController::lpddr3(f);
        let sa = MemoryController::stats(&a.run(&writes), f, a.refreshes());
        let mut b = MemoryController::lpddr3(f);
        let sb = MemoryController::stats(&b.run(&reads), f, b.refreshes());
        // Same-direction streams achieve comparable bandwidth.
        let ratio = sa.bandwidth / sb.bandwidth;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }
}
