//! DRAM low-power states: precharge power-down and self-refresh.
//!
//! Mobile memory controllers aggressively park idle LPDDR3 in power-down
//! (CKE low; fast exit) or self-refresh (clock stopped entirely; slow
//! exit). DRAMPower models both, and any realistic idle-energy story for a
//! phone needs them: the background power the frequency-scaling studies
//! fight over is what's left *after* these states have harvested the long
//! idle gaps.
//!
//! [`PowerDownPolicy`] models a controller timeout policy: after
//! `powerdown_after` of idleness the rank enters power-down, after
//! `self_refresh_after` it drops to self-refresh. Given an idle-gap
//! distribution it reports the achieved background-energy savings.

use crate::power::{DramPowerModel, IddCurrents};
use mcdvfs_types::{Joules, MemFreq, Seconds, Watts};

/// Idle-state currents, as fractions of the active-idle standby draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowPowerStates {
    /// Precharge power-down current (IDD2P-class), mA per rail.
    pub idd2p: IddCurrents,
    /// Self-refresh current (IDD6-class), mA per rail.
    pub idd6: IddCurrents,
    /// Exit latency from power-down (tXP-class), ns.
    pub powerdown_exit_ns: f64,
    /// Exit latency from self-refresh (tXSR-class), ns.
    pub self_refresh_exit_ns: f64,
}

impl LowPowerStates {
    /// Micron LPDDR3-class values (package level, matching
    /// [`DramPowerModel::micron_lpddr3`]).
    #[must_use]
    pub fn micron_lpddr3() -> Self {
        Self {
            idd2p: IddCurrents::new(1.6, 9.0),
            idd6: IddCurrents::new(0.9, 4.5),
            powerdown_exit_ns: 7.5,
            self_refresh_exit_ns: 140.0,
        }
    }
}

/// A controller idle-state timeout policy.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::{DramPowerModel, LowPowerStates, PowerDownPolicy};
/// use mcdvfs_types::{MemFreq, Seconds};
///
/// let policy = PowerDownPolicy::new(
///     LowPowerStates::micron_lpddr3(),
///     Seconds::from_micros(1.0),
///     Seconds::from_millis(1.0),
/// );
/// let model = DramPowerModel::micron_lpddr3();
/// // A long idle gap mostly self-refreshes: huge background savings.
/// let gap = policy.idle_energy(&model, MemFreq::from_mhz(800), Seconds::from_millis(100.0));
/// let naive = model.background_power(MemFreq::from_mhz(800), 0.0)
///     * Seconds::from_millis(100.0);
/// assert!(gap.value() < 0.2 * naive.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDownPolicy {
    states: LowPowerStates,
    /// Idle time before entering precharge power-down.
    powerdown_after: Seconds,
    /// Idle time before dropping to self-refresh.
    self_refresh_after: Seconds,
}

impl PowerDownPolicy {
    /// Creates a timeout policy.
    ///
    /// # Panics
    ///
    /// Panics when the self-refresh timeout precedes the power-down
    /// timeout (states are entered in order of depth).
    #[must_use]
    pub fn new(
        states: LowPowerStates,
        powerdown_after: Seconds,
        self_refresh_after: Seconds,
    ) -> Self {
        assert!(
            self_refresh_after >= powerdown_after,
            "self-refresh is entered after power-down"
        );
        Self {
            states,
            powerdown_after,
            self_refresh_after,
        }
    }

    /// A mobile-typical policy: power-down after 1 µs idle, self-refresh
    /// after 1 ms.
    #[must_use]
    pub fn mobile_default() -> Self {
        Self::new(
            LowPowerStates::micron_lpddr3(),
            Seconds::from_micros(1.0),
            Seconds::from_millis(1.0),
        )
    }

    /// Power drawn in precharge power-down at `freq`.
    #[must_use]
    pub fn powerdown_power(&self, _freq: MemFreq) -> Watts {
        // CKE low: the clocked standby tree is gated; the residual draw is
        // frequency independent.
        rail_power(self.states.idd2p)
    }

    /// Power drawn in self-refresh (clock stopped; frequency independent).
    #[must_use]
    pub fn self_refresh_power(&self) -> Watts {
        rail_power(self.states.idd6)
    }

    /// Energy consumed over one idle gap of length `gap`, including the
    /// exit penalty paid at full standby power.
    #[must_use]
    pub fn idle_energy(&self, model: &DramPowerModel, freq: MemFreq, gap: Seconds) -> Joules {
        let standby = model.background_power(freq, 0.0);
        let mut remaining = gap;
        let mut energy = Joules::ZERO;

        // Standby until the power-down timeout.
        let standby_span = remaining.min(self.powerdown_after);
        energy += standby * standby_span;
        remaining -= standby_span;
        if remaining.value() <= 0.0 {
            return energy;
        }

        // Power-down until the self-refresh timeout.
        let pd_span = remaining.min(self.self_refresh_after - self.powerdown_after);
        energy += self.powerdown_power(freq) * pd_span;
        remaining -= pd_span;
        let mut exit = Seconds::from_nanos(self.states.powerdown_exit_ns);
        if remaining.value() > 0.0 {
            // Self-refresh for the rest of the gap.
            energy += self.self_refresh_power() * remaining;
            exit = Seconds::from_nanos(self.states.self_refresh_exit_ns);
        }
        // Exit penalty at standby power (wake-up before the next access).
        energy + standby * exit
    }

    /// Average background power over an execution whose idle time is
    /// distributed as `gaps`, with `busy_fraction` of the total time spent
    /// actively transferring (charged at active standby).
    ///
    /// # Panics
    ///
    /// Panics when `busy_fraction` is outside `[0, 1]` or `gaps` is empty
    /// while `busy_fraction < 1`.
    #[must_use]
    pub fn average_background_power(
        &self,
        model: &DramPowerModel,
        freq: MemFreq,
        busy_fraction: f64,
        gaps: &[Seconds],
    ) -> Watts {
        assert!((0.0..=1.0).contains(&busy_fraction));
        if busy_fraction >= 1.0 {
            return model.background_power(freq, 1.0);
        }
        assert!(!gaps.is_empty(), "idle time needs an idle-gap distribution");
        let idle_energy: Joules = gaps.iter().map(|&g| self.idle_energy(model, freq, g)).sum();
        let idle_time: Seconds = gaps.iter().copied().sum();
        let idle_power = idle_energy / idle_time;
        let busy_power = model.background_power(freq, 1.0);
        busy_power * busy_fraction + idle_power * (1.0 - busy_fraction)
    }
}

fn rail_power(idd: IddCurrents) -> Watts {
    // LPDDR3 rails: VDD1 = 1.8 V, VDD2 = 1.2 V.
    Watts::from_millis(idd.vdd1_ma * 1.8 + idd.vdd2_ma * 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PowerDownPolicy {
        PowerDownPolicy::mobile_default()
    }

    fn model() -> DramPowerModel {
        DramPowerModel::micron_lpddr3()
    }

    #[test]
    fn state_powers_are_ordered_by_depth() {
        let p = policy();
        let f = MemFreq::from_mhz(800);
        let standby = model().background_power(f, 0.0);
        assert!(p.powerdown_power(f) < standby);
        assert!(p.self_refresh_power() < p.powerdown_power(f));
    }

    #[test]
    fn short_gaps_stay_in_standby() {
        let p = policy();
        let f = MemFreq::from_mhz(400);
        let gap = Seconds::from_nanos(500.0); // below the 1 µs timeout
        let e = p.idle_energy(&model(), f, gap);
        let standby = model().background_power(f, 0.0) * gap;
        assert!((e.value() - standby.value()).abs() < 1e-15);
    }

    #[test]
    fn medium_gaps_power_down() {
        let p = policy();
        let f = MemFreq::from_mhz(400);
        let gap = Seconds::from_micros(100.0);
        let e = p.idle_energy(&model(), f, gap);
        let standby = model().background_power(f, 0.0) * gap;
        assert!(e < standby, "power-down must save energy on a 100 µs gap");
        // But not as much as pure self-refresh would.
        let floor = p.self_refresh_power() * gap;
        assert!(e > floor);
    }

    #[test]
    fn long_gaps_reach_self_refresh_floor() {
        let p = policy();
        let f = MemFreq::from_mhz(800);
        let gap = Seconds::from_millis(500.0);
        let e = p.idle_energy(&model(), f, gap);
        let floor = p.self_refresh_power() * gap;
        // Within 12% of the self-refresh floor (entry path + exit penalty).
        assert!(e.value() < floor.value() * 1.12, "e={} floor={}", e, floor);
    }

    #[test]
    fn idle_energy_is_monotone_in_gap_length() {
        let p = policy();
        let f = MemFreq::from_mhz(600);
        let m = model();
        let mut prev = Joules::ZERO;
        for us in [0.5, 2.0, 50.0, 2000.0, 50_000.0] {
            let e = p.idle_energy(&m, f, Seconds::from_micros(us));
            assert!(e > prev, "gap {us} µs");
            prev = e;
        }
    }

    #[test]
    fn average_power_blends_busy_and_idle() {
        let p = policy();
        let f = MemFreq::from_mhz(800);
        let m = model();
        let gaps = vec![Seconds::from_millis(10.0); 4];
        let avg = p.average_background_power(&m, f, 0.3, &gaps);
        let busy = m.background_power(f, 1.0);
        assert!(avg < busy);
        assert!(avg > p.self_refresh_power() * 0.69);
        // Fully busy ignores the gaps.
        let full = p.average_background_power(&m, f, 1.0, &[]);
        assert_eq!(full, busy);
    }

    #[test]
    fn power_down_exit_is_much_faster_than_self_refresh_exit() {
        let s = LowPowerStates::micron_lpddr3();
        assert!(s.self_refresh_exit_ns > 10.0 * s.powerdown_exit_ns);
    }

    #[test]
    #[should_panic(expected = "self-refresh is entered after power-down")]
    fn inverted_timeouts_panic() {
        let _ = PowerDownPolicy::new(
            LowPowerStates::micron_lpddr3(),
            Seconds::from_millis(1.0),
            Seconds::from_micros(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "idle-gap distribution")]
    fn idle_without_gaps_panics() {
        let p = policy();
        let _ = p.average_background_power(&model(), MemFreq::from_mhz(400), 0.5, &[]);
    }
}
