//! DRAMPower-style LPDDR3 energy model.
//!
//! Follows the structure of the open-source DRAMPower tool the paper
//! integrates into Gem5: energy is computed from datasheet IDD currents
//! over the two LPDDR3 supply rails (VDD1 = 1.8 V core, VDD2 = 1.2 V
//! array/IO), split into
//!
//! * **background** energy — standby current drawn for the whole interval,
//!   a utilization-weighted mix of active-standby (IDD3N) and
//!   precharge-standby (IDD2N). Standby currents have a clocked component
//!   that scales linearly with interface frequency (per Micron's
//!   calculating-memory-power technical notes), which is exactly why the
//!   paper's bzip2 saves energy by lowering memory frequency it doesn't
//!   need;
//! * **activate/precharge** energy per row activation (IDD0 over tRC minus
//!   the standby baseline);
//! * **read/write burst** energy per access (IDD4R/IDD4W minus active
//!   standby, over the burst);
//! * **refresh** energy (IDD5 over tRFC each tREFI).

use crate::timing::LpddrTimings;
use mcdvfs_types::{Joules, MemFreq, Seconds, Volts, Watts};

/// A pair of currents, one per LPDDR3 rail, in milliamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddCurrents {
    /// Current on VDD1 (1.8 V core rail), mA.
    pub vdd1_ma: f64,
    /// Current on VDD2 (1.2 V array/IO rail), mA.
    pub vdd2_ma: f64,
}

impl IddCurrents {
    /// Creates a current pair.
    #[must_use]
    pub const fn new(vdd1_ma: f64, vdd2_ma: f64) -> Self {
        Self { vdd1_ma, vdd2_ma }
    }

    /// Power drawn at the given rail voltages.
    #[must_use]
    fn power(self, vdd1: Volts, vdd2: Volts) -> Watts {
        Watts::from_millis(self.vdd1_ma * vdd1.value() + self.vdd2_ma * vdd2.value())
    }

    fn scale(self, k: f64) -> Self {
        Self {
            vdd1_ma: self.vdd1_ma * k,
            vdd2_ma: self.vdd2_ma * k,
        }
    }

    fn minus(self, other: Self) -> Self {
        Self {
            vdd1_ma: (self.vdd1_ma - other.vdd1_ma).max(0.0),
            vdd2_ma: (self.vdd2_ma - other.vdd2_ma).max(0.0),
        }
    }
}

/// Energy consumed by the DRAM over one interval, by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyBreakdown {
    /// Standby (background) energy over the whole interval.
    pub background: Joules,
    /// Row activate + precharge energy.
    pub activate: Joules,
    /// Read/write burst energy.
    pub rw: Joules,
    /// Refresh energy.
    pub refresh: Joules,
}

impl DramEnergyBreakdown {
    /// Total DRAM energy.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.background + self.activate + self.rw + self.refresh
    }
}

/// DRAMPower-style energy model for one LPDDR3 rank.
///
/// # Examples
///
/// ```
/// use mcdvfs_dram::{DramPowerModel, LpddrTimings};
/// use mcdvfs_types::{MemFreq, Seconds};
///
/// let model = DramPowerModel::micron_lpddr3();
/// let slow = model.energy(MemFreq::from_mhz(200), Seconds::from_millis(10.0), 1_000, 0.6, 0.3, 0.1);
/// let fast = model.energy(MemFreq::from_mhz(800), Seconds::from_millis(10.0), 1_000, 0.6, 0.3, 0.1);
/// // Same work and same duration: the faster clock burns more background power.
/// assert!(fast.background > slow.background);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramPowerModel {
    timings: LpddrTimings,
    vdd1: Volts,
    vdd2: Volts,
    /// Reference frequency at which the IDD currents are specified.
    f_ref: MemFreq,
    /// Fraction of each standby current that is clocked (scales with
    /// frequency); the remainder is static.
    clocked_fraction: f64,
    idd0: IddCurrents,
    idd2n: IddCurrents,
    idd3n: IddCurrents,
    idd4r: IddCurrents,
    idd4w: IddCurrents,
    idd5: IddCurrents,
}

impl DramPowerModel {
    /// Micron 16 Gb x32 LPDDR3-class currents at the 800 MHz bin, at
    /// *package* level (a phone-class multi-die stack, so the standby and
    /// burst currents are a small integer multiple of single-die datasheet
    /// values).
    #[must_use]
    pub fn micron_lpddr3() -> Self {
        Self {
            timings: LpddrTimings::micron_lpddr3(),
            vdd1: Volts::new(1.8),
            vdd2: Volts::new(1.2),
            f_ref: MemFreq::from_mhz(800),
            clocked_fraction: 0.9,
            idd0: IddCurrents::new(24.0, 160.0),
            idd2n: IddCurrents::new(10.0, 60.0),
            idd3n: IddCurrents::new(18.0, 100.0),
            idd4r: IddCurrents::new(18.0, 500.0),
            idd4w: IddCurrents::new(18.0, 440.0),
            idd5: IddCurrents::new(36.0, 300.0),
        }
    }

    /// The timing set this power model is paired with.
    #[must_use]
    pub fn timings(&self) -> &LpddrTimings {
        &self.timings
    }

    /// Scales a standby-class current from the reference bin to `freq`:
    /// the clocked fraction scales linearly with frequency, the rest is
    /// static.
    fn scale_current(&self, idd: IddCurrents, freq: MemFreq) -> IddCurrents {
        let f_ratio = f64::from(freq.mhz()) / f64::from(self.f_ref.mhz());
        idd.scale(1.0 - self.clocked_fraction + self.clocked_fraction * f_ratio)
    }

    /// Background (standby) power at `freq` with a fraction
    /// `active_fraction` of time spent with at least one bank active.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `active_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn background_power(&self, freq: MemFreq, active_fraction: f64) -> Watts {
        debug_assert!((0.0..=1.0).contains(&active_fraction));
        let (idd2n, idd3n) = self.standby_currents(freq);
        let blended = IddCurrents::new(
            idd2n.vdd1_ma + (idd3n.vdd1_ma - idd2n.vdd1_ma) * active_fraction,
            idd2n.vdd2_ma + (idd3n.vdd2_ma - idd2n.vdd2_ma) * active_fraction,
        );
        self.rail_power(blended)
    }

    /// The frequency-scaled standby currents `(IDD2N, IDD3N)` at `freq` —
    /// the two endpoints [`Self::background_power`] blends by bank-active
    /// fraction, exposed so callers evaluating many intervals at one
    /// frequency can hoist the scaling and blend per interval.
    #[must_use]
    pub fn standby_currents(&self, freq: MemFreq) -> (IddCurrents, IddCurrents) {
        (
            self.scale_current(self.idd2n, freq),
            self.scale_current(self.idd3n, freq),
        )
    }

    /// Power drawn by `currents` at this model's rail voltages.
    #[must_use]
    pub fn rail_power(&self, currents: IddCurrents) -> Watts {
        currents.power(self.vdd1, self.vdd2)
    }

    /// Energy of one row activate + precharge pair (IDD0 over tRC above the
    /// standby baseline). Analog-dominated, so frequency-independent.
    #[must_use]
    pub fn activate_energy(&self) -> Joules {
        let above_standby = self.idd0.minus(self.idd3n);
        above_standby.power(self.vdd1, self.vdd2) * Seconds::from_nanos(self.timings.trc_ns())
    }

    /// Energy of one read or write burst at `freq`, above active standby.
    #[must_use]
    pub fn burst_energy(&self, freq: MemFreq, write: bool) -> Joules {
        let idd4 = if write { self.idd4w } else { self.idd4r };
        let above_standby = self
            .scale_current(idd4, freq)
            .minus(self.scale_current(self.idd3n, freq));
        above_standby.power(self.vdd1, self.vdd2) * Seconds::from_nanos(self.timings.burst_ns(freq))
    }

    /// Average refresh power: IDD5 above precharge standby, for tRFC out of
    /// every tREFI.
    #[must_use]
    pub fn refresh_power(&self, freq: MemFreq) -> Watts {
        let above = self
            .scale_current(self.idd5, freq)
            .minus(self.scale_current(self.idd2n, freq));
        above.power(self.vdd1, self.vdd2) * self.timings.refresh_overhead()
    }

    /// Full energy breakdown for an interval of `time` at `freq` during
    /// which `accesses` cache-line transfers occurred with the given
    /// row-buffer hit rate, write fraction and bank-active time fraction.
    ///
    /// Each cache line (64 B) needs two BL8×32 bursts; each row-buffer
    /// *miss* costs one activate/precharge pair.
    #[must_use]
    pub fn energy(
        &self,
        freq: MemFreq,
        time: Seconds,
        accesses: u64,
        row_hit_rate: f64,
        write_frac: f64,
        active_fraction: f64,
    ) -> DramEnergyBreakdown {
        debug_assert!((0.0..=1.0).contains(&row_hit_rate));
        debug_assert!((0.0..=1.0).contains(&write_frac));
        let bursts_per_access = (mcdvfs_types::BYTES_PER_DRAM_ACCESS as f64
            / self.timings.bytes_per_burst() as f64)
            .ceil();
        let n = accesses as f64;
        let activations = n * (1.0 - row_hit_rate);
        let read_bursts = n * bursts_per_access * (1.0 - write_frac);
        let write_bursts = n * bursts_per_access * write_frac;
        DramEnergyBreakdown {
            background: self.background_power(freq, active_fraction) * time,
            activate: self.activate_energy() * activations,
            rw: self.burst_energy(freq, false) * read_bursts
                + self.burst_energy(freq, true) * write_bursts,
            refresh: self.refresh_power(freq) * time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramPowerModel {
        DramPowerModel::micron_lpddr3()
    }

    #[test]
    fn background_power_scales_with_frequency() {
        let m = model();
        let p200 = m.background_power(MemFreq::from_mhz(200), 0.3);
        let p800 = m.background_power(MemFreq::from_mhz(800), 0.3);
        assert!(p800 > p200);
        // With 70% clocked current, the 4x clock gives < 4x power.
        assert!(p800.value() / p200.value() < 4.0);
        assert!(p800.value() / p200.value() > 1.5);
    }

    #[test]
    fn active_standby_exceeds_precharge_standby() {
        let m = model();
        let f = MemFreq::from_mhz(400);
        assert!(m.background_power(f, 1.0) > m.background_power(f, 0.0));
    }

    #[test]
    fn activate_energy_is_positive_and_frequency_free() {
        let e = model().activate_energy();
        assert!(e.value() > 0.0);
        // Order of magnitude: tens of nJ for a mobile part.
        assert!(e.as_micros() < 0.1, "activate energy {e}");
    }

    #[test]
    fn burst_energy_positive_and_write_cheaper_than_read_here() {
        let m = model();
        let f = MemFreq::from_mhz(800);
        let r = m.burst_energy(f, false);
        let w = m.burst_energy(f, true);
        assert!(r.value() > 0.0 && w.value() > 0.0);
        assert!(w < r, "IDD4W < IDD4R for this part");
    }

    #[test]
    fn refresh_power_is_small() {
        let m = model();
        let p = m.refresh_power(MemFreq::from_mhz(800));
        assert!(p.value() > 0.0);
        assert!(p.as_millis() < 20.0, "refresh {p}");
    }

    #[test]
    fn breakdown_total_is_component_sum() {
        let m = model();
        let b = m.energy(
            MemFreq::from_mhz(400),
            Seconds::from_millis(5.0),
            10_000,
            0.6,
            0.3,
            0.4,
        );
        let sum = b.background + b.activate + b.rw + b.refresh;
        assert!((b.total().value() - sum.value()).abs() < 1e-15);
        assert!(b.total().value() > 0.0);
    }

    #[test]
    fn more_row_hits_mean_less_activate_energy() {
        let m = model();
        let f = MemFreq::from_mhz(400);
        let t = Seconds::from_millis(5.0);
        let hostile = m.energy(f, t, 10_000, 0.1, 0.3, 0.4);
        let friendly = m.energy(f, t, 10_000, 0.9, 0.3, 0.4);
        assert!(friendly.activate < hostile.activate);
        assert_eq!(friendly.background, hostile.background);
    }

    #[test]
    fn zero_accesses_leave_only_background_and_refresh() {
        let m = model();
        let b = m.energy(
            MemFreq::from_mhz(800),
            Seconds::from_millis(1.0),
            0,
            0.5,
            0.5,
            0.0,
        );
        assert_eq!(b.activate, Joules::ZERO);
        assert_eq!(b.rw, Joules::ZERO);
        assert!(b.background.value() > 0.0);
        assert!(b.refresh.value() > 0.0);
    }

    #[test]
    fn per_access_energy_does_not_explode_with_frequency() {
        // Same number of accesses at higher frequency must not cost more
        // RW energy: currents grow but burst time shrinks faster.
        let m = model();
        let t = Seconds::from_millis(5.0);
        let slow = m.energy(MemFreq::from_mhz(200), t, 10_000, 0.6, 0.3, 0.4);
        let fast = m.energy(MemFreq::from_mhz(800), t, 10_000, 0.6, 0.3, 0.4);
        assert!(fast.rw <= slow.rw);
    }

    #[test]
    fn idle_memory_at_low_frequency_saves_energy_quarter_paper_anchor() {
        // The paper's bzip2 observation: dropping an idle memory from 800
        // to 200 MHz saves ~3/4 of memory background energy.
        let m = model();
        let t = Seconds::from_millis(10.0);
        let hi = m.background_power(MemFreq::from_mhz(800), 0.05) * t;
        let lo = m.background_power(MemFreq::from_mhz(200), 0.05) * t;
        let saving = 1.0 - lo.value() / hi.value();
        assert!(
            (0.4..0.8).contains(&saving),
            "background saving {saving} should be large (clocked share)"
        );
    }
}
