//! A fixed-word bitset over grid setting indices.
//!
//! The paper's largest search space is the fine grid's 496 settings, so
//! every set of settings the analysis pipeline manipulates — feasible
//! sets, performance-cluster memberships, stable-region intersections —
//! fits in eight 64-bit words. [`SettingSet`] stores exactly that:
//! membership tests, intersections and emptiness checks become one to
//! eight word operations instead of sorted-`Vec` merges.

use std::fmt;

/// Number of 64-bit words backing a [`SettingSet`].
const WORDS: usize = 8;

/// A set of flat grid setting indices, backed by `8 × u64` (512 bits —
/// enough for the fine grid's 496 settings with headroom).
///
/// Every set carries the size of its universe (the grid's setting count);
/// operations combining two sets require equal universes, which catches
/// cross-grid index mixups at the first opportunity.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::SettingSet;
///
/// let mut a = SettingSet::empty(70);
/// a.insert(3);
/// a.insert(69);
/// let b = SettingSet::from_indices(70, [2, 3, 68, 69]);
/// let both = a.intersection(&b);
/// assert_eq!(both.to_vec(), vec![3, 69]);
/// assert_eq!(both.max_index(), Some(69));
/// assert!(!both.is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SettingSet {
    /// Universe size: valid indices are `0..len`.
    len: usize,
    words: [u64; WORDS],
}

impl SettingSet {
    /// Largest universe a `SettingSet` can represent.
    pub const MAX_LEN: usize = WORDS * 64;

    /// Creates an empty set over a universe of `len` settings.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`Self::MAX_LEN`].
    #[must_use]
    pub fn empty(len: usize) -> Self {
        assert!(
            len <= Self::MAX_LEN,
            "SettingSet supports at most {} settings, got {len}",
            Self::MAX_LEN
        );
        Self {
            len,
            words: [0; WORDS],
        }
    }

    /// Creates the full set `{0, 1, …, len-1}`.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`Self::MAX_LEN`].
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for w in 0..len / 64 {
            s.words[w] = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            s.words[len / 64] = (1u64 << (len % 64)) - 1;
        }
        s
    }

    /// Creates a set over `len` settings from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`Self::MAX_LEN`] or any index is `>= len`.
    #[must_use]
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(len);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (the grid's setting count, *not* the number of
    /// members — see [`Self::count`]).
    #[must_use]
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Adds index `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside universe of {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes index `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the universe.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index {i} outside universe of {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// `true` when index `i` is a member. Out-of-universe indices are
    /// simply not members.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of members (population count).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words == [0; WORDS]
    }

    /// Word-AND intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the universes differ (sets index different grids).
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        assert_eq!(
            self.len, other.len,
            "cannot intersect sets over different universes"
        );
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// In-place word-AND intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the universes differ.
    pub fn intersect_with(&mut self, other: &Self) {
        *self = self.intersection(other);
    }

    /// Word-OR union with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the universes differ.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(
            self.len, other.len,
            "cannot union sets over different universes"
        );
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }

    /// `true` when every member of `self` is a member of `other`.
    ///
    /// # Panics
    ///
    /// Panics when the universes differ.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        assert_eq!(
            self.len, other.len,
            "cannot compare sets over different universes"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Smallest member, if any.
    #[must_use]
    pub fn min_index(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest member, if any — for grid-ordered universes this is the
    /// paper's highest-CPU-then-memory choice, since flat grid indices
    /// ascend lexicographically in `(cpu, mem)`.
    #[must_use]
    pub fn max_index(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the members in ascending order.
    #[must_use]
    pub fn iter(&self) -> SettingSetIter {
        SettingSetIter {
            words: self.words,
            word: 0,
        }
    }

    /// Members as an ascending `Vec` — the representation the figure
    /// output layers consume.
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl fmt::Debug for SettingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SettingSet({}/{}: ", self.count(), self.len)?;
        f.debug_set().entries(self.iter()).finish()?;
        write!(f, ")")
    }
}

impl std::ops::BitAnd for SettingSet {
    type Output = Self;

    fn bitand(self, rhs: Self) -> Self {
        self.intersection(&rhs)
    }
}

impl std::ops::BitOr for SettingSet {
    type Output = Self;

    fn bitor(self, rhs: Self) -> Self {
        self.union(&rhs)
    }
}

/// Ascending member iterator produced by [`SettingSet::iter`].
#[derive(Debug, Clone)]
pub struct SettingSetIter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for SettingSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] &= w - 1; // clear lowest set bit
                return Some(self.word * 64 + bit);
            }
            self.word += 1;
        }
        None
    }
}

impl DoubleEndedIterator for SettingSetIter {
    fn next_back(&mut self) -> Option<usize> {
        // Both ends consume from the same bit pool, so they meet exactly
        // once every member has been yielded. Scanning all eight words is
        // cheaper than maintaining a second cursor.
        for wi in (self.word..WORDS).rev() {
            let w = self.words[wi];
            if w != 0 {
                let bit = 63 - w.leading_zeros() as usize;
                self.words[wi] &= !(1u64 << bit);
                return Some(wi * 64 + bit);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = SettingSet::empty(496);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.to_vec(), Vec::<usize>::new());
        assert_eq!(s.min_index(), None);
        assert_eq!(s.max_index(), None);
        assert!(!s.contains(0));
    }

    #[test]
    fn full_set_covers_the_universe() {
        for len in [1, 63, 64, 65, 70, 127, 128, 496, 512] {
            let s = SettingSet::full(len);
            assert_eq!(s.count(), len, "len {len}");
            assert_eq!(s.min_index(), Some(0));
            assert_eq!(s.max_index(), Some(len - 1));
            assert!(!s.contains(len), "index len must not be a member");
            assert_eq!(s.to_vec(), (0..len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn insert_remove_contains_round_trip() {
        let mut s = SettingSet::empty(70);
        for i in [0, 1, 63, 64, 69] {
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 5);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.to_vec(), vec![0, 1, 63, 69]);
        // Re-inserting is idempotent.
        s.insert(0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn intersection_matches_sorted_merge() {
        let a = SettingSet::from_indices(496, [1, 3, 5, 64, 128, 400, 495]);
        let b = SettingSet::from_indices(496, [2, 3, 5, 64, 129, 400]);
        let i = a.intersection(&b);
        assert_eq!(i.to_vec(), vec![3, 5, 64, 400]);
        assert_eq!((a & b).to_vec(), i.to_vec());
        let mut c = a;
        c.intersect_with(&b);
        assert_eq!(c, i);
    }

    #[test]
    fn union_and_subset() {
        let a = SettingSet::from_indices(70, [1, 2]);
        let b = SettingSet::from_indices(70, [2, 3]);
        assert_eq!((a | b).to_vec(), vec![1, 2, 3]);
        assert!(a.is_subset(&(a | b)));
        assert!(!a.is_subset(&b));
        assert!(SettingSet::empty(70).is_subset(&a));
    }

    #[test]
    fn min_max_track_extremes() {
        let s = SettingSet::from_indices(512, [7, 200, 511]);
        assert_eq!(s.min_index(), Some(7));
        assert_eq!(s.max_index(), Some(511));
    }

    #[test]
    fn iter_is_ascending() {
        let v = vec![0, 9, 63, 64, 65, 300, 495];
        let s = SettingSet::from_indices(496, v.clone());
        assert_eq!(s.iter().collect::<Vec<_>>(), v);
    }

    #[test]
    fn iter_reverses_and_mixes_both_ends() {
        let v = vec![0, 9, 63, 64, 65, 300, 495];
        let s = SettingSet::from_indices(496, v.clone());
        let mut rev: Vec<usize> = s.iter().rev().collect();
        rev.reverse();
        assert_eq!(rev, v);
        // Alternating front/back yields each member exactly once.
        let mut it = s.iter();
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next_back(), Some(495));
        assert_eq!(it.next_back(), Some(300));
        assert_eq!(it.next(), Some(9));
        assert_eq!(it.next(), Some(63));
        assert_eq!(it.next_back(), Some(65));
        assert_eq!(it.next(), Some(64));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
        // rev().find == filter().last for the tie-break's access pattern
        // (the `last` spelling is the legacy forward-scan being pinned).
        #[allow(clippy::double_ended_iterator_last)]
        let legacy = s.iter().filter(|&i| i < 100).last();
        assert_eq!(s.iter().rev().find(|&i| i < 100), Some(65));
        assert_eq!(legacy, Some(65));
    }

    #[test]
    fn debug_lists_members() {
        let s = SettingSet::from_indices(70, [4, 10]);
        let d = format!("{s:?}");
        assert!(d.contains('4') && d.contains("10"), "{d}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_universe_panics() {
        let _ = SettingSet::empty(513);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_panics() {
        let mut s = SettingSet::empty(70);
        s.insert(70);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn cross_universe_intersection_panics() {
        let _ = SettingSet::empty(70).intersection(&SettingSet::empty(496));
    }

    /// Property: after any seeded random insert/remove sequence, an
    /// interleaved `next`/`next_back` walk agrees with the sorted-Vec
    /// view — front draws consume it ascending from the left, back draws
    /// descending from the right, and the two never overlap.
    #[test]
    fn interleaved_double_ended_iteration_matches_sorted_vec_model() {
        let mut rng = crate::SplitMix64::new(0x5e77_1a65_d0e2_17e3);
        let universes = [1usize, 2, 63, 64, 65, 70, 127, 128, 496, 512];
        for case in 0..1500u64 {
            let len = universes[rng.range_usize(0, universes.len())];
            let mut set = SettingSet::empty(len);
            let mut model: Vec<bool> = vec![false; len];
            for _ in 0..rng.range_usize(0, 3 * len + 1) {
                let i = rng.range_usize(0, len);
                if rng.next_u64().is_multiple_of(3) {
                    set.remove(i);
                    model[i] = false;
                } else {
                    set.insert(i);
                    model[i] = true;
                }
            }
            let sorted: Vec<usize> = (0..len).filter(|&i| model[i]).collect();
            assert_eq!(set.to_vec(), sorted, "case {case}: to_vec drifted");
            assert_eq!(set.count(), sorted.len(), "case {case}: count drifted");

            // Interleave draws from both ends, direction chosen by the
            // rng, and check each draw against the deque model.
            let mut iter = set.iter();
            let mut front = 0usize;
            let mut back = sorted.len();
            loop {
                let from_front = rng.next_u64().is_multiple_of(2);
                let (drawn, expected) = if from_front {
                    (iter.next(), (front < back).then(|| sorted[front]))
                } else {
                    (iter.next_back(), (front < back).then(|| sorted[back - 1]))
                };
                assert_eq!(
                    drawn,
                    expected,
                    "case {case}: universe {len}, {} draw after {front} front / {} back",
                    if from_front { "front" } else { "back" },
                    sorted.len() - back,
                );
                match (drawn, from_front) {
                    (Some(_), true) => front += 1,
                    (Some(_), false) => back -= 1,
                    (None, _) => break,
                }
            }
            // Exhausted from both directions: every draw stays None.
            assert_eq!(iter.next(), None);
            assert_eq!(iter.next_back(), None);
        }
    }
}
