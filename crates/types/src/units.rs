//! Unit-safe scalar newtypes.
//!
//! All quantities are stored in SI base units (`f64`): seconds, joules,
//! watts, volts. Arithmetic is provided only where it is dimensionally
//! meaningful (`Watts * Seconds = Joules`, `Joules / Seconds = Watts`, …),
//! so unit confusion is a compile error rather than a silent factor-of-10⁶
//! bug.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in SI base units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI base units.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the value is finite (not NaN/∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

scalar_unit!(
    /// A time duration in seconds.
    Seconds,
    "s"
);
scalar_unit!(
    /// An amount of energy in joules.
    Joules,
    "J"
);
scalar_unit!(
    /// A power in watts.
    Watts,
    "W"
);
scalar_unit!(
    /// An electric potential in volts.
    Volts,
    "V"
);

impl Seconds {
    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Joules {
    /// Creates an energy from microjoules.
    #[must_use]
    pub const fn from_micros(uj: f64) -> Self {
        Self(uj * 1e-6)
    }

    /// Creates an energy from millijoules.
    #[must_use]
    pub const fn from_millis(mj: f64) -> Self {
        Self(mj * 1e-3)
    }

    /// Creates an energy from nanojoules.
    #[must_use]
    pub const fn from_nanos(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Returns the energy in millijoules.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the energy in microjoules.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[must_use]
    pub const fn from_millis(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Volts {
    /// Squares the voltage, returning the raw `V²` value used by
    /// CV²f-style dynamic-power formulas.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules::new(6.0) / Seconds::new(3.0);
        assert_eq!(p, Watts::new(2.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        let t = Joules::new(6.0) / Watts::new(2.0);
        assert_eq!(t, Seconds::new(3.0));
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let ratio = Joules::new(3.0) / Joules::new(2.0);
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert!((Seconds::from_micros(500.0).as_micros() - 500.0).abs() < 1e-9);
        assert!((Seconds::from_nanos(12.0).as_nanos() - 12.0).abs() < 1e-9);
        assert!((Joules::from_micros(30.0).as_micros() - 30.0).abs() < 1e-9);
        assert!((Watts::from_millis(600.0).as_millis() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn sum_accumulates() {
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{:.2}", Watts::new(1.234)), "1.23 W");
        assert_eq!(format!("{}", Volts::new(1.25)), "1.25 V");
    }

    #[test]
    fn min_max_abs() {
        let a = Seconds::new(-2.0);
        assert_eq!(a.abs(), Seconds::new(2.0));
        assert_eq!(a.min(Seconds::ZERO), a);
        assert_eq!(a.max(Seconds::ZERO), Seconds::ZERO);
    }

    #[test]
    fn compound_assignment() {
        let mut e = Joules::new(1.0);
        e += Joules::new(2.0);
        e -= Joules::new(0.5);
        assert_eq!(e, Joules::new(2.5));
    }

    #[test]
    fn volts_squared() {
        assert!((Volts::new(1.25).squared() - 1.5625).abs() < 1e-12);
    }
}
