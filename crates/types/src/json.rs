//! A minimal JSON value, parser and renderer.
//!
//! The workspace builds offline with no serialization dependencies, so
//! every JSON consumer — the provenance manifest in `mcdvfs-bench`, the
//! `mcdvfs-serve` wire protocol — shares this hand-rolled implementation
//! instead of duplicating one per crate. Object member order is preserved
//! on parse and render, and [`Json::render`] is the exact on-disk format
//! the provenance manifest has always used (2-space indentation, `\n`
//! line ends), so moving the code here changed no bytes.
//!
//! Numbers render with Rust's shortest-round-trip `f64` formatting:
//! `parse(render(x))` reproduces `x` bit-for-bit (including `-0.0`),
//! which is what lets the serving layer promise bit-identical replies
//! across the wire. Non-finite values have no JSON form and render as
//! `null`. Container nesting is capped so untrusted network frames
//! cannot overflow the parser's stack.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> std::result::Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on objects (first match), `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and `\n` line ends — the
    /// on-disk manifest format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_value(self, 0, &mut out);
        out.push('\n');
        out
    }

    /// Serializes without any insignificant whitespace — the single-line
    /// wire format the serving layer frames.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        render_compact_value(self, &mut out);
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum container nesting accepted by the parser. The parser recurses
/// once per nested `[`/`{`, and the serve crate feeds it untrusted frames
/// up to 1 MiB — without a cap, ~100k open brackets overflow the reader
/// thread's stack and abort the process. 128 levels is far beyond any
/// document the workspace produces.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> std::result::Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting exceeds {MAX_DEPTH} levels at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> std::result::Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> std::result::Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let ch = if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: JSON encodes astral code
                            // points as a \uD8xx\uDCxx pair, so the low
                            // half must follow immediately.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(format!("lone high surrogate at byte {pos}"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(format!("lone high surrogate at byte {pos}"));
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).expect("surrogate pair combines to scalar")
                        } else if (0xDC00..=0xDFFF).contains(&code) {
                            return Err(format!("lone low surrogate at byte {pos}"));
                        } else {
                            char::from_u32(code).expect("non-surrogate BMP code point is a scalar")
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().expect("non-empty by match");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Reads four hex digits starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> std::result::Result<u32, String> {
    bytes
        .get(at..at + 4)
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| format!("bad \\u escape at byte {at}"))
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no representation for NaN/±inf; render `null` rather
        // than emit `inf`/`NaN` tokens the parser itself would reject.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 && !(n == 0.0 && n.is_sign_negative()) {
        // The integer path would collapse -0.0 to "0", losing the sign
        // bit; -0.0 takes the shortest-round-trip path ("-0") instead.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_value(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => render_number(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                render_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in members.iter().enumerate() {
                out.push_str(&inner);
                render_string(key, out);
                out.push_str(": ");
                render_value(val, indent + 1, out);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn render_compact_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => render_number(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_compact_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_compact_value(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_nested_shapes() {
        let text = r#"{"schema": "x", "artifacts": [{"path": "a.csv", "bytes": 12,
            "nested": {"k": [1, 2.5, -3e2, true, false, null]},
            "esc": "line\nbreak \"quoted\" A"}]}"#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("x"));
        let entry = &doc.get("artifacts").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("bytes").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            entry.get("esc").and_then(Json::as_str),
            Some("line\nbreak \"quoted\" A")
        );
        // Render → parse is the identity on the value, in both formats.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // An adversarial single frame of open brackets must come back as
        // a parse error, not abort the process.
        let hostile = "[".repeat(100_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "unexpected error: {err}");
        // Nesting at the cap still parses.
        let deep = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&deep).is_ok());
        assert!(Json::parse(&format!("[{deep}]")).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_code_points() {
        let doc = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(doc.as_str(), Some("\u{1f600}"));
        // Astral characters round-trip through render (emitted raw).
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        for lone in [
            r#""\ud83d""#,        // high surrogate at end of string
            r#""\ud83dx""#,       // high surrogate followed by a plain char
            "\"\\ud83d\\u0041\"", // high surrogate followed by a BMP escape
            r#""\ude00""#,        // lone low surrogate
        ] {
            assert!(Json::parse(lone).is_err(), "{lone} should fail");
        }
    }

    #[test]
    fn negative_zero_and_non_finite_numbers() {
        // -0.0 keeps its sign bit through a round trip.
        let rendered = Json::Num(-0.0).render_compact();
        assert_eq!(rendered, "-0");
        let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // Non-finite values render as valid JSON (`null`), never as the
        // `inf`/`NaN` tokens the parser rejects.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(v).render_compact(), "null");
        }
    }

    #[test]
    fn compact_render_has_no_whitespace() {
        let doc = Json::Obj(vec![
            ("a".to_string(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b".to_string(), Json::Str("x y".to_string())),
        ]);
        assert_eq!(doc.render_compact(), r#"{"a":[1,null],"b":"x y"}"#);
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        // Shortest-round-trip f64 formatting: the wire protocol's
        // bit-identity guarantee rests on this.
        for v in [
            0.0,
            1.0,
            1.3,
            0.005,
            1.0 / 3.0,
            2.2250738585072014e-308,
            1.7976931348623157e308,
            -123456.789_012_345,
        ] {
            let rendered = Json::Num(v).render_compact();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {rendered}");
        }
    }
}
