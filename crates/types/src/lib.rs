//! Shared vocabulary types for the `mcdvfs` workspace.
//!
//! This crate defines the unit-safe newtypes (frequencies, voltages, times,
//! energies, powers), the joint CPU/memory [`FreqSetting`], the
//! [`FrequencyGrid`] enumerating every operating point a platform exposes,
//! and the per-sample data records ([`SampleCharacteristics`],
//! [`SampleMeasurement`]) that flow between the simulator substrate and the
//! energy-management algorithms.
//!
//! The types mirror the system studied by Begum et al., *"Energy-Performance
//! Trade-offs on Energy-Constrained Devices with Multi-Component DVFS"*
//! (IISWC 2015): a mobile SoC whose CPU supports DVFS over 100–1000 MHz
//! (0.85–1.25 V) and whose LPDDR3 memory supports frequency-only scaling
//! over 200–800 MHz.
//!
//! # Examples
//!
//! Enumerate the paper's coarse 70-point grid and look up a setting:
//!
//! ```
//! use mcdvfs_types::{FrequencyGrid, CpuFreq, MemFreq};
//!
//! let grid = FrequencyGrid::coarse();
//! assert_eq!(grid.len(), 70);
//!
//! let setting = grid
//!     .settings()
//!     .find(|s| s.cpu == CpuFreq::from_mhz(1000) && s.mem == MemFreq::from_mhz(800))
//!     .expect("max setting is on the grid");
//! assert_eq!(grid.index_of(setting), Some(69));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod error;
mod freq;
mod grid;
mod hash;
mod json;
mod rng;
mod sample;
mod units;

pub use bitset::{SettingSet, SettingSetIter};
pub use error::{Error, Result};
pub use freq::{CpuFreq, FreqSetting, MemFreq};
pub use grid::{FrequencyGrid, Settings};
pub use hash::{fnv1a64, hash_measurements, Fnv1a64};
pub use json::Json;
pub use rng::SplitMix64;
pub use sample::{
    SampleCharacteristics, SampleMeasurement, BYTES_PER_DRAM_ACCESS, INSTRUCTIONS_PER_SAMPLE,
};
pub use units::{Joules, Seconds, Volts, Watts};
