//! A small deterministic pseudo-random number generator.
//!
//! The workspace must build without network access, so instead of pulling
//! in the `rand` crate the few places that need randomness (workload
//! jitter, randomized tests) share this SplitMix64 generator. SplitMix64
//! passes BigCrush, needs one `u64` of state, and — crucially for the
//! reproduction — makes every consumer's stream a pure function of its
//! seed, so traces and tests are bit-reproducible across runs and
//! platforms.

/// SplitMix64 generator (Steele, Lea & Flood; the seeding generator of
/// `java.util.SplittableRandom`).
///
/// # Examples
///
/// ```
/// use mcdvfs_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)` (or exactly `lo` when `lo == hi`).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "invalid range"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        // Multiply-shift bounding; bias is negligible for the small ranges
        // used here (≪ 2^32).
        let span = (hi - lo) as u64;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as usize
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = r.range_f64(-0.25, 0.25);
            assert!((-0.25..0.25).contains(&x));
        }
        assert_eq!(r.range_f64(3.0, 3.0), 3.0);
    }

    #[test]
    fn range_usize_covers_the_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        let _ = SplitMix64::new(0).range_f64(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_usize_range_panics() {
        let _ = SplitMix64::new(0).range_usize(3, 3);
    }
}
