//! CPU and memory frequency newtypes and the joint [`FreqSetting`].
//!
//! Frequencies are stored as integral megahertz, matching how the paper (and
//! Linux cpufreq/devfreq) enumerate operating points. Distinct newtypes for
//! the CPU and memory domains make it impossible to hand a memory frequency
//! to a CPU model.

use std::fmt;

/// A CPU clock frequency in megahertz.
///
/// The platform studied in the paper exposes 100–1000 MHz.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::CpuFreq;
///
/// let f = CpuFreq::from_mhz(900);
/// assert_eq!(f.mhz(), 900);
/// assert!((f.hz() - 9.0e8).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuFreq(u32);

/// A DRAM clock frequency in megahertz.
///
/// The platform studied in the paper exposes 200–800 MHz (LPDDR3, frequency
/// scaling only — supply voltages stay fixed).
///
/// # Examples
///
/// ```
/// use mcdvfs_types::MemFreq;
///
/// let f = MemFreq::from_mhz(800);
/// assert_eq!(f.mhz(), 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemFreq(u32);

macro_rules! freq_impl {
    ($name:ident, $label:literal) => {
        impl $name {
            /// Creates a frequency from a value in megahertz.
            #[must_use]
            pub const fn from_mhz(mhz: u32) -> Self {
                Self(mhz)
            }

            /// Returns the frequency in megahertz.
            #[must_use]
            pub const fn mhz(self) -> u32 {
                self.0
            }

            /// Returns the frequency in hertz as a float, for use in
            /// cycles-per-second arithmetic.
            #[must_use]
            pub fn hz(self) -> f64 {
                f64::from(self.0) * 1e6
            }

            /// Returns the clock period in nanoseconds.
            ///
            /// # Panics
            ///
            /// Panics if the frequency is zero (a zero-MHz operating point is
            /// never a valid grid member).
            #[must_use]
            pub fn period_ns(self) -> f64 {
                assert!(self.0 > 0, "zero frequency has no period");
                1e3 / f64::from(self.0)
            }

            /// Returns the number of clock cycles elapsed in `ns`
            /// nanoseconds, rounded up to a whole cycle.
            #[must_use]
            pub fn cycles_in_ns(self, ns: f64) -> u64 {
                (ns * f64::from(self.0) / 1e3).ceil() as u64
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} MHz", self.0)
            }
        }
    };
}

freq_impl!(CpuFreq, "cpu");
freq_impl!(MemFreq, "mem");

/// A joint CPU/memory operating point — the unit of decision for every
/// algorithm in the paper.
///
/// Ordering is lexicographic on `(cpu, mem)`, which matches the paper's
/// tie-break rule of preferring the highest CPU frequency first and then the
/// highest memory frequency.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::{CpuFreq, FreqSetting, MemFreq};
///
/// let a = FreqSetting::from_mhz(900, 400);
/// let b = FreqSetting::from_mhz(900, 800);
/// let c = FreqSetting::from_mhz(1000, 200);
/// assert!(a < b && b < c);
/// assert_eq!(a.cpu, CpuFreq::from_mhz(900));
/// assert_eq!(a.mem, MemFreq::from_mhz(400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FreqSetting {
    /// CPU clock frequency.
    pub cpu: CpuFreq,
    /// Memory clock frequency.
    pub mem: MemFreq,
}

impl FreqSetting {
    /// Creates a setting from the two domain frequencies.
    #[must_use]
    pub const fn new(cpu: CpuFreq, mem: MemFreq) -> Self {
        Self { cpu, mem }
    }

    /// Convenience constructor taking both frequencies in megahertz.
    #[must_use]
    pub const fn from_mhz(cpu_mhz: u32, mem_mhz: u32) -> Self {
        Self {
            cpu: CpuFreq::from_mhz(cpu_mhz),
            mem: MemFreq::from_mhz(mem_mhz),
        }
    }

    /// Returns `true` when moving from `self` to `other` changes either
    /// clock domain (i.e. a hardware frequency transition is required).
    #[must_use]
    pub fn differs_from(self, other: Self) -> bool {
        self != other
    }

    /// Returns which domains change when moving from `self` to `other`:
    /// `(cpu_changes, mem_changes)`.
    #[must_use]
    pub fn domain_changes(self, other: Self) -> (bool, bool) {
        (self.cpu != other.cpu, self.mem != other.mem)
    }
}

impl fmt::Display for FreqSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cpu {}, mem {})", self.cpu, self.mem)
    }
}

impl From<(CpuFreq, MemFreq)> for FreqSetting {
    fn from((cpu, mem): (CpuFreq, MemFreq)) -> Self {
        Self { cpu, mem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_round_trip() {
        assert_eq!(CpuFreq::from_mhz(550).mhz(), 550);
        assert_eq!(MemFreq::from_mhz(640).mhz(), 640);
    }

    #[test]
    fn hz_and_period() {
        let f = CpuFreq::from_mhz(500);
        assert!((f.hz() - 5.0e8).abs() < 1e-6);
        assert!((f.period_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_in_ns_rounds_up() {
        let f = MemFreq::from_mhz(400); // 2.5 ns period
        assert_eq!(f.cycles_in_ns(5.0), 2);
        assert_eq!(f.cycles_in_ns(5.1), 3);
        assert_eq!(f.cycles_in_ns(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = CpuFreq::from_mhz(0).period_ns();
    }

    #[test]
    fn setting_ordering_matches_tie_break_rule() {
        // Highest CPU first, then highest memory.
        let mut settings = [
            FreqSetting::from_mhz(900, 800),
            FreqSetting::from_mhz(1000, 200),
            FreqSetting::from_mhz(900, 200),
        ];
        settings.sort();
        let best = *settings.last().unwrap();
        assert_eq!(best, FreqSetting::from_mhz(1000, 200));
    }

    #[test]
    fn domain_changes_reports_each_domain() {
        let a = FreqSetting::from_mhz(500, 400);
        assert_eq!(
            a.domain_changes(FreqSetting::from_mhz(500, 400)),
            (false, false)
        );
        assert_eq!(
            a.domain_changes(FreqSetting::from_mhz(600, 400)),
            (true, false)
        );
        assert_eq!(
            a.domain_changes(FreqSetting::from_mhz(500, 600)),
            (false, true)
        );
        assert_eq!(
            a.domain_changes(FreqSetting::from_mhz(600, 600)),
            (true, true)
        );
        assert!(a.differs_from(FreqSetting::from_mhz(600, 400)));
        assert!(!a.differs_from(a));
    }

    #[test]
    fn display_is_informative() {
        let s = FreqSetting::from_mhz(1000, 800);
        assert_eq!(s.to_string(), "(cpu 1000 MHz, mem 800 MHz)");
    }

    #[test]
    fn from_tuple() {
        let s: FreqSetting = (CpuFreq::from_mhz(100), MemFreq::from_mhz(200)).into();
        assert_eq!(s, FreqSetting::from_mhz(100, 200));
    }
}
