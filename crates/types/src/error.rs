//! Workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias for results produced by `mcdvfs` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors reported by the `mcdvfs` workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A frequency grid was constructed with an empty or malformed range.
    InvalidGrid {
        /// Human-readable description of the malformed range.
        reason: String,
    },
    /// A frequency setting was used that is not on the platform's grid.
    SettingOffGrid {
        /// Display form of the offending setting.
        setting: String,
    },
    /// A model or algorithm was given a parameter outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A trace or grid was empty where at least one element was required.
    Empty {
        /// What was unexpectedly empty.
        what: &'static str,
    },
    /// An event ledger lost events to ring-buffer eviction, so an exact
    /// replay of its totals is impossible.
    IncompleteLedger {
        /// Number of events evicted from the ring.
        dropped: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidGrid { reason } => write!(f, "invalid frequency grid: {reason}"),
            Error::SettingOffGrid { setting } => {
                write!(f, "frequency setting {setting} is not on the platform grid")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::Empty { what } => write!(f, "{what} is empty"),
            Error::IncompleteLedger { dropped } => {
                write!(
                    f,
                    "ledger dropped {dropped} events; exact replay is impossible"
                )
            }
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let cases = [
            Error::InvalidGrid {
                reason: "step is zero".into(),
            },
            Error::SettingOffGrid {
                setting: "(cpu 150 MHz, mem 200 MHz)".into(),
            },
            Error::InvalidParameter {
                name: "budget",
                reason: "must be >= 1".into(),
            },
            Error::Empty { what: "trace" },
            Error::IncompleteLedger { dropped: 3 },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
