//! Dependency-free FNV-1a hashing.
//!
//! The workspace's stable content checksum: used by the provenance
//! manifest in `mcdvfs-bench` and by the characterization fingerprint the
//! `mcdvfs-serve` response cache keys on. FNV-1a is deterministic across
//! platforms, needs no tables, and folds one byte at a time — the
//! streaming [`Fnv1a64`] form hashes a measurement arena without
//! materializing its bytes.

/// 64-bit FNV-1a hash of `bytes`.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::{fnv1a64, Fnv1a64};
///
/// let mut h = Fnv1a64::new();
/// h.write(b"foo");
/// h.write(b"bar");
/// assert_eq!(h.finish(), fnv1a64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(Self::BASIS)
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one `u64` (little-endian bytes) into the running hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds one `f64`'s IEEE-754 bits into the running hash — the exact
    /// value, not a rounded rendering.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content hash of a run of [`SampleMeasurement`]s: every field's exact
/// IEEE-754 bits, in storage order.
///
/// This is the per-row unit of the characterization fingerprint. Hashing
/// rows independently lets an incremental update (a few dirty rows of a
/// large arena) refresh only the affected row hashes and re-fold the
/// cached values, instead of re-reading every measurement.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::{hash_measurements, Joules, SampleMeasurement, Seconds};
///
/// let row = [SampleMeasurement {
///     time: Seconds::from_millis(12.0),
///     cpu_energy: Joules::from_millis(8.0),
///     mem_energy: Joules::from_millis(2.0),
///     cpi: 1.2,
/// }];
/// assert_eq!(hash_measurements(&row), hash_measurements(&row));
/// assert_ne!(hash_measurements(&row), hash_measurements(&[]));
/// ```
#[must_use]
pub fn hash_measurements(measurements: &[crate::SampleMeasurement]) -> u64 {
    let mut h = Fnv1a64::new();
    for m in measurements {
        h.write_f64(m.time.value());
        h.write_f64(m.cpu_energy.value());
        h.write_f64(m.mem_energy.value());
        h.write_f64(m.cpi);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.write(b"split");
        h.write(b"");
        h.write(b"mix");
        assert_eq!(h.finish(), fnv1a64(b"splitmix"));
    }

    #[test]
    fn typed_writes_fold_exact_bits() {
        let mut a = Fnv1a64::new();
        a.write_u64(0x0102_0304_0506_0708);
        a.write_f64(1.5);
        let mut b = Fnv1a64::new();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        b.write(&1.5f64.to_bits().to_le_bytes());
        assert_eq!(a.finish(), b.finish());
        // Distinguishes values that render identically when rounded.
        let mut c = Fnv1a64::new();
        c.write_f64(0.1 + 0.2);
        let mut d = Fnv1a64::new();
        d.write_f64(0.3);
        assert_ne!(c.finish(), d.finish());
    }
}
