//! The frequency-setting search space.
//!
//! A [`FrequencyGrid`] is the cartesian product of the CPU and memory
//! frequency steps a platform exposes. The paper evaluates two grids on the
//! same hardware ranges (CPU 100–1000 MHz, memory 200–800 MHz):
//!
//! * the **coarse** grid — 100 MHz steps on both domains, 10 × 7 = **70**
//!   settings (the main evaluation), and
//! * the **fine** grid — 30 MHz CPU / 40 MHz memory steps,
//!   31 × 16 = **496** settings (the Section VI-D sensitivity study).

use crate::error::{Error, Result};
use crate::freq::{CpuFreq, FreqSetting, MemFreq};
use std::fmt;

/// An inclusive arithmetic range of frequencies in MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MhzRange {
    lo: u32,
    hi: u32,
    step: u32,
}

impl MhzRange {
    fn new(lo: u32, hi: u32, step: u32) -> Result<Self> {
        if lo == 0 || step == 0 || hi < lo {
            return Err(Error::InvalidGrid {
                reason: format!("invalid MHz range [{lo}, {hi}] step {step}"),
            });
        }
        Ok(Self { lo, hi, step })
    }

    fn len(self) -> usize {
        ((self.hi - self.lo) / self.step + 1) as usize
    }

    fn at(self, i: usize) -> u32 {
        self.lo + self.step * i as u32
    }

    /// Index of `mhz` within the range, if it is exactly on a step.
    fn index_of(self, mhz: u32) -> Option<usize> {
        if mhz < self.lo || mhz > self.hi + (self.hi - self.lo) % self.step {
            return None;
        }
        let off = mhz.checked_sub(self.lo)?;
        if off % self.step != 0 || mhz > self.hi {
            return None;
        }
        Some((off / self.step) as usize)
    }
}

/// The set of joint CPU/memory frequency settings available on a platform.
///
/// Settings are indexed in row-major order: memory frequency varies fastest,
/// CPU frequency slowest, both ascending. Index `len() - 1` is therefore the
/// maximum-performance setting.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::{FreqSetting, FrequencyGrid};
///
/// let grid = FrequencyGrid::coarse();
/// assert_eq!(grid.len(), 70);
/// assert_eq!(grid.get(0), Some(FreqSetting::from_mhz(100, 200)));
/// assert_eq!(grid.max_setting(), FreqSetting::from_mhz(1000, 800));
///
/// let fine = FrequencyGrid::fine();
/// assert_eq!(fine.len(), 496);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrequencyGrid {
    cpu: MhzRange,
    mem: MhzRange,
}

impl FrequencyGrid {
    /// The paper's coarse evaluation grid: 100 MHz steps on both domains,
    /// 70 settings.
    #[must_use]
    pub fn coarse() -> Self {
        Self::new(100, 1000, 100, 200, 800, 100).expect("coarse grid parameters are valid")
    }

    /// The paper's fine sensitivity grid: 30 MHz CPU steps and 40 MHz memory
    /// steps, 496 settings.
    #[must_use]
    pub fn fine() -> Self {
        Self::new(100, 1000, 30, 200, 800, 40).expect("fine grid parameters are valid")
    }

    /// Creates a custom grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGrid`] if either range is empty, starts at
    /// zero, or has a zero step.
    pub fn new(
        cpu_lo_mhz: u32,
        cpu_hi_mhz: u32,
        cpu_step_mhz: u32,
        mem_lo_mhz: u32,
        mem_hi_mhz: u32,
        mem_step_mhz: u32,
    ) -> Result<Self> {
        Ok(Self {
            cpu: MhzRange::new(cpu_lo_mhz, cpu_hi_mhz, cpu_step_mhz)?,
            mem: MhzRange::new(mem_lo_mhz, mem_hi_mhz, mem_step_mhz)?,
        })
    }

    /// Number of settings on the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cpu.len() * self.mem.len()
    }

    /// Returns `true` if the grid is empty (cannot happen for grids built
    /// through the public constructors, which validate their ranges).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct CPU frequency steps.
    #[must_use]
    pub fn cpu_steps(&self) -> usize {
        self.cpu.len()
    }

    /// Number of distinct memory frequency steps.
    #[must_use]
    pub fn mem_steps(&self) -> usize {
        self.mem.len()
    }

    /// The CPU range parameters as `(lo_mhz, hi_mhz, step_mhz)`.
    ///
    /// Feeding both tuples back through [`FrequencyGrid::new`] reconstructs
    /// an identical grid (`Eq` and `Hash` cover the raw parameters), which is
    /// what snapshot serialization relies on.
    #[must_use]
    pub fn cpu_range_mhz(&self) -> (u32, u32, u32) {
        (self.cpu.lo, self.cpu.hi, self.cpu.step)
    }

    /// The memory range parameters as `(lo_mhz, hi_mhz, step_mhz)`.
    #[must_use]
    pub fn mem_range_mhz(&self) -> (u32, u32, u32) {
        (self.mem.lo, self.mem.hi, self.mem.step)
    }

    /// The lowest-frequency setting on the grid.
    #[must_use]
    pub fn min_setting(&self) -> FreqSetting {
        FreqSetting::from_mhz(self.cpu.lo, self.mem.lo)
    }

    /// The highest-frequency setting on the grid (always the best-performing
    /// point; the paper's "unconstrained" choice).
    #[must_use]
    pub fn max_setting(&self) -> FreqSetting {
        FreqSetting::from_mhz(self.cpu.hi, self.mem.hi)
    }

    /// Returns the setting at flat index `i`, or `None` when out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<FreqSetting> {
        if i >= self.len() {
            return None;
        }
        let (ci, mi) = (i / self.mem.len(), i % self.mem.len());
        Some(FreqSetting::from_mhz(self.cpu.at(ci), self.mem.at(mi)))
    }

    /// Returns the flat index of `setting`, or `None` when the setting is
    /// not exactly on the grid.
    #[must_use]
    pub fn index_of(&self, setting: FreqSetting) -> Option<usize> {
        let ci = self.cpu.index_of(setting.cpu.mhz())?;
        let mi = self.mem.index_of(setting.mem.mhz())?;
        Some(ci * self.mem.len() + mi)
    }

    /// Returns `true` when `setting` lies exactly on the grid.
    #[must_use]
    pub fn contains(&self, setting: FreqSetting) -> bool {
        self.index_of(setting).is_some()
    }

    /// Iterates over every setting in index order.
    #[must_use]
    pub fn settings(&self) -> Settings {
        Settings {
            grid: *self,
            next: 0,
            len: self.len(),
        }
    }

    /// Iterates over the distinct CPU frequencies, ascending.
    pub fn cpu_freqs(&self) -> impl Iterator<Item = CpuFreq> + '_ {
        (0..self.cpu.len()).map(|i| CpuFreq::from_mhz(self.cpu.at(i)))
    }

    /// Iterates over the distinct memory frequencies, ascending.
    pub fn mem_freqs(&self) -> impl Iterator<Item = MemFreq> + '_ {
        (0..self.mem.len()).map(|i| MemFreq::from_mhz(self.mem.at(i)))
    }

    /// Returns the grid neighbours of `setting` (one step up/down in each
    /// domain independently), used by greedy/gradient search baselines such
    /// as the CoScale-style governor.
    ///
    /// The result contains between 2 and 4 settings; settings at a range
    /// boundary have fewer neighbours.
    #[must_use]
    pub fn neighbours(&self, setting: FreqSetting) -> Vec<FreqSetting> {
        let mut out = Vec::with_capacity(4);
        let (Some(ci), Some(mi)) = (
            self.cpu.index_of(setting.cpu.mhz()),
            self.mem.index_of(setting.mem.mhz()),
        ) else {
            return out;
        };
        if ci > 0 {
            out.push(FreqSetting::from_mhz(self.cpu.at(ci - 1), self.mem.at(mi)));
        }
        if ci + 1 < self.cpu.len() {
            out.push(FreqSetting::from_mhz(self.cpu.at(ci + 1), self.mem.at(mi)));
        }
        if mi > 0 {
            out.push(FreqSetting::from_mhz(self.cpu.at(ci), self.mem.at(mi - 1)));
        }
        if mi + 1 < self.mem.len() {
            out.push(FreqSetting::from_mhz(self.cpu.at(ci), self.mem.at(mi + 1)));
        }
        out
    }
}

impl fmt::Display for FrequencyGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {}..={} MHz step {} × mem {}..={} MHz step {} ({} settings)",
            self.cpu.lo,
            self.cpu.hi,
            self.cpu.step,
            self.mem.lo,
            self.mem.hi,
            self.mem.step,
            self.len()
        )
    }
}

/// Iterator over the settings of a [`FrequencyGrid`], produced by
/// [`FrequencyGrid::settings`].
#[derive(Debug, Clone)]
pub struct Settings {
    grid: FrequencyGrid,
    next: usize,
    len: usize,
}

impl Iterator for Settings {
    type Item = FreqSetting;

    fn next(&mut self) -> Option<FreqSetting> {
        if self.next >= self.len {
            return None;
        }
        let s = self.grid.get(self.next);
        self.next += 1;
        s
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Settings {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_grid_has_70_settings() {
        let g = FrequencyGrid::coarse();
        assert_eq!(g.len(), 70);
        assert_eq!(g.cpu_steps(), 10);
        assert_eq!(g.mem_steps(), 7);
        assert!(!g.is_empty());
    }

    #[test]
    fn fine_grid_has_496_settings() {
        let g = FrequencyGrid::fine();
        assert_eq!(g.len(), 496);
        assert_eq!(g.cpu_steps(), 31);
        assert_eq!(g.mem_steps(), 16);
    }

    #[test]
    fn index_round_trips_for_every_setting() {
        for grid in [FrequencyGrid::coarse(), FrequencyGrid::fine()] {
            for (i, s) in grid.settings().enumerate() {
                assert_eq!(grid.get(i), Some(s));
                assert_eq!(grid.index_of(s), Some(i), "setting {s}");
                assert!(grid.contains(s));
            }
            assert_eq!(grid.get(grid.len()), None);
        }
    }

    #[test]
    fn off_grid_settings_are_rejected() {
        let g = FrequencyGrid::coarse();
        assert_eq!(g.index_of(FreqSetting::from_mhz(150, 200)), None);
        assert_eq!(g.index_of(FreqSetting::from_mhz(100, 250)), None);
        assert_eq!(g.index_of(FreqSetting::from_mhz(1100, 200)), None);
        assert_eq!(g.index_of(FreqSetting::from_mhz(100, 900)), None);
        assert_eq!(g.index_of(FreqSetting::from_mhz(50, 200)), None);
        assert!(!g.contains(FreqSetting::from_mhz(150, 200)));
    }

    #[test]
    fn min_and_max_settings() {
        let g = FrequencyGrid::coarse();
        assert_eq!(g.min_setting(), FreqSetting::from_mhz(100, 200));
        assert_eq!(g.max_setting(), FreqSetting::from_mhz(1000, 800));
        assert_eq!(g.index_of(g.min_setting()), Some(0));
        assert_eq!(g.index_of(g.max_setting()), Some(69));
    }

    #[test]
    fn settings_iterate_in_ascending_order() {
        let g = FrequencyGrid::coarse();
        let all: Vec<_> = g.settings().collect();
        assert_eq!(all.len(), 70);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted, "row-major order is ascending lexicographic");
    }

    #[test]
    fn exact_size_iterator() {
        let g = FrequencyGrid::fine();
        let mut it = g.settings();
        assert_eq!(it.len(), 496);
        it.next();
        assert_eq!(it.len(), 495);
    }

    #[test]
    fn invalid_grids_error() {
        assert!(FrequencyGrid::new(0, 1000, 100, 200, 800, 100).is_err());
        assert!(FrequencyGrid::new(100, 1000, 0, 200, 800, 100).is_err());
        assert!(FrequencyGrid::new(1000, 100, 100, 200, 800, 100).is_err());
        assert!(FrequencyGrid::new(100, 1000, 100, 800, 200, 100).is_err());
    }

    #[test]
    fn neighbours_interior_has_four() {
        let g = FrequencyGrid::coarse();
        let n = g.neighbours(FreqSetting::from_mhz(500, 400));
        assert_eq!(n.len(), 4);
        assert!(n.contains(&FreqSetting::from_mhz(400, 400)));
        assert!(n.contains(&FreqSetting::from_mhz(600, 400)));
        assert!(n.contains(&FreqSetting::from_mhz(500, 300)));
        assert!(n.contains(&FreqSetting::from_mhz(500, 500)));
    }

    #[test]
    fn neighbours_corner_has_two() {
        let g = FrequencyGrid::coarse();
        let n = g.neighbours(g.max_setting());
        assert_eq!(n.len(), 2);
        let n = g.neighbours(g.min_setting());
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn neighbours_of_off_grid_setting_is_empty() {
        let g = FrequencyGrid::coarse();
        assert!(g.neighbours(FreqSetting::from_mhz(512, 400)).is_empty());
    }

    #[test]
    fn display_summarises_grid() {
        let g = FrequencyGrid::coarse();
        let s = g.to_string();
        assert!(s.contains("70 settings"), "{s}");
    }

    #[test]
    fn range_params_round_trip_through_new() {
        for grid in [
            FrequencyGrid::coarse(),
            FrequencyGrid::fine(),
            FrequencyGrid::new(300, 900, 150, 200, 600, 200).unwrap(),
        ] {
            let (clo, chi, cstep) = grid.cpu_range_mhz();
            let (mlo, mhi, mstep) = grid.mem_range_mhz();
            let rebuilt = FrequencyGrid::new(clo, chi, cstep, mlo, mhi, mstep).unwrap();
            assert_eq!(rebuilt, grid);
        }
        assert_eq!(FrequencyGrid::coarse().cpu_range_mhz(), (100, 1000, 100));
        assert_eq!(FrequencyGrid::coarse().mem_range_mhz(), (200, 800, 100));
    }

    #[test]
    fn singleton_grid_is_valid() {
        let g = FrequencyGrid::new(500, 500, 100, 400, 400, 100).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(0), Some(FreqSetting::from_mhz(500, 400)));
        assert_eq!(g.min_setting(), g.max_setting());
    }
}
