//! Per-sample data records.
//!
//! The paper samples every workload at a fixed amount of *work* — 10 million
//! user-mode instructions — so that samples are comparable across frequency
//! settings. Two record types flow through the system:
//!
//! * [`SampleCharacteristics`] — frequency-*independent* properties of the
//!   work in a sample (instruction mix, miss rates, memory-level
//!   parallelism). Produced by the workload generator, consumed by the
//!   simulator.
//! * [`SampleMeasurement`] — frequency-*dependent* results of executing a
//!   sample at one [`crate::FreqSetting`] (time, CPU/memory energy, CPI).
//!   Produced by the simulator, consumed by every algorithm in
//!   `mcdvfs-core`.

use crate::units::{Joules, Seconds};

/// Fixed amount of work per sample: 10 million user-mode instructions,
/// matching the paper's sampling methodology.
pub const INSTRUCTIONS_PER_SAMPLE: u64 = 10_000_000;

/// Bytes transferred per DRAM access (one 64-byte cache line), used for
/// bandwidth accounting.
pub const BYTES_PER_DRAM_ACCESS: u64 = 64;

/// Frequency-independent characteristics of one fixed-work sample.
///
/// These are the knobs the synthetic workload generator scripts per phase.
/// All values describe the *work*, not any particular execution of it.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::SampleCharacteristics;
///
/// let s = SampleCharacteristics::new(0.9, 0.5);
/// assert!((s.base_cpi - 0.9).abs() < 1e-12);
/// assert_eq!(s.dram_accesses(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleCharacteristics {
    /// Core-bound cycles per instruction: the CPI the sample would achieve
    /// with an infinitely fast memory system. Dimensionless, typically
    /// 0.4–2.5 for the modelled out-of-order core.
    pub base_cpi: f64,
    /// Last-level-cache misses (DRAM accesses) per thousand instructions.
    pub mpki: f64,
    /// Fraction of DRAM accesses that are writes, in `[0, 1]`.
    pub write_frac: f64,
    /// DRAM row-buffer hit rate under the open-page policy, in `[0, 1]`.
    pub row_hit_rate: f64,
    /// Average memory-level parallelism: how many DRAM accesses overlap.
    /// `1.0` means fully serialized misses; higher values hide latency.
    pub mlp: f64,
    /// Fraction of each miss's latency the core cannot hide behind
    /// independent work, in `[0, 1]`. CPU-bound phases with deep reorder
    /// buffers have low exposure.
    pub stall_exposure: f64,
    /// Switching-activity factor for the dynamic-power model, in `[0, 1]`.
    pub activity_factor: f64,
}

impl SampleCharacteristics {
    /// Creates characteristics from the two dominant knobs, with neutral
    /// defaults for the rest (30% writes, 60% row hits, MLP 2, 70% exposure,
    /// activity 0.7).
    #[must_use]
    pub fn new(base_cpi: f64, mpki: f64) -> Self {
        Self {
            base_cpi,
            mpki,
            write_frac: 0.3,
            row_hit_rate: 0.6,
            mlp: 2.0,
            stall_exposure: 0.7,
            activity_factor: 0.7,
        }
    }

    /// Number of DRAM accesses performed by the sample.
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        (INSTRUCTIONS_PER_SAMPLE as f64 * self.mpki / 1000.0).round() as u64
    }

    /// Bytes moved to/from DRAM by the sample.
    #[must_use]
    pub fn dram_bytes(&self) -> u64 {
        self.dram_accesses() * BYTES_PER_DRAM_ACCESS
    }

    /// Returns `true` when every field is within its documented domain.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let unit = |v: f64| (0.0..=1.0).contains(&v);
        self.base_cpi > 0.0
            && self.base_cpi.is_finite()
            && self.mpki >= 0.0
            && self.mpki.is_finite()
            && unit(self.write_frac)
            && unit(self.row_hit_rate)
            && self.mlp >= 1.0
            && self.mlp.is_finite()
            && unit(self.stall_exposure)
            && unit(self.activity_factor)
    }
}

/// The result of executing one sample at one frequency setting.
///
/// This is what the paper's Gem5 runs record every 10 M user-mode
/// instructions: execution time plus CPU and DRAM energy, from which every
/// downstream metric (inefficiency, speedup, clusters) is derived.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::{Joules, SampleMeasurement, Seconds};
///
/// let m = SampleMeasurement {
///     time: Seconds::from_millis(12.0),
///     cpu_energy: Joules::from_millis(8.0),
///     mem_energy: Joules::from_millis(2.0),
///     cpi: 1.2,
/// };
/// assert_eq!(m.energy(), Joules::from_millis(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleMeasurement {
    /// Wall-clock execution time of the sample.
    pub time: Seconds,
    /// Energy consumed by the CPU (dynamic + background + leakage).
    pub cpu_energy: Joules,
    /// Energy consumed by the DRAM subsystem.
    pub mem_energy: Joules,
    /// Achieved cycles per instruction at this setting (core + stall).
    pub cpi: f64,
}

impl SampleMeasurement {
    /// Total system energy for the sample.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.cpu_energy + self.mem_energy
    }

    /// Average system power over the sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sample time is zero.
    #[must_use]
    pub fn power(&self) -> crate::Watts {
        debug_assert!(self.time.value() > 0.0, "sample time must be positive");
        self.energy() / self.time
    }

    /// Returns `true` when all fields are finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.time.is_finite()
            && self.time.value() > 0.0
            && self.cpu_energy.is_finite()
            && self.cpu_energy.value() >= 0.0
            && self.mem_energy.is_finite()
            && self.mem_energy.value() >= 0.0
            && self.cpi.is_finite()
            && self.cpi > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_access_count_follows_mpki() {
        let s = SampleCharacteristics::new(1.0, 2.0);
        assert_eq!(s.dram_accesses(), 20_000);
        assert_eq!(s.dram_bytes(), 20_000 * 64);
        let zero = SampleCharacteristics::new(1.0, 0.0);
        assert_eq!(zero.dram_accesses(), 0);
    }

    #[test]
    fn default_fields_are_valid() {
        assert!(SampleCharacteristics::new(0.8, 1.0).is_valid());
    }

    #[test]
    fn invalid_characteristics_detected() {
        let mut s = SampleCharacteristics::new(0.8, 1.0);
        s.base_cpi = 0.0;
        assert!(!s.is_valid());
        let mut s = SampleCharacteristics::new(0.8, 1.0);
        s.mpki = -1.0;
        assert!(!s.is_valid());
        let mut s = SampleCharacteristics::new(0.8, 1.0);
        s.row_hit_rate = 1.5;
        assert!(!s.is_valid());
        let mut s = SampleCharacteristics::new(0.8, 1.0);
        s.mlp = 0.5;
        assert!(!s.is_valid());
        let mut s = SampleCharacteristics::new(0.8, 1.0);
        s.base_cpi = f64::NAN;
        assert!(!s.is_valid());
    }

    #[test]
    fn measurement_energy_and_power() {
        let m = SampleMeasurement {
            time: Seconds::new(0.01),
            cpu_energy: Joules::new(0.004),
            mem_energy: Joules::new(0.001),
            cpi: 1.5,
        };
        assert_eq!(m.energy(), Joules::new(0.005));
        assert!((m.power().value() - 0.5).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn invalid_measurement_detected() {
        let good = SampleMeasurement {
            time: Seconds::new(0.01),
            cpu_energy: Joules::new(0.004),
            mem_energy: Joules::new(0.001),
            cpi: 1.5,
        };
        let mut m = good;
        m.time = Seconds::ZERO;
        assert!(!m.is_valid());
        let mut m = good;
        m.cpu_energy = Joules::new(-1.0);
        assert!(!m.is_valid());
        let mut m = good;
        m.cpi = f64::INFINITY;
        assert!(!m.is_valid());
    }
}
