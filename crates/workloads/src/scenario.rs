//! Device scenarios: a workload trace paired with per-interval context.
//!
//! Oracle governors replay a characterization grid with perfect knowledge;
//! an *online* policy instead reacts to what the device can actually see at
//! run time — remaining battery, die temperature, offered load, and the QoS
//! deadline granted to each interval. A [`Scenario`] bundles a seeded
//! synthetic workload ([`SampleTrace`]) with one [`ScenarioStep`] of that
//! context per sample, so policy replays are deterministic end to end.
//!
//! Three seeded scenarios ship, one per stress axis:
//!
//! * [`Scenario::battery_drain`] — the battery ramps from full to nearly
//!   empty while the working set grows; tests energy-envelope policies;
//! * [`Scenario::thermal_throttle`] — a compute-heavy trace with a hot
//!   mid-run temperature step; tests thermal clamping;
//! * [`Scenario::load_burst`] — offered load alternates between idle and
//!   bursts with tight burst deadlines; tests transition hysteresis.
//!
//! Deadlines are carried as *slack factors* rather than absolute seconds:
//! the environment replaying a scenario multiplies the slack by the
//! interval's execution time at the fastest setting, so the same scenario
//! is meaningful over any characterized trace.

use crate::phases::{Pattern, Phase, PhaseScript};
use crate::trace::SampleTrace;
use mcdvfs_types::SampleCharacteristics;

/// Per-interval device context visible to an online policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioStep {
    /// Remaining battery charge as a fraction of capacity, in `[0, 1]`.
    pub battery_fraction: f64,
    /// Die temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Offered utilisation in `[0, 1]` — how busy the device is asked to be.
    pub load: f64,
    /// Deadline slack factor (≥ 1): the interval deadline is this multiple
    /// of the interval's execution time at the fastest setting.
    pub deadline_slack: f64,
}

impl ScenarioStep {
    fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.battery_fraction)
            && self.temperature_c.is_finite()
            && (0.0..=1.0).contains(&self.load)
            && self.deadline_slack.is_finite()
            && self.deadline_slack >= 1.0
    }
}

/// A seeded workload trace plus one [`ScenarioStep`] per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    trace: SampleTrace,
    steps: Vec<ScenarioStep>,
}

/// Builds characteristics with every knob explicit (`write_frac` fixed at
/// the suite-wide 0.3).
fn chars(
    cpi: f64,
    mpki: f64,
    mlp: f64,
    row_hit: f64,
    exposure: f64,
    activity: f64,
) -> SampleCharacteristics {
    SampleCharacteristics {
        base_cpi: cpi,
        mpki,
        write_frac: 0.3,
        row_hit_rate: row_hit,
        mlp,
        stall_exposure: exposure,
        activity_factor: activity,
    }
}

impl Scenario {
    /// Names of the shipped scenarios, in presentation order.
    pub const NAMES: [&'static str; 3] = ["battery_drain", "thermal_throttle", "load_burst"];

    /// Samples per shipped scenario.
    pub const SAMPLES: usize = 48;

    /// Builds a custom scenario.
    ///
    /// # Panics
    ///
    /// Panics when `steps` is empty, its length differs from the trace
    /// length, or any step carries an out-of-range value.
    #[must_use]
    pub fn new(name: &str, trace: SampleTrace, steps: Vec<ScenarioStep>) -> Self {
        assert!(!steps.is_empty(), "a scenario needs at least one step");
        assert_eq!(
            steps.len(),
            trace.len(),
            "scenario steps must align 1:1 with trace samples"
        );
        for (i, step) in steps.iter().enumerate() {
            assert!(step.is_valid(), "invalid scenario step {i}: {step:?}");
        }
        Self {
            name: name.to_string(),
            trace,
            steps,
        }
    }

    /// Battery-drain ramp: charge falls linearly from full to 8% while the
    /// workload's working set grows, warming the die as charge drops.
    #[must_use]
    pub fn battery_drain() -> Self {
        let n = Self::SAMPLES;
        let script = PhaseScript::new(vec![
            Phase::constant(chars(0.9, 4.0, 2.0, 0.7, 0.6, 0.9), n / 3),
            Phase::patterned(
                chars(0.9, 4.0, 2.0, 0.7, 0.6, 0.9),
                n - n / 3,
                Pattern::Ramp {
                    cpi_scale: 1.4,
                    mpki_scale: 2.2,
                },
            ),
        ]);
        let trace = SampleTrace::new("battery_drain", script.render(0xBD01, 0.02));
        let steps = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let battery = 1.0 - 0.92 * t;
                ScenarioStep {
                    battery_fraction: battery,
                    temperature_c: 38.0 + 14.0 * (1.0 - battery),
                    load: 0.55,
                    deadline_slack: 2.0,
                }
            })
            .collect();
        Self::new("battery_drain", trace, steps)
    }

    /// Thermal-throttle step: a compute-heavy trace whose die temperature
    /// steps from 48 °C to 86 °C for the middle stretch, then cools to 72 °C.
    #[must_use]
    pub fn thermal_throttle() -> Self {
        let n = Self::SAMPLES;
        let script = PhaseScript::new(vec![Phase::patterned(
            chars(0.7, 1.5, 1.5, 0.8, 0.4, 1.0),
            n,
            Pattern::Alternate {
                cpi_scale: 1.15,
                mpki_scale: 1.5,
                period: 4,
            },
        )]);
        let trace = SampleTrace::new("thermal_throttle", script.render(0x7E01, 0.02));
        let steps = (0..n)
            .map(|i| {
                let temperature_c = if i < n / 3 {
                    48.0
                } else if i < 3 * n / 4 {
                    86.0
                } else {
                    72.0
                };
                ScenarioStep {
                    battery_fraction: 0.9 - 0.004 * i as f64,
                    temperature_c,
                    load: 0.65,
                    deadline_slack: 1.8,
                }
            })
            .collect();
        Self::new("thermal_throttle", trace, steps)
    }

    /// Load-burst: offered load alternates between near-idle and bursts
    /// every six samples, with tight deadlines during the bursts. The
    /// workload excursions coincide with the bursts.
    #[must_use]
    pub fn load_burst() -> Self {
        let n = Self::SAMPLES;
        const PERIOD: usize = 6;
        let script = PhaseScript::new(vec![Phase::patterned(
            chars(1.0, 6.0, 2.5, 0.65, 0.7, 0.85),
            n,
            Pattern::Alternate {
                cpi_scale: 1.3,
                mpki_scale: 2.5,
                period: PERIOD,
            },
        )]);
        let trace = SampleTrace::new("load_burst", script.render(0x10AD, 0.02));
        let steps = (0..n)
            .map(|i| {
                let burst = (i / PERIOD) % 2 == 1;
                let load = if burst { 0.95 } else { 0.25 };
                ScenarioStep {
                    battery_fraction: 0.7,
                    temperature_c: 50.0 + 12.0 * load,
                    load,
                    deadline_slack: if burst { 1.35 } else { 2.5 },
                }
            })
            .collect();
        Self::new("load_burst", trace, steps)
    }

    /// Every shipped scenario, in [`Self::NAMES`] order.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        vec![
            Self::battery_drain(),
            Self::thermal_throttle(),
            Self::load_burst(),
        ]
    }

    /// Builds a shipped scenario by name, or `None` for an unknown name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        match name {
            "battery_drain" => Some(Self::battery_drain()),
            "thermal_throttle" => Some(Self::thermal_throttle()),
            "load_burst" => Some(Self::load_burst()),
            _ => None,
        }
    }

    /// Scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's workload trace.
    #[must_use]
    pub fn trace(&self) -> &SampleTrace {
        &self.trace
    }

    /// Context steps, one per trace sample.
    #[must_use]
    pub fn steps(&self) -> &[ScenarioStep] {
        &self.steps
    }

    /// Number of samples (and steps).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always `false`: [`Scenario::new`] rejects empty scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Context for interval `i`, cycling when the scenario is replayed over
    /// a trace longer than itself.
    #[must_use]
    pub fn context(&self, i: usize) -> &ScenarioStep {
        &self.steps[i % self.steps.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_scenarios_are_aligned_and_valid() {
        for scenario in Scenario::all() {
            assert_eq!(scenario.len(), Scenario::SAMPLES);
            assert_eq!(scenario.trace().len(), scenario.len());
            assert!(!scenario.is_empty());
            for step in scenario.steps() {
                assert!(step.is_valid(), "{}: {step:?}", scenario.name());
            }
        }
    }

    #[test]
    fn by_name_round_trips_every_shipped_name() {
        for name in Scenario::NAMES {
            let s = Scenario::by_name(name).expect("shipped scenario");
            assert_eq!(s.name(), name);
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn scenarios_are_deterministic() {
        assert_eq!(Scenario::battery_drain(), Scenario::battery_drain());
        assert_eq!(Scenario::load_burst(), Scenario::load_burst());
        assert_eq!(Scenario::thermal_throttle(), Scenario::thermal_throttle());
    }

    #[test]
    fn battery_drain_ramps_down() {
        let s = Scenario::battery_drain();
        assert!(s.steps()[0].battery_fraction > 0.99);
        let last = s.steps()[s.len() - 1].battery_fraction;
        assert!((last - 0.08).abs() < 1e-9, "got {last}");
    }

    #[test]
    fn thermal_throttle_steps_hot_then_cools() {
        let s = Scenario::thermal_throttle();
        assert!(s.steps()[0].temperature_c < 60.0);
        assert!(s.steps()[s.len() / 2].temperature_c > 80.0);
        assert!(s.steps()[s.len() - 1].temperature_c < 80.0);
    }

    #[test]
    fn load_burst_alternates_load_and_slack() {
        let s = Scenario::load_burst();
        assert!(s.steps()[0].load < 0.5);
        assert!(s.steps()[6].load > 0.9);
        assert!(s.steps()[6].deadline_slack < s.steps()[0].deadline_slack);
    }

    #[test]
    fn context_cycles_past_the_end() {
        let s = Scenario::load_burst();
        assert_eq!(s.context(s.len() + 3), s.context(3));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_steps_panic() {
        let base = Scenario::load_burst();
        let mut steps = base.steps().to_vec();
        steps.pop();
        let _ = Scenario::new("bad", base.trace().clone(), steps);
    }
}
