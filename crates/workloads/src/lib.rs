//! Synthetic SPEC CPU2006-like workloads for the `mcdvfs` workspace.
//!
//! The paper drives its characterization with 12 integer and 9 floating
//! point SPEC CPU2006 benchmarks, sampled every 10 M user-mode
//! instructions. Running SPEC itself requires the suite and a full-system
//! simulator; this crate substitutes deterministic synthetic *sample
//! traces* — sequences of [`SampleCharacteristics`] — whose phase structure
//! mimics the per-benchmark behaviour the paper describes and plots
//! (bzip2's CPU-bound steadiness, gobmk's rapidly alternating phases,
//! lbm's long memory-steady regions, gcc's segmented phases, …).
//!
//! The phase DSL ([`Phase`], [`Pattern`], [`PhaseScript`]) is public so
//! tests and downstream studies can script their own workloads.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_workloads::Benchmark;
//!
//! let trace = Benchmark::Gobmk.trace();
//! assert_eq!(trace.len(), 50);
//! // gobmk alternates CPU- and memory-intensive samples.
//! let stats = trace.stats();
//! assert!(stats.mpki_max > 4.0 * stats.mpki_min.max(0.5));
//! ```
//!
//! [`SampleCharacteristics`]: mcdvfs_types::SampleCharacteristics

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod io;
mod phases;
mod scenario;
mod spec;
mod stats;
mod trace;

pub use io::{trace_from_text, trace_to_text, ParseTraceError};
pub use phases::{Pattern, Phase, PhaseScript};
pub use scenario::{Scenario, ScenarioStep};
pub use spec::{Benchmark, ParseBenchmarkError};
pub use stats::TraceStats;
pub use trace::SampleTrace;
