//! Phase scripting DSL for synthetic workloads.
//!
//! A workload is a [`PhaseScript`]: an ordered list of [`Phase`]s, each
//! holding baseline [`SampleCharacteristics`], a duration in samples, and a
//! [`Pattern`] describing how CPI/MPKI evolve *within* the phase. Scripts
//! are rendered to concrete traces by [`PhaseScript::render`], which adds
//! seeded multiplicative jitter so consecutive samples are realistic but
//! reproducible.

use mcdvfs_types::{SampleCharacteristics, SplitMix64};

/// How CPI and MPKI evolve across the samples of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Pattern {
    /// Flat at the phase baseline.
    Constant,
    /// Alternates between the baseline and a scaled excursion every
    /// `period` samples — gobmk-style rapidly changing behaviour.
    Alternate {
        /// CPI multiplier during the excursion half.
        cpi_scale: f64,
        /// MPKI multiplier during the excursion half.
        mpki_scale: f64,
        /// Samples per half-cycle (≥ 1).
        period: usize,
    },
    /// Linearly interpolates the baseline toward scaled endpoints across
    /// the phase — gradual working-set growth.
    Ramp {
        /// CPI multiplier reached at the end of the phase.
        cpi_scale: f64,
        /// MPKI multiplier reached at the end of the phase.
        mpki_scale: f64,
    },
    /// Baseline with sparse spikes: every `period`-th sample has its MPKI
    /// multiplied — periodic garbage-collection/table-rebuild behaviour.
    Spike {
        /// MPKI multiplier on spike samples.
        mpki_scale: f64,
        /// Spike spacing in samples (≥ 1).
        period: usize,
    },
}

/// One phase of a workload: a baseline, a duration and a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Baseline characteristics for every sample in the phase.
    pub base: SampleCharacteristics,
    /// Number of samples the phase lasts.
    pub samples: usize,
    /// Evolution within the phase.
    pub pattern: Pattern,
}

impl Phase {
    /// Creates a constant phase of `samples` samples.
    #[must_use]
    pub fn constant(base: SampleCharacteristics, samples: usize) -> Self {
        Self {
            base,
            samples,
            pattern: Pattern::Constant,
        }
    }

    /// Creates a phase with an explicit pattern.
    #[must_use]
    pub fn patterned(base: SampleCharacteristics, samples: usize, pattern: Pattern) -> Self {
        Self {
            base,
            samples,
            pattern,
        }
    }

    /// Characteristics of sample `i` (0-based within the phase), before
    /// jitter.
    fn sample(&self, i: usize) -> SampleCharacteristics {
        let mut c = self.base;
        match self.pattern {
            Pattern::Constant => {}
            Pattern::Alternate {
                cpi_scale,
                mpki_scale,
                period,
            } => {
                let period = period.max(1);
                if (i / period) % 2 == 1 {
                    c.base_cpi *= cpi_scale;
                    c.mpki *= mpki_scale;
                }
            }
            Pattern::Ramp {
                cpi_scale,
                mpki_scale,
            } => {
                let t = if self.samples > 1 {
                    i as f64 / (self.samples - 1) as f64
                } else {
                    0.0
                };
                c.base_cpi *= 1.0 + (cpi_scale - 1.0) * t;
                c.mpki *= 1.0 + (mpki_scale - 1.0) * t;
            }
            Pattern::Spike { mpki_scale, period } => {
                let period = period.max(1);
                if i % period == period - 1 {
                    c.mpki *= mpki_scale;
                }
            }
        }
        c
    }
}

/// An ordered list of phases rendered into a concrete sample trace.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::SampleCharacteristics;
/// use mcdvfs_workloads::{Pattern, Phase, PhaseScript};
///
/// let script = PhaseScript::new(vec![
///     Phase::constant(SampleCharacteristics::new(0.8, 0.5), 10),
///     Phase::patterned(
///         SampleCharacteristics::new(1.0, 5.0),
///         10,
///         Pattern::Alternate { cpi_scale: 1.5, mpki_scale: 3.0, period: 2 },
///     ),
/// ]);
/// let samples = script.render(42, 0.02);
/// assert_eq!(samples.len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseScript {
    phases: Vec<Phase>,
}

impl PhaseScript {
    /// Creates a script from phases in execution order.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        Self { phases }
    }

    /// Total trace length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.iter().map(|p| p.samples).sum()
    }

    /// `true` when the script contains no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The phases of this script.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Ratio of MPKI jitter to CPI jitter: cache-miss rates are far noisier
    /// sample-to-sample than instruction mix in real workloads, and that
    /// variability is what wobbles the optimal setting along the memory
    /// axis between consecutive samples.
    pub const MPKI_JITTER_RATIO: f64 = 4.0;

    /// Renders the script into per-sample characteristics with
    /// multiplicative jitter, seeded deterministically by `seed`. CPI
    /// receives relative jitter of magnitude `jitter` (e.g. `0.02` for
    /// ±2%); MPKI receives [`Self::MPKI_JITTER_RATIO`] times as much.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or ≥ 0.2 (MPKI jitter would reach
    /// ±80%, which is no longer jitter).
    #[must_use]
    pub fn render(&self, seed: u64, jitter: f64) -> Vec<SampleCharacteristics> {
        assert!((0.0..0.2).contains(&jitter), "jitter must be in [0, 0.2)");
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::with_capacity(self.len());
        for phase in &self.phases {
            for i in 0..phase.samples {
                let mut c = phase.sample(i);
                if jitter > 0.0 {
                    let mpki_jitter = jitter * Self::MPKI_JITTER_RATIO;
                    c.base_cpi *= 1.0 + rng.range_f64(-jitter, jitter);
                    c.mpki = (c.mpki * (1.0 + rng.range_f64(-mpki_jitter, mpki_jitter))).max(0.0);
                }
                debug_assert!(c.is_valid(), "rendered sample must stay valid: {c:?}");
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SampleCharacteristics {
        SampleCharacteristics::new(1.0, 10.0)
    }

    #[test]
    fn constant_phase_is_flat_without_jitter() {
        let script = PhaseScript::new(vec![Phase::constant(base(), 5)]);
        let samples = script.render(1, 0.0);
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert!((s.base_cpi - 1.0).abs() < 1e-12);
            assert!((s.mpki - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn alternate_pattern_toggles_every_period() {
        let script = PhaseScript::new(vec![Phase::patterned(
            base(),
            8,
            Pattern::Alternate {
                cpi_scale: 2.0,
                mpki_scale: 0.5,
                period: 2,
            },
        )]);
        let s = script.render(1, 0.0);
        // Samples 0-1 baseline, 2-3 excursion, 4-5 baseline, 6-7 excursion.
        assert!((s[0].base_cpi - 1.0).abs() < 1e-12);
        assert!((s[2].base_cpi - 2.0).abs() < 1e-12);
        assert!((s[2].mpki - 5.0).abs() < 1e-12);
        assert!((s[4].base_cpi - 1.0).abs() < 1e-12);
        assert!((s[6].base_cpi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_pattern_interpolates_endpoints() {
        let script = PhaseScript::new(vec![Phase::patterned(
            base(),
            11,
            Pattern::Ramp {
                cpi_scale: 3.0,
                mpki_scale: 0.1,
            },
        )]);
        let s = script.render(1, 0.0);
        assert!((s[0].base_cpi - 1.0).abs() < 1e-12);
        assert!((s[10].base_cpi - 3.0).abs() < 1e-12);
        assert!((s[5].base_cpi - 2.0).abs() < 1e-12);
        assert!((s[10].mpki - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spike_pattern_hits_every_period() {
        let script = PhaseScript::new(vec![Phase::patterned(
            base(),
            9,
            Pattern::Spike {
                mpki_scale: 4.0,
                period: 3,
            },
        )]);
        let s = script.render(1, 0.0);
        for (i, sample) in s.iter().enumerate() {
            let expected = if i % 3 == 2 { 40.0 } else { 10.0 };
            assert!((sample.mpki - expected).abs() < 1e-12, "sample {i}");
        }
    }

    #[test]
    fn render_is_deterministic_per_seed() {
        let script = PhaseScript::new(vec![Phase::constant(base(), 20)]);
        assert_eq!(script.render(7, 0.05), script.render(7, 0.05));
        assert_ne!(script.render(7, 0.05), script.render(8, 0.05));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let script = PhaseScript::new(vec![Phase::constant(base(), 200)]);
        for s in script.render(3, 0.02) {
            assert!((s.base_cpi - 1.0).abs() <= 0.02 + 1e-9);
            let mpki_bound = 10.0 * 0.02 * PhaseScript::MPKI_JITTER_RATIO;
            assert!((s.mpki - 10.0).abs() <= mpki_bound + 1e-9);
        }
    }

    #[test]
    fn multi_phase_concatenates_in_order() {
        let a = SampleCharacteristics::new(0.5, 1.0);
        let b = SampleCharacteristics::new(2.0, 20.0);
        let script = PhaseScript::new(vec![Phase::constant(a, 3), Phase::constant(b, 2)]);
        let s = script.render(1, 0.0);
        assert_eq!(s.len(), 5);
        assert!((s[2].base_cpi - 0.5).abs() < 1e-12);
        assert!((s[3].base_cpi - 2.0).abs() < 1e-12);
        assert_eq!(script.len(), 5);
        assert!(!script.is_empty());
        assert_eq!(script.phases().len(), 2);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn invalid_jitter_panics() {
        let script = PhaseScript::new(vec![Phase::constant(base(), 1)]);
        let _ = script.render(1, 0.25);
    }

    #[test]
    fn empty_script_renders_empty() {
        let script = PhaseScript::new(vec![]);
        assert!(script.is_empty());
        assert!(script.render(1, 0.01).is_empty());
    }

    #[test]
    fn single_sample_ramp_does_not_divide_by_zero() {
        let script = PhaseScript::new(vec![Phase::patterned(
            base(),
            1,
            Pattern::Ramp {
                cpi_scale: 2.0,
                mpki_scale: 2.0,
            },
        )]);
        let s = script.render(1, 0.0);
        assert!(
            (s[0].base_cpi - 1.0).abs() < 1e-12,
            "ramp starts at baseline"
        );
    }
}
