//! SPEC CPU2006-like benchmark profiles.
//!
//! One profile per benchmark the paper simulates: 12 integer and 9 floating
//! point members of SPEC CPU2006. The six benchmarks the paper's figures
//! feature (bzip2, gcc, gobmk, lbm, libquantum, milc) have hand-scripted
//! phase structure matching the behaviour described in the text:
//!
//! * **bzip2** — CPU bound; performance insensitive to memory frequency;
//!   covered by a single stable region at high inefficiency budgets;
//! * **gobmk** — balanced, *rapidly changing* phases; optimal settings move
//!   every sample; stable regions stay short at any threshold;
//! * **gcc** — segmented phases with step changes; transition count drops
//!   sharply from 3% to 5% cluster thresholds;
//! * **lbm** — steady streaming memory workload; few transitions even at
//!   tight thresholds;
//! * **libquantum** — streaming, stable, memory sensitive;
//! * **milc** — largely CPU intensive with occasional memory phases.
//!
//! The remaining 15 profiles are plausible single- or two-phase traces so
//! suite-wide sweeps exercise a realistic population.

use crate::phases::{Pattern, Phase, PhaseScript};
use crate::trace::SampleTrace;
use mcdvfs_types::SampleCharacteristics;
use std::fmt;

/// Builds characteristics with every knob explicit.
fn chars(
    cpi: f64,
    mpki: f64,
    mlp: f64,
    row_hit: f64,
    exposure: f64,
    activity: f64,
) -> SampleCharacteristics {
    SampleCharacteristics {
        base_cpi: cpi,
        mpki,
        write_frac: 0.3,
        row_hit_rate: row_hit,
        mlp,
        stall_exposure: exposure,
        activity_factor: activity,
    }
}

/// The SPEC CPU2006 benchmarks the paper simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    // 12 integer benchmarks.
    Perlbench,
    Bzip2,
    Gcc,
    Mcf,
    Gobmk,
    Hmmer,
    Sjeng,
    Libquantum,
    H264ref,
    Omnetpp,
    Astar,
    Xalancbmk,
    // 9 floating point benchmarks.
    Bwaves,
    Gamess,
    Milc,
    Zeusmp,
    Gromacs,
    Leslie3d,
    Namd,
    Soplex,
    Lbm,
}

impl Benchmark {
    /// Every modelled benchmark: 12 integer then 9 floating point.
    #[must_use]
    pub fn all() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            Perlbench, Bzip2, Gcc, Mcf, Gobmk, Hmmer, Sjeng, Libquantum, H264ref, Omnetpp, Astar,
            Xalancbmk, Bwaves, Gamess, Milc, Zeusmp, Gromacs, Leslie3d, Namd, Soplex, Lbm,
        ]
    }

    /// The six benchmarks featured in the paper's figures, in the order the
    /// figure x-axes list them.
    #[must_use]
    pub fn featured() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![Bzip2, Gcc, Gobmk, Lbm, Libquantum, Milc]
    }

    /// SPEC-style lowercase name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        use Benchmark::*;
        match self {
            Perlbench => "perlbench",
            Bzip2 => "bzip2",
            Gcc => "gcc",
            Mcf => "mcf",
            Gobmk => "gobmk",
            Hmmer => "hmmer",
            Sjeng => "sjeng",
            Libquantum => "libq.",
            H264ref => "h264ref",
            Omnetpp => "omnetpp",
            Astar => "astar",
            Xalancbmk => "xalancbmk",
            Bwaves => "bwaves",
            Gamess => "gamess",
            Milc => "milc",
            Zeusmp => "zeusmp",
            Gromacs => "gromacs",
            Leslie3d => "leslie3d",
            Namd => "namd",
            Soplex => "soplex",
            Lbm => "lbm",
        }
    }

    /// `true` for the floating point half of the suite.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        use Benchmark::*;
        matches!(
            self,
            Bwaves | Gamess | Milc | Zeusmp | Gromacs | Leslie3d | Namd | Soplex | Lbm
        )
    }

    /// Deterministic per-benchmark seed for trace rendering.
    fn seed(&self) -> u64 {
        0xD5F5 ^ ((Benchmark::all().iter().position(|b| b == self).unwrap() as u64 + 1) * 0x9E37)
    }

    /// The benchmark's phase script.
    #[must_use]
    pub fn script(&self) -> PhaseScript {
        use Benchmark::*;
        match self {
            // ---- The six featured profiles -------------------------------
            Bzip2 => PhaseScript::new(vec![
                // Compression: CPU bound, tiny miss traffic.
                Phase::constant(chars(0.72, 0.6, 2.0, 0.55, 0.6, 0.9), 14),
                // Sorting-heavy middle with slightly more misses.
                Phase::constant(chars(0.82, 1.1, 2.0, 0.5, 0.6, 0.88), 12),
                // Decompression check: back to CPU bound.
                Phase::constant(chars(0.68, 0.5, 2.0, 0.55, 0.6, 0.9), 14),
            ]),
            Gobmk => PhaseScript::new(vec![
                // Game-tree search alternates pattern evaluation (CPU) with
                // board scans (memory) every couple of samples.
                Phase::patterned(
                    chars(0.7, 2.5, 1.5, 0.45, 0.85, 0.8),
                    16,
                    Pattern::Alternate {
                        cpi_scale: 1.2,
                        mpki_scale: 4.5,
                        period: 2,
                    },
                ),
                // Opening-book lookups: sparse heavy-miss spikes.
                Phase::patterned(
                    chars(0.85, 2.5, 1.5, 0.4, 0.85, 0.78),
                    12,
                    Pattern::Spike {
                        mpki_scale: 14.0,
                        period: 3,
                    },
                ),
                // Endgame: faster alternation, deeper excursions.
                Phase::patterned(
                    chars(0.65, 1.2, 1.5, 0.45, 0.85, 0.8),
                    22,
                    Pattern::Alternate {
                        cpi_scale: 1.5,
                        mpki_scale: 24.0,
                        period: 3,
                    },
                ),
            ]),
            Gcc => PhaseScript::new(vec![
                // Parse: CPU with modest misses.
                Phase::constant(chars(0.8, 1.2, 1.8, 0.5, 0.7, 0.85), 34),
                // IR build: pointer heavy.
                Phase::constant(chars(1.0, 12.0, 1.4, 0.35, 0.85, 0.75), 30),
                // Optimization passes: alternates dataflow scans with
                // transformation — mild contrast, so clusters with a loose
                // threshold can ride across pass boundaries.
                Phase::patterned(
                    chars(0.85, 5.3, 1.5, 0.45, 0.85, 0.8),
                    46,
                    Pattern::Alternate {
                        cpi_scale: 1.02,
                        mpki_scale: 1.55,
                        period: 5,
                    },
                ),
                // Register allocation: memory intensive ramp.
                Phase::patterned(
                    chars(1.1, 14.0, 1.4, 0.35, 0.85, 0.75),
                    44,
                    Pattern::Ramp {
                        cpi_scale: 1.2,
                        mpki_scale: 1.8,
                    },
                ),
                // Emit: back to CPU bound.
                Phase::constant(chars(0.75, 1.0, 1.8, 0.5, 0.7, 0.85), 46),
            ]),
            Lbm => PhaseScript::new(vec![
                // Lattice-Boltzmann streaming sweep: row-friendly but
                // stall-dominated, extremely steady.
                Phase::constant(chars(0.55, 22.0, 2.0, 0.85, 0.85, 0.7), 80),
                // Collision step slightly less bandwidth hungry.
                Phase::constant(chars(0.6, 19.0, 2.0, 0.85, 0.85, 0.72), 80),
            ]),
            Libquantum => PhaseScript::new(vec![
                // Quantum register simulation: long streaming loops.
                Phase::constant(chars(0.5, 16.0, 2.5, 0.9, 0.8, 0.75), 30),
                Phase::constant(chars(0.52, 18.0, 2.5, 0.9, 0.8, 0.75), 30),
            ]),
            Milc => PhaseScript::new(vec![
                // SU(3) computation: mostly CPU work...
                Phase::constant(chars(0.85, 2.2, 1.8, 0.55, 0.7, 0.85), 45),
                // ...with a staggered-fermion memory phase.
                Phase::constant(chars(1.0, 24.0, 2.0, 0.6, 0.85, 0.72), 18),
                Phase::constant(chars(0.82, 2.0, 1.8, 0.55, 0.7, 0.85), 50),
                // Second, shorter memory phase.
                Phase::constant(chars(1.05, 28.0, 2.0, 0.6, 0.85, 0.72), 12),
                Phase::constant(chars(0.88, 2.6, 1.8, 0.55, 0.7, 0.85), 50),
            ]),
            // ---- The rest of the suite -----------------------------------
            Perlbench => PhaseScript::new(vec![
                Phase::constant(chars(0.9, 1.5, 1.8, 0.5, 0.7, 0.85), 40),
                Phase::patterned(
                    chars(1.0, 3.0, 1.6, 0.45, 0.7, 0.8),
                    30,
                    Pattern::Spike {
                        mpki_scale: 4.0,
                        period: 6,
                    },
                ),
            ]),
            Mcf => PhaseScript::new(vec![
                // Pointer chasing over a huge graph: the suite's most
                // latency-bound member.
                Phase::constant(chars(1.4, 32.0, 1.1, 0.2, 0.9, 0.6), 60),
            ]),
            Hmmer => PhaseScript::new(vec![Phase::constant(
                chars(0.6, 0.8, 2.0, 0.55, 0.6, 0.92),
                45,
            )]),
            Sjeng => PhaseScript::new(vec![Phase::patterned(
                chars(0.75, 1.2, 1.7, 0.45, 0.7, 0.85),
                50,
                Pattern::Alternate {
                    cpi_scale: 1.4,
                    mpki_scale: 2.5,
                    period: 4,
                },
            )]),
            H264ref => PhaseScript::new(vec![
                Phase::constant(chars(0.65, 1.8, 2.2, 0.6, 0.65, 0.9), 35),
                Phase::constant(chars(0.7, 2.4, 2.2, 0.6, 0.65, 0.9), 35),
            ]),
            Omnetpp => PhaseScript::new(vec![Phase::constant(
                chars(1.1, 12.0, 1.3, 0.3, 0.85, 0.7),
                55,
            )]),
            Astar => PhaseScript::new(vec![Phase::patterned(
                chars(1.0, 6.0, 1.4, 0.4, 0.8, 0.75),
                50,
                Pattern::Ramp {
                    cpi_scale: 1.4,
                    mpki_scale: 2.0,
                },
            )]),
            Xalancbmk => PhaseScript::new(vec![Phase::patterned(
                chars(0.95, 5.0, 1.5, 0.4, 0.75, 0.78),
                60,
                Pattern::Alternate {
                    cpi_scale: 1.3,
                    mpki_scale: 2.2,
                    period: 7,
                },
            )]),
            Bwaves => PhaseScript::new(vec![Phase::constant(
                chars(0.7, 15.0, 3.5, 0.8, 0.75, 0.75),
                70,
            )]),
            Gamess => PhaseScript::new(vec![Phase::constant(
                chars(0.55, 0.4, 2.0, 0.55, 0.6, 0.95),
                65,
            )]),
            Zeusmp => PhaseScript::new(vec![
                Phase::constant(chars(0.75, 8.0, 3.0, 0.7, 0.7, 0.8), 40),
                Phase::constant(chars(0.8, 10.0, 3.0, 0.7, 0.7, 0.8), 40),
            ]),
            Gromacs => PhaseScript::new(vec![Phase::constant(
                chars(0.6, 1.5, 2.0, 0.55, 0.65, 0.9),
                55,
            )]),
            Leslie3d => PhaseScript::new(vec![Phase::constant(
                chars(0.72, 13.0, 3.2, 0.75, 0.75, 0.77),
                60,
            )]),
            Namd => PhaseScript::new(vec![Phase::constant(
                chars(0.58, 0.9, 2.0, 0.55, 0.6, 0.93),
                60,
            )]),
            Soplex => PhaseScript::new(vec![Phase::patterned(
                chars(1.0, 9.0, 1.5, 0.4, 0.8, 0.75),
                55,
                Pattern::Spike {
                    mpki_scale: 2.5,
                    period: 8,
                },
            )]),
        }
    }

    /// Renders the benchmark's trace with its canonical seed and a ±1.5%
    /// sample jitter (the measurement noise the paper's 0.5% tie-break is
    /// designed to filter is modelled downstream, not here).
    #[must_use]
    pub fn trace(&self) -> SampleTrace {
        self.trace_with(self.seed(), 0.015)
    }

    /// Renders the trace with an explicit seed and jitter, for sensitivity
    /// studies.
    #[must_use]
    pub fn trace_with(&self, seed: u64, jitter: f64) -> SampleTrace {
        SampleTrace::new(self.name(), self.script().render(seed, jitter))
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    /// The unrecognized name.
    pub name: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?}", self.name)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl std::str::FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    /// Parses a SPEC-style name (`"gobmk"`, `"libq."` or `"libquantum"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        Benchmark::all()
            .into_iter()
            .find(|b| b.name() == needle || (needle == "libquantum" && *b == Benchmark::Libquantum))
            .ok_or(ParseBenchmarkError {
                name: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_12_int_and_9_fp() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 21);
        assert_eq!(all.iter().filter(|b| !b.is_fp()).count(), 12);
        assert_eq!(all.iter().filter(|b| b.is_fp()).count(), 9);
    }

    #[test]
    fn featured_six_match_figure_axes() {
        let names: Vec<_> = Benchmark::featured().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["bzip2", "gcc", "gobmk", "lbm", "libq.", "milc"]);
    }

    #[test]
    fn trace_lengths_match_figures() {
        assert_eq!(
            Benchmark::Gobmk.trace().len(),
            50,
            "fig 3/4 span 50 samples"
        );
        assert_eq!(Benchmark::Lbm.trace().len(), 160, "fig 6 spans 160 samples");
        assert_eq!(Benchmark::Gcc.trace().len(), 200, "fig 7 spans 200 samples");
        assert_eq!(
            Benchmark::Milc.trace().len(),
            175,
            "fig 5 spans >170 samples"
        );
        assert_eq!(Benchmark::Bzip2.trace().len(), 40);
    }

    #[test]
    fn traces_are_deterministic() {
        for b in Benchmark::all() {
            assert_eq!(b.trace(), b.trace(), "{b}");
        }
    }

    #[test]
    fn every_trace_is_valid_and_nonempty() {
        for b in Benchmark::all() {
            let t = b.trace();
            assert!(!t.is_empty(), "{b}");
            for s in t.iter() {
                assert!(s.is_valid(), "{b}: {s:?}");
            }
        }
    }

    #[test]
    fn bzip2_is_cpu_bound() {
        let stats = Benchmark::Bzip2.trace().stats();
        assert!(stats.mpki_mean < 1.5, "bzip2 mpki {}", stats.mpki_mean);
        assert!(stats.cpi_mean < 1.0);
    }

    #[test]
    fn lbm_is_memory_bound_and_steady() {
        let stats = Benchmark::Lbm.trace().stats();
        assert!(stats.mpki_mean > 15.0, "lbm mpki {}", stats.mpki_mean);
        assert!(
            stats.mpki_cv() < 0.15,
            "lbm must be steady, cv {}",
            stats.mpki_cv()
        );
    }

    #[test]
    fn gobmk_changes_phases_rapidly() {
        let stats = Benchmark::Gobmk.trace().stats();
        assert!(
            stats.phase_changes > 15,
            "gobmk phase changes {}",
            stats.phase_changes
        );
    }

    #[test]
    fn gobmk_varies_more_than_lbm() {
        let g = Benchmark::Gobmk.trace().stats();
        let l = Benchmark::Lbm.trace().stats();
        assert!(g.mpki_cv() > 4.0 * l.mpki_cv());
    }

    #[test]
    fn milc_is_mostly_cpu_with_memory_phases() {
        let t = Benchmark::Milc.trace();
        let heavy = t.iter().filter(|s| s.mpki > 10.0).count();
        let frac = heavy as f64 / t.len() as f64;
        assert!(
            (0.1..0.3).contains(&frac),
            "milc memory-phase fraction {frac}"
        );
    }

    #[test]
    fn mcf_is_the_most_latency_bound() {
        let mcf = Benchmark::Mcf.trace().stats();
        for b in Benchmark::all() {
            if b != Benchmark::Mcf {
                assert!(mcf.mpki_mean >= b.trace().stats().mpki_mean, "{b}");
            }
        }
    }

    #[test]
    fn custom_seed_changes_jittered_trace() {
        let a = Benchmark::Gcc.trace_with(1, 0.02);
        let b = Benchmark::Gcc.trace_with(2, 0.02);
        assert_ne!(a, b);
        let c = Benchmark::Gcc.trace_with(1, 0.0);
        let d = Benchmark::Gcc.trace_with(2, 0.0);
        assert_eq!(c, d, "zero jitter erases seed dependence");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Libquantum.to_string(), "libq.");
    }

    #[test]
    fn from_str_round_trips_every_name() {
        for b in Benchmark::all() {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
        }
        assert_eq!(
            "libquantum".parse::<Benchmark>().unwrap(),
            Benchmark::Libquantum
        );
        assert_eq!(" GOBMK ".parse::<Benchmark>().unwrap(), Benchmark::Gobmk);
        let err = "doom".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("doom"));
    }
}
