//! Plain-text trace serialization.
//!
//! The offline-analysis deployment story (paper Section VII) ships
//! profiling artifacts alongside applications. Traces use a simple
//! line-oriented format so artifacts stay diffable and toolable without a
//! serialization dependency:
//!
//! ```text
//! # mcdvfs trace v1: gobmk
//! # base_cpi mpki write_frac row_hit_rate mlp stall_exposure activity_factor
//! 0.700 2.500 0.300 0.450 1.500 0.850 0.800
//! ...
//! ```

use crate::trace::SampleTrace;
use mcdvfs_types::SampleCharacteristics;
use std::fmt;
use std::fmt::Write as _;

/// Magic header identifying the format and version.
const MAGIC: &str = "# mcdvfs trace v1: ";

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes a trace to the v1 text format.
///
/// # Examples
///
/// ```
/// use mcdvfs_workloads::{trace_to_text, trace_from_text, Benchmark};
///
/// let trace = Benchmark::Lbm.trace().window(0, 4);
/// let text = trace_to_text(&trace);
/// let parsed = trace_from_text(&text).unwrap();
/// assert_eq!(parsed.name(), "lbm");
/// assert_eq!(parsed.len(), 4);
/// ```
#[must_use]
pub fn trace_to_text(trace: &SampleTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}{}", trace.name());
    let _ = writeln!(
        out,
        "# base_cpi mpki write_frac row_hit_rate mlp stall_exposure activity_factor"
    );
    for s in trace.iter() {
        let _ = writeln!(
            out,
            "{:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}",
            s.base_cpi,
            s.mpki,
            s.write_frac,
            s.row_hit_rate,
            s.mlp,
            s.stall_exposure,
            s.activity_factor
        );
    }
    out
}

/// Parses the v1 text format back into a trace.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on a missing/foreign header, malformed
/// rows, or out-of-domain values.
pub fn trace_from_text(text: &str) -> Result<SampleTrace, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseTraceError {
        line: 1,
        reason: "empty input".into(),
    })?;
    let name = header.strip_prefix(MAGIC).ok_or_else(|| ParseTraceError {
        line: 1,
        reason: format!("missing magic header {MAGIC:?}"),
    })?;
    if name.trim().is_empty() {
        return Err(ParseTraceError {
            line: 1,
            reason: "trace name is empty".into(),
        });
    }

    let mut samples = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<f64> = line
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>().map_err(|_| ParseTraceError {
                    line: line_no,
                    reason: format!("not a number: {t:?}"),
                })
            })
            .collect::<Result<_, _>>()?;
        if fields.len() != 7 {
            return Err(ParseTraceError {
                line: line_no,
                reason: format!("expected 7 fields, found {}", fields.len()),
            });
        }
        let chars = SampleCharacteristics {
            base_cpi: fields[0],
            mpki: fields[1],
            write_frac: fields[2],
            row_hit_rate: fields[3],
            mlp: fields[4],
            stall_exposure: fields[5],
            activity_factor: fields[6],
        };
        if !chars.is_valid() {
            return Err(ParseTraceError {
                line: line_no,
                reason: format!("sample out of domain: {chars:?}"),
            });
        }
        samples.push(chars);
    }
    if samples.is_empty() {
        return Err(ParseTraceError {
            line: text.lines().count().max(1),
            reason: "trace contains no samples".into(),
        });
    }
    Ok(SampleTrace::new(name.trim(), samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;

    #[test]
    fn round_trip_preserves_samples_to_format_precision() {
        let original = Benchmark::Gobmk.trace();
        let parsed = trace_from_text(&trace_to_text(&original)).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(parsed.iter()) {
            assert!((a.base_cpi - b.base_cpi).abs() < 1e-6);
            assert!((a.mpki - b.mpki).abs() < 1e-6);
            assert!((a.mlp - b.mlp).abs() < 1e-6);
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = trace_from_text("1 2 3 4 5 6 7\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("magic"));
    }

    #[test]
    fn malformed_rows_report_their_line() {
        let text = format!("{MAGIC}x\n0.5 1 0.3 0.5 2 0.7 0.7\nbananas\n");
        let err = trace_from_text(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("not a number"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = format!("{MAGIC}x\n0.5 1 0.3\n");
        let err = trace_from_text(&text).unwrap_err();
        assert!(err.reason.contains("expected 7 fields"));
    }

    #[test]
    fn out_of_domain_sample_rejected() {
        let text = format!("{MAGIC}x\n0.5 1 0.3 1.5 2 0.7 0.7\n");
        let err = trace_from_text(&text).unwrap_err();
        assert!(err.reason.contains("out of domain"));
    }

    #[test]
    fn empty_trace_rejected() {
        let text = format!("{MAGIC}x\n# only comments\n");
        let err = trace_from_text(&text).unwrap_err();
        assert!(err.reason.contains("no samples"));
        assert!(trace_from_text("").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{MAGIC}toy\n\n# comment\n0.5 1 0.3 0.5 2 0.7 0.7\n\n");
        let t = trace_from_text(&text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(), "toy");
    }

    #[test]
    fn error_display_mentions_line() {
        let e = ParseTraceError {
            line: 7,
            reason: "boom".into(),
        };
        assert_eq!(e.to_string(), "trace parse error at line 7: boom");
    }
}
