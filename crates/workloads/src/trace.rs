//! Concrete per-sample workload traces.

use crate::stats::TraceStats;
use mcdvfs_types::{SampleCharacteristics, INSTRUCTIONS_PER_SAMPLE};
use std::fmt;

/// A named sequence of fixed-work samples — the unit every characterization
/// and tuning algorithm consumes.
///
/// # Examples
///
/// ```
/// use mcdvfs_types::SampleCharacteristics;
/// use mcdvfs_workloads::SampleTrace;
///
/// let trace = SampleTrace::new(
///     "toy",
///     vec![SampleCharacteristics::new(1.0, 2.0); 8],
/// );
/// assert_eq!(trace.len(), 8);
/// assert_eq!(trace.total_instructions(), 80_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleTrace {
    name: String,
    samples: Vec<SampleCharacteristics>,
}

impl SampleTrace {
    /// Creates a trace from samples in execution order.
    ///
    /// # Panics
    ///
    /// Panics if any sample is invalid (see
    /// [`SampleCharacteristics::is_valid`]).
    #[must_use]
    pub fn new(name: impl Into<String>, samples: Vec<SampleCharacteristics>) -> Self {
        for (i, s) in samples.iter().enumerate() {
            assert!(s.is_valid(), "sample {i} is invalid: {s:?}");
        }
        Self {
            name: name.into(),
            samples,
        }
    }

    /// The workload's name (e.g. `"gobmk"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples in execution order.
    #[must_use]
    pub fn samples(&self) -> &[SampleCharacteristics] {
        &self.samples
    }

    /// One sample by index.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&SampleCharacteristics> {
        self.samples.get(i)
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, SampleCharacteristics> {
        self.samples.iter()
    }

    /// Total user-mode instructions represented by the trace.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.samples.len() as u64 * INSTRUCTIONS_PER_SAMPLE
    }

    /// Summary statistics over the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(&self.samples)
    }

    /// A sub-trace covering samples `[start, end)`, preserving the name.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    #[must_use]
    pub fn window(&self, start: usize, end: usize) -> SampleTrace {
        assert!(
            start <= end && end <= self.samples.len(),
            "window out of range"
        );
        SampleTrace {
            name: self.name.clone(),
            samples: self.samples[start..end].to_vec(),
        }
    }
}

impl fmt::Display for SampleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} samples)", self.name, self.samples.len())
    }
}

impl<'a> IntoIterator for &'a SampleTrace {
    type Item = &'a SampleCharacteristics;
    type IntoIter = std::slice::Iter<'a, SampleCharacteristics>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SampleTrace {
        SampleTrace::new(
            "t",
            vec![
                SampleCharacteristics::new(0.5, 1.0),
                SampleCharacteristics::new(1.0, 2.0),
                SampleCharacteristics::new(1.5, 3.0),
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = trace();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.get(1).unwrap().base_cpi - 1.0).abs() < 1e-12);
        assert!(t.get(3).is_none());
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }

    #[test]
    fn total_instructions_scale_with_length() {
        assert_eq!(trace().total_instructions(), 30_000_000);
    }

    #[test]
    fn window_slices_samples() {
        let t = trace();
        let w = t.window(1, 3);
        assert_eq!(w.len(), 2);
        assert!((w.get(0).unwrap().base_cpi - 1.0).abs() < 1e-12);
        assert_eq!(w.name(), "t");
        let empty = t.window(2, 2);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "window out of range")]
    fn bad_window_panics() {
        let _ = trace().window(2, 5);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_sample_rejected() {
        let mut bad = SampleCharacteristics::new(1.0, 1.0);
        bad.mlp = 0.0;
        let _ = SampleTrace::new("bad", vec![bad]);
    }

    #[test]
    fn display() {
        assert_eq!(trace().to_string(), "t (3 samples)");
    }
}
