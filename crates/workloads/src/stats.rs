//! Summary statistics over sample traces.

use mcdvfs_types::SampleCharacteristics;

/// Per-trace summary statistics, used by reports and tests to sanity-check
/// generated workloads against their intended behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of samples summarized.
    pub samples: usize,
    /// Mean core-bound CPI.
    pub cpi_mean: f64,
    /// Minimum core-bound CPI.
    pub cpi_min: f64,
    /// Maximum core-bound CPI.
    pub cpi_max: f64,
    /// Mean MPKI.
    pub mpki_mean: f64,
    /// Minimum MPKI.
    pub mpki_min: f64,
    /// Maximum MPKI.
    pub mpki_max: f64,
    /// Standard deviation of MPKI — a proxy for phase variability.
    pub mpki_stddev: f64,
    /// Number of *phase changes*: samples whose MPKI differs from the
    /// previous sample by more than 25% of the trace's MPKI range.
    pub phase_changes: usize,
}

impl TraceStats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    #[must_use]
    pub fn of(samples: &[SampleCharacteristics]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty trace");
        let n = samples.len() as f64;
        let cpi: Vec<f64> = samples.iter().map(|s| s.base_cpi).collect();
        let mpki: Vec<f64> = samples.iter().map(|s| s.mpki).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
        let minmax = |v: &[f64]| {
            v.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                })
        };
        let (cpi_min, cpi_max) = minmax(&cpi);
        let (mpki_min, mpki_max) = minmax(&mpki);
        let mpki_mean = mean(&mpki);
        let var = mpki.iter().map(|x| (x - mpki_mean).powi(2)).sum::<f64>() / n;
        let range = (mpki_max - mpki_min).max(1e-12);
        let phase_changes = mpki
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() > 0.25 * range)
            .count();
        Self {
            samples: samples.len(),
            cpi_mean: mean(&cpi),
            cpi_min,
            cpi_max,
            mpki_mean,
            mpki_min,
            mpki_max,
            mpki_stddev: var.sqrt(),
            phase_changes,
        }
    }

    /// Coefficient of variation of MPKI (stddev over mean); `0` for a
    /// memory-silent trace.
    #[must_use]
    pub fn mpki_cv(&self) -> f64 {
        if self.mpki_mean <= 0.0 {
            0.0
        } else {
            self.mpki_stddev / self.mpki_mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_has_zero_variability() {
        let samples = vec![SampleCharacteristics::new(1.0, 5.0); 10];
        let s = TraceStats::of(&samples);
        assert_eq!(s.samples, 10);
        assert!((s.cpi_mean - 1.0).abs() < 1e-12);
        assert!((s.mpki_stddev).abs() < 1e-12);
        assert_eq!(s.phase_changes, 0);
        assert_eq!(s.mpki_cv(), 0.0);
    }

    #[test]
    fn alternating_trace_counts_phase_changes() {
        let mut samples = Vec::new();
        for i in 0..10 {
            let mpki = if i % 2 == 0 { 1.0 } else { 20.0 };
            samples.push(SampleCharacteristics::new(1.0, mpki));
        }
        let s = TraceStats::of(&samples);
        assert_eq!(s.phase_changes, 9, "every adjacent pair crosses the range");
        assert!((s.mpki_min - 1.0).abs() < 1e-12);
        assert!((s.mpki_max - 20.0).abs() < 1e-12);
        assert!(s.mpki_cv() > 0.5);
    }

    #[test]
    fn min_max_mean_are_consistent() {
        let samples = vec![
            SampleCharacteristics::new(0.5, 2.0),
            SampleCharacteristics::new(1.5, 6.0),
        ];
        let s = TraceStats::of(&samples);
        assert!((s.cpi_mean - 1.0).abs() < 1e-12);
        assert!((s.mpki_mean - 4.0).abs() < 1e-12);
        assert!(s.cpi_min <= s.cpi_mean && s.cpi_mean <= s.cpi_max);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_panics() {
        let _ = TraceStats::of(&[]);
    }

    #[test]
    fn memory_silent_trace_cv_is_zero() {
        let samples = vec![SampleCharacteristics::new(1.0, 0.0); 4];
        assert_eq!(TraceStats::of(&samples).mpki_cv(), 0.0);
    }
}
