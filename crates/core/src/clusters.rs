//! Performance clusters.
//!
//! "All frequency settings (CPU and memory frequency pairs) that have
//! performance within a performance degradation threshold (*cluster
//! threshold*) compared to the performance of the optimal settings for a
//! given inefficiency budget form the performance cluster for that
//! inefficiency constraint." (Section VI)
//!
//! A speedup within `threshold` of optimal means
//! `speedup ≥ speedup_opt · (1 − threshold)`, i.e.
//! `time ≤ time_opt / (1 − threshold)`.
//!
//! Membership is held as a [`SettingSet`] bitset (the representation the
//! stable-region intersection scan consumes word-by-word), with the
//! ascending index `Vec` the figure output layers use derived from it at
//! construction.

use crate::inefficiency::InefficiencyBudget;
use crate::optimal::{OptimalChoice, OptimalFinder};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{Error, FreqSetting, Result, SettingSet};

/// The performance cluster of one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceCluster {
    /// Sample index within the trace.
    pub sample: usize,
    /// The optimal choice the cluster is anchored on.
    pub optimal: OptimalChoice,
    /// Cluster threshold used (e.g. `0.05` for 5%).
    pub threshold: f64,
    /// Membership bitset (always contains `optimal.index`).
    members_set: SettingSet,
    /// Flat grid indices of every member, ascending — derived from
    /// `members_set`.
    members: Vec<usize>,
}

impl PerformanceCluster {
    /// Member setting indices, ascending.
    #[must_use]
    pub fn member_indices(&self) -> &[usize] {
        &self.members
    }

    /// Membership as a bitset — the representation the stable-region
    /// running intersection ANDs against.
    #[must_use]
    pub fn member_set(&self) -> &SettingSet {
        &self.members_set
    }

    /// Number of member settings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the cluster has no members. Construction guarantees the
    /// optimal setting is always a member, so this is `false` for every
    /// cluster produced by [`cluster_series`] — but the answer comes from
    /// the data, not from that assumption.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when setting index `idx` is in the cluster.
    #[must_use]
    pub fn contains_index(&self, idx: usize) -> bool {
        self.members_set.contains(idx)
    }

    /// Member settings resolved against `data`'s grid.
    #[must_use]
    pub fn settings(&self, data: &CharacterizationGrid) -> Vec<FreqSetting> {
        self.members
            .iter()
            .map(|&i| data.grid().get(i).expect("member on grid"))
            .collect()
    }

    /// Range of member CPU frequencies `(min, max)` in MHz, resolved
    /// against `data`'s grid in one allocation-free pass.
    #[must_use]
    pub fn cpu_range_mhz(&self, data: &CharacterizationGrid) -> (u32, u32) {
        self.mhz_range(data, |s| s.cpu.mhz())
    }

    /// Range of member memory frequencies `(min, max)` in MHz, resolved
    /// against `data`'s grid in one allocation-free pass.
    #[must_use]
    pub fn mem_range_mhz(&self, data: &CharacterizationGrid) -> (u32, u32) {
        self.mhz_range(data, |s| s.mem.mhz())
    }

    fn mhz_range(
        &self,
        data: &CharacterizationGrid,
        mhz: impl Fn(FreqSetting) -> u32,
    ) -> (u32, u32) {
        assert!(!self.members.is_empty(), "cluster never empty");
        let (mut lo, mut hi) = (u32::MAX, u32::MIN);
        for &i in &self.members {
            let f = mhz(data.grid().get(i).expect("member on grid"));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        (lo, hi)
    }
}

/// Computes the per-sample performance clusters for a whole trace — the
/// series Figures 4 and 5 plot.
///
/// Mirrors the paper's two-pass algorithm: first find the optimal settings
/// within the budget, then collect every in-budget setting whose speedup is
/// within `threshold` of the optimal's.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `threshold` is outside
/// `[0, 0.5]` (the paper argues thresholds beyond 5% are unrealistic; 50%
/// is a hard sanity bound).
///
/// # Examples
///
/// ```
/// use mcdvfs_core::{cluster_series, InefficiencyBudget};
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let data = CharacterizationGrid::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Gobmk.trace().window(0, 6),
///     FrequencyGrid::coarse(),
/// );
/// let budget = InefficiencyBudget::bounded(1.3).unwrap();
/// let tight = cluster_series(&data, budget, 0.01).unwrap();
/// let loose = cluster_series(&data, budget, 0.05).unwrap();
/// for (t, l) in tight.iter().zip(&loose) {
///     assert!(t.len() <= l.len(), "larger thresholds grow clusters");
/// }
/// ```
pub fn cluster_series(
    data: &CharacterizationGrid,
    budget: InefficiencyBudget,
    threshold: f64,
) -> Result<Vec<PerformanceCluster>> {
    let finder = OptimalFinder::new(budget);
    let optimal = finder.series(data);
    cluster_series_with_optimal(data, &finder, &optimal, threshold)
}

/// As [`cluster_series`], but anchored on an already-computed optimal
/// series — the sweep engine's shared path, so sweeping several cluster
/// thresholds at one budget derives the optimal settings once instead of
/// once per threshold.
///
/// `optimal` must be `finder`'s series over `data` (one choice per sample,
/// in order); results are then bit-identical to [`cluster_series`].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `threshold` is outside
/// `[0, 0.5]`.
///
/// # Panics
///
/// Panics when `optimal` is not a per-sample series over `data`.
pub fn cluster_series_with_optimal(
    data: &CharacterizationGrid,
    finder: &OptimalFinder,
    optimal: &[OptimalChoice],
    threshold: f64,
) -> Result<Vec<PerformanceCluster>> {
    if !(0.0..=0.5).contains(&threshold) {
        return Err(Error::InvalidParameter {
            name: "threshold",
            reason: format!("cluster threshold must be in [0, 0.5], got {threshold}"),
        });
    }
    assert_eq!(
        optimal.len(),
        data.n_samples(),
        "optimal series must cover every sample"
    );
    let mut out = Vec::with_capacity(data.n_samples());
    for (s, &optimal) in optimal.iter().enumerate() {
        assert_eq!(optimal.sample, s, "optimal series must be in sample order");
        let row = data.sample_row(s);
        let emin = data.sample_emin(s);
        let cap = optimal.time.value() / (1.0 - threshold) * (1.0 + 1e-12);
        // One pass over the row builds both representations: feasibility
        // and the time cap are checked together, so the legacy filter's
        // intermediate feasible list never materializes.
        let mut members_set = SettingSet::empty(data.n_settings());
        let mut members = Vec::new();
        for (i, m) in row.iter().enumerate() {
            if finder.budget().admits_value(m.energy() / emin) && m.time.value() <= cap {
                members_set.insert(i);
                members.push(i);
            }
        }
        // The optimal index is always within the cap, but guard against
        // floating-point edge cases.
        if !members_set.contains(optimal.index) {
            members_set.insert(optimal.index);
            let pos = members.partition_point(|&i| i < optimal.index);
            members.insert(pos, optimal.index);
        }
        out.push(PerformanceCluster {
            sample: s,
            optimal,
            threshold,
            members,
            members_set,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        )
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn cluster_contains_its_optimal() {
        let d = data(Benchmark::Gobmk, 10);
        for thr in [0.01, 0.03, 0.05] {
            for c in cluster_series(&d, budget(1.3), thr).unwrap() {
                assert!(c.contains_index(c.optimal.index));
                assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn every_member_is_within_threshold_and_budget() {
        let d = data(Benchmark::Milc, 10);
        let thr = 0.05;
        let b = 1.3;
        for c in cluster_series(&d, budget(b), thr).unwrap() {
            for &i in c.member_indices() {
                let m = d.measurement(c.sample, i);
                let loss = 1.0 - c.optimal.time.value() / m.time.value();
                assert!(loss <= thr + 1e-9, "member {i} loses {loss}");
                let ineff = m.energy() / d.sample_emin(c.sample);
                let bound = b * (1.0 + crate::InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;
                assert!(ineff <= bound, "member {i} inefficiency {ineff}");
            }
        }
    }

    #[test]
    fn clusters_grow_with_threshold() {
        let d = data(Benchmark::Gobmk, 12);
        let c1 = cluster_series(&d, budget(1.3), 0.01).unwrap();
        let c5 = cluster_series(&d, budget(1.3), 0.05).unwrap();
        for (a, b) in c1.iter().zip(&c5) {
            assert!(b.len() >= a.len(), "sample {}", a.sample);
            // 1% members are a subset of 5% members.
            assert!(
                a.member_set().is_subset(b.member_set()),
                "sample {}",
                a.sample
            );
            for &i in a.member_indices() {
                assert!(b.contains_index(i), "sample {} member {i}", a.sample);
            }
        }
    }

    #[test]
    fn zero_threshold_cluster_is_the_noise_tie_set() {
        let d = data(Benchmark::Bzip2, 6);
        for c in cluster_series(&d, budget(1.3), 0.0).unwrap() {
            // Members are exactly the feasible settings whose time equals
            // the optimal's (within rounding).
            for &i in c.member_indices() {
                let t = d.measurement(c.sample, i).time.value();
                assert!(t <= c.optimal.time.value() * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn cpu_bound_clusters_span_wide_memory_ranges() {
        // The paper's milc observation: at higher thresholds the CPU
        // frequency stays tightly bound while memory settings span a wide
        // range, because memory frequency barely affects performance.
        let d = data(Benchmark::Bzip2, 8);
        for c in cluster_series(&d, budget(1.6), 0.05).unwrap() {
            let (cpu_lo, cpu_hi) = c.cpu_range_mhz(&d);
            let (mem_lo, mem_hi) = c.mem_range_mhz(&d);
            let cpu_span = cpu_hi - cpu_lo;
            let mem_span = mem_hi - mem_lo;
            assert!(
                mem_span >= 300 && mem_span > cpu_span,
                "sample {}: cpu span {cpu_span} MHz, mem span {mem_span} MHz",
                c.sample
            );
        }
    }

    #[test]
    fn memory_bound_clusters_bind_memory_tighter_relative_to_range() {
        let d = data(Benchmark::Lbm, 8);
        for c in cluster_series(&d, budget(1.0), 0.01).unwrap() {
            let (mem_lo, mem_hi) = c.mem_range_mhz(&d);
            assert!(
                mem_hi - mem_lo <= 300,
                "lbm at I=1.0/1%: memory span {} MHz too wide",
                mem_hi - mem_lo
            );
        }
    }

    #[test]
    fn ranges_match_the_naive_settings_scan() {
        let d = data(Benchmark::Gobmk, 8);
        for c in cluster_series(&d, budget(1.3), 0.05).unwrap() {
            let cpu: Vec<u32> = c.settings(&d).iter().map(|s| s.cpu.mhz()).collect();
            let mem: Vec<u32> = c.settings(&d).iter().map(|s| s.mem.mhz()).collect();
            assert_eq!(
                c.cpu_range_mhz(&d),
                (*cpu.iter().min().unwrap(), *cpu.iter().max().unwrap())
            );
            assert_eq!(
                c.mem_range_mhz(&d),
                (*mem.iter().min().unwrap(), *mem.iter().max().unwrap())
            );
        }
    }

    #[test]
    fn invalid_threshold_rejected() {
        let d = data(Benchmark::Gobmk, 3);
        assert!(cluster_series(&d, budget(1.3), -0.01).is_err());
        assert!(cluster_series(&d, budget(1.3), 0.51).is_err());
        assert!(cluster_series(&d, budget(1.3), 0.5).is_ok());
    }

    #[test]
    fn settings_resolve_against_grid() {
        let d = data(Benchmark::Gobmk, 4);
        let clusters = cluster_series(&d, budget(1.3), 0.05).unwrap();
        for c in &clusters {
            let settings = c.settings(&d);
            assert_eq!(settings.len(), c.len());
            for s in settings {
                assert!(d.grid().contains(s));
            }
        }
    }

    #[test]
    fn member_indices_are_sorted_unique() {
        let d = data(Benchmark::Gcc, 8);
        for c in cluster_series(&d, budget(1.3), 0.05).unwrap() {
            let m = c.member_indices();
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(c.member_set().count(), m.len());
        }
    }

    #[test]
    fn shared_optimal_path_is_bit_identical() {
        let d = data(Benchmark::Milc, 12);
        let finder = OptimalFinder::new(budget(1.3));
        let optimal = finder.series(&d);
        for thr in [0.01, 0.03, 0.05] {
            let direct = cluster_series(&d, budget(1.3), thr).unwrap();
            let shared = cluster_series_with_optimal(&d, &finder, &optimal, thr).unwrap();
            assert_eq!(direct, shared, "threshold {thr}");
        }
    }
}
