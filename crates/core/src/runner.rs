//! End-to-end governed execution.
//!
//! [`GovernedRun`] replays a characterized trace under a [`Governor`],
//! charging the two overheads the paper's Figure 11 separates:
//!
//! * **search cost** — per tuning event, proportional to the settings the
//!   governor evaluated ([`TuningCostModel`]);
//! * **hardware transition cost** — per actual frequency change, through
//!   the [`DvfsController`](mcdvfs_sim::DvfsController).
//!
//! The resulting [`RunReport`] exposes end-to-end time/energy with and
//! without the overheads, achieved inefficiency, and transition counts —
//! everything Figures 8, 10 and 11 summarize.
//!
//! Runs can additionally stream a structured ledger of typed events
//! ([`GovernedRun::execute_recorded`]): every search, hardware transition,
//! region boundary and executed sample, carrying the exact charged
//! quantities. [`RunReport::verify_ledger`] cross-checks that replaying
//! the ledger reproduces the report's totals bit-for-bit.

use crate::governor::{Governor, Observation};
use crate::tuning::{TuningCost, TuningCostModel};
use mcdvfs_obs::{Event, NullRecorder, Recorder, RunLedger};
use mcdvfs_sim::{CharacterizationGrid, DvfsController, TransitionModel};
use mcdvfs_types::{FreqSetting, Joules, Seconds};
use mcdvfs_workloads::SampleTrace;

/// The outcome of one governed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Governor name.
    pub governor: String,
    /// Setting each sample actually ran at.
    pub sample_settings: Vec<FreqSetting>,
    /// Sum of per-sample execution times (no overheads).
    pub work_time: Seconds,
    /// Sum of per-sample energies (no overheads).
    pub work_energy: Joules,
    /// Total search latency charged.
    pub tuning_time: Seconds,
    /// Total search energy charged.
    pub tuning_energy: Joules,
    /// Total hardware transition latency charged.
    pub transition_time: Seconds,
    /// Total hardware transition energy charged.
    pub transition_energy: Joules,
    /// Number of joint frequency transitions performed.
    pub transitions: u64,
    /// Number of CPU-domain changes.
    pub cpu_transitions: u64,
    /// Number of memory-domain changes.
    pub mem_transitions: u64,
    /// Number of tuning events that performed a search.
    pub searches: u64,
    /// Per-sample minimum energy total (denominator of inefficiency).
    pub total_emin: Joules,
}

impl RunReport {
    /// End-to-end execution time including all overheads.
    #[must_use]
    pub fn total_time(&self) -> Seconds {
        self.work_time + self.tuning_time + self.transition_time
    }

    /// End-to-end energy including all overheads.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.work_energy + self.tuning_energy + self.transition_energy
    }

    /// Achieved whole-run inefficiency (work energy basis, matching the
    /// paper's budget-compliance verification).
    #[must_use]
    pub fn work_inefficiency(&self) -> f64 {
        self.work_energy / self.total_emin
    }

    /// Achieved whole-run inefficiency including overhead energy.
    #[must_use]
    pub fn total_inefficiency(&self) -> f64 {
        self.total_energy() / self.total_emin
    }

    /// Relative performance degradation versus a reference run
    /// (`0.03` = 3% slower than the reference).
    #[must_use]
    pub fn perf_degradation_vs(&self, reference: &RunReport) -> f64 {
        self.total_time() / reference.total_time() - 1.0
    }

    /// Relative energy savings versus a reference run
    /// (`0.02` = 2% less energy).
    #[must_use]
    pub fn energy_savings_vs(&self, reference: &RunReport) -> f64 {
        1.0 - self.total_energy() / reference.total_energy()
    }

    /// Cross-checks this report against the ledger recorded alongside it:
    /// replaying the events must reproduce every total *exactly* —
    /// bit-identical times and energies, equal counts.
    ///
    /// This is the observability layer's integrity invariant: events carry
    /// the same `f64` quantities the runner accumulated, in the same
    /// order, so any disagreement means instrumentation drifted from the
    /// accounting it observes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch, or of dropped events
    /// (a lossy ledger cannot be replayed into full totals).
    pub fn verify_ledger(&self, ledger: &RunLedger) -> std::result::Result<(), String> {
        let t = ledger.replay().map_err(|e| e.to_string())?;
        let check = |name: &str, got: f64, want: f64| -> std::result::Result<(), String> {
            if got.to_bits() == want.to_bits() {
                Ok(())
            } else {
                Err(format!("{name}: replay {got:e} != report {want:e}"))
            }
        };
        check("work_time", t.work_time.value(), self.work_time.value())?;
        check(
            "work_energy",
            t.work_energy.value(),
            self.work_energy.value(),
        )?;
        check(
            "tuning_time",
            t.tuning_time.value(),
            self.tuning_time.value(),
        )?;
        check(
            "tuning_energy",
            t.tuning_energy.value(),
            self.tuning_energy.value(),
        )?;
        check(
            "transition_time",
            t.transition_time.value(),
            self.transition_time.value(),
        )?;
        check(
            "transition_energy",
            t.transition_energy.value(),
            self.transition_energy.value(),
        )?;
        let counts = [
            (
                "samples",
                t.samples as u64,
                self.sample_settings.len() as u64,
            ),
            ("searches", t.searches, self.searches),
            ("transitions", t.transitions, self.transitions),
            ("cpu_transitions", t.cpu_transitions, self.cpu_transitions),
            ("mem_transitions", t.mem_transitions, self.mem_transitions),
        ];
        for (name, got, want) in counts {
            if got != want {
                return Err(format!("{name}: replay {got} != report {want}"));
            }
        }
        Ok(())
    }
}

/// Replay engine charging tuning and transition overheads.
#[derive(Debug, Clone)]
pub struct GovernedRun {
    tuning: TuningCostModel,
    transitions: TransitionModel,
    budget_alert: Option<f64>,
}

impl GovernedRun {
    /// Creates a runner with the given overhead models.
    #[must_use]
    pub fn new(tuning: TuningCostModel, transitions: TransitionModel) -> Self {
        Self {
            tuning,
            transitions,
            budget_alert: None,
        }
    }

    /// Arms a budget alert: when the running work inefficiency first
    /// exceeds `budget`, a
    /// [`BudgetExceeded`](Event::BudgetExceeded) event is emitted to the
    /// recorder (at most once per run). The alert never changes the run's
    /// results — it only observes them.
    ///
    /// # Panics
    ///
    /// Panics when `budget < 1.0` (inefficiency is at least 1 by
    /// definition).
    #[must_use]
    pub fn with_budget_alert(mut self, budget: f64) -> Self {
        assert!(budget >= 1.0, "inefficiency budgets are at least 1");
        self.budget_alert = Some(budget);
        self
    }

    /// A runner with all overheads disabled (Figure 11's "no tuning
    /// overhead" arm).
    #[must_use]
    pub fn without_overheads() -> Self {
        Self::new(TuningCostModel::free(), TransitionModel::free())
    }

    /// A runner with the paper-calibrated overheads (Figure 11's "with
    /// tuning overhead" arm).
    #[must_use]
    pub fn with_paper_overheads() -> Self {
        Self::new(
            TuningCostModel::paper_calibrated(),
            TransitionModel::mobile_soc(),
        )
    }

    /// Replays `trace` (already characterized into `data`) under
    /// `governor`, booting the platform at the grid's maximum setting.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and `data` disagree on sample count, or when the
    /// governor returns an off-grid setting.
    #[must_use]
    pub fn execute(
        &self,
        data: &CharacterizationGrid,
        trace: &SampleTrace,
        governor: &mut dyn Governor,
    ) -> RunReport {
        self.execute_recorded(data, trace, governor, &mut NullRecorder)
    }

    /// As [`execute`](Self::execute), additionally streaming typed
    /// [`Event`]s to `recorder` — region boundaries, tuning searches,
    /// hardware transitions, executed samples, and (when armed via
    /// [`with_budget_alert`](Self::with_budget_alert)) budget crossings.
    ///
    /// Recording never perturbs the run: `execute` is literally this
    /// method with a [`NullRecorder`], so results are bit-identical with
    /// recording on or off. Events carry the exact charged quantities in
    /// accumulation order, making
    /// [`RunReport::verify_ledger`] an exact cross-check.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and `data` disagree on sample count, or when the
    /// governor returns an off-grid setting.
    #[must_use]
    pub fn execute_recorded(
        &self,
        data: &CharacterizationGrid,
        trace: &SampleTrace,
        governor: &mut dyn Governor,
        recorder: &mut dyn Recorder,
    ) -> RunReport {
        assert_eq!(
            trace.len(),
            data.n_samples(),
            "trace and characterization must describe the same samples"
        );
        let grid = data.grid();
        let mut controller = DvfsController::new(grid, grid.max_setting(), self.transitions);
        let mut report = RunReport {
            governor: governor.name().to_string(),
            sample_settings: Vec::with_capacity(trace.len()),
            work_time: Seconds::ZERO,
            work_energy: Joules::ZERO,
            tuning_time: Seconds::ZERO,
            tuning_energy: Joules::ZERO,
            transition_time: Seconds::ZERO,
            transition_energy: Joules::ZERO,
            transitions: 0,
            cpu_transitions: 0,
            mem_transitions: 0,
            searches: 0,
            total_emin: data.total_emin(),
        };

        let recording = recorder.enabled();
        let mut emin_so_far = Joules::ZERO;
        let mut budget_alerted = false;
        let mut prev: Option<Observation> = None;
        for s in 0..trace.len() {
            let decision = governor.decide(s, prev.as_ref());
            if recording && decision.region_start {
                recorder.record(Event::RegionBoundary { sample: s });
            }
            if decision.settings_evaluated > 0 {
                report.searches += 1;
                let TuningCost { latency, energy } =
                    self.tuning.search_cost(decision.settings_evaluated);
                report.tuning_time += latency;
                report.tuning_energy += energy;
                if recording {
                    recorder.record(Event::TuningSearch {
                        sample: s,
                        settings_evaluated: decision.settings_evaluated,
                        latency,
                        energy,
                    });
                }
            }
            let cost = controller
                .request_recorded(decision.setting, s, recorder)
                .expect("governor returned an off-grid setting");
            report.transition_time += cost.latency;
            report.transition_energy += cost.energy;

            let m = *data
                .measurement_at(s, decision.setting)
                .expect("setting validated by controller");
            report.work_time += m.time;
            report.work_energy += m.energy();
            report.sample_settings.push(decision.setting);
            if recording {
                recorder.record(Event::SampleExecuted {
                    sample: s,
                    setting: decision.setting,
                    time: m.time,
                    energy: m.energy(),
                });
            }
            if let Some(budget) = self.budget_alert {
                emin_so_far += data.sample_emin(s);
                let inefficiency = report.work_energy.value() / emin_so_far.value();
                if recording && !budget_alerted && inefficiency > budget {
                    recorder.record(Event::BudgetExceeded {
                        sample: s,
                        inefficiency,
                        budget,
                    });
                    budget_alerted = true;
                }
            }
            controller.advance(m.time);
            prev = Some(Observation {
                sample: s,
                setting: decision.setting,
                measurement: m,
                dram_bytes: trace.get(s).expect("index in range").dram_bytes(),
            });
        }

        report.transitions = controller.transition_count();
        report.cpu_transitions = controller.cpu_transition_count();
        report.mem_transitions = controller.mem_transition_count();
        report
    }

    /// Replays `trace` under `governor` with a [`RunLedger`] attached,
    /// verifies the ledger replays into the report's totals exactly, and
    /// condenses the ledger into the accounting the figure binaries and
    /// policy scorecards share: per-domain transition counts, the median
    /// gap between hardware transitions, the mean settings evaluated per
    /// tuning search, and the overhead share of total runtime.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and `data` disagree on sample count, when the
    /// governor returns an off-grid setting, or when the ledger fails to
    /// replay into the report (an accounting bug by construction).
    #[must_use]
    pub fn execute_accounted(
        &self,
        data: &CharacterizationGrid,
        trace: &SampleTrace,
        governor: &mut dyn Governor,
    ) -> RunAccounting {
        let mut ledger = RunLedger::unbounded();
        let report = self.execute_recorded(data, trace, governor, &mut ledger);
        report
            .verify_ledger(&ledger)
            .expect("ledger replay must match the report exactly");
        let counts = ledger.domain_transition_counts();
        let mut gaps = ledger.transition_interarrivals();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
        let median_transition_gap = gaps.get(gaps.len() / 2).copied();
        let mean_search_evaluated = ledger.search_breakdown().mean_evaluated();
        let overhead_fraction = (report.tuning_time.value() + report.transition_time.value())
            / report.total_time().value();
        RunAccounting {
            report,
            joint_transitions: counts.joint,
            cpu_domain_transitions: counts.cpu,
            mem_domain_transitions: counts.mem,
            median_transition_gap,
            mean_search_evaluated,
            overhead_fraction,
        }
    }
}

/// Ledger-verified accounting for one governed run: the [`RunReport`] plus
/// the transition/search statistics previously recomputed by hand in each
/// figure binary. Produced by [`GovernedRun::execute_accounted`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunAccounting {
    /// The run report the ledger was verified against.
    pub report: RunReport,
    /// Hardware transitions where either domain changed (each counted once).
    pub joint_transitions: u64,
    /// CPU-domain frequency changes.
    pub cpu_domain_transitions: u64,
    /// Memory-domain frequency changes.
    pub mem_domain_transitions: u64,
    /// Median wall-clock gap between consecutive hardware transitions, in
    /// seconds; `None` when fewer than two transitions occurred.
    pub median_transition_gap: Option<f64>,
    /// Mean candidate settings evaluated per tuning search.
    pub mean_search_evaluated: f64,
    /// Tuning-plus-transition time as a fraction of total runtime.
    pub overhead_fraction: f64,
}

impl RunAccounting {
    /// The median transition gap as the figures print it: milliseconds with
    /// three decimals, or `"-"` when undefined.
    #[must_use]
    pub fn median_gap_ms_label(&self) -> String {
        self.median_transition_gap
            .map_or_else(|| "-".to_string(), |g| crate::report::fmt(g * 1e3, 3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{
        FixedGovernor, OracleClusterGovernor, OracleOptimalGovernor, PerformanceGovernor,
    };
    use crate::inefficiency::InefficiencyBudget;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;
    use std::sync::Arc;

    fn setup(b: Benchmark, n: usize) -> (Arc<CharacterizationGrid>, SampleTrace) {
        let trace = b.trace().window(0, n);
        let data = Arc::new(CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &trace,
            FrequencyGrid::coarse(),
        ));
        (data, trace)
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn fixed_governor_matches_grid_totals() {
        let (data, trace) = setup(Benchmark::Gobmk, 12);
        let setting = FreqSetting::from_mhz(500, 400);
        let mut g = FixedGovernor::new(setting);
        let report = GovernedRun::without_overheads().execute(&data, &trace, &mut g);
        let idx = data.grid().index_of(setting).unwrap();
        assert!((report.work_time.value() - data.total_time_at(idx).value()).abs() < 1e-12);
        assert!((report.work_energy.value() - data.total_energy_at(idx).value()).abs() < 1e-15);
        // Boot is at max; the fixed setting differs, so exactly one transition.
        assert_eq!(report.transitions, 1);
        assert_eq!(report.searches, 0);
        assert_eq!(report.total_time(), report.work_time);
    }

    #[test]
    fn oracle_governor_honours_the_budget_end_to_end() {
        let (data, trace) = setup(Benchmark::Milc, 30);
        for b in [1.0, 1.1, 1.3, 1.6] {
            let mut g = OracleOptimalGovernor::new(Arc::clone(&data), budget(b));
            let report = GovernedRun::without_overheads().execute(&data, &trace, &mut g);
            assert!(
                report.work_inefficiency() <= b * (1.0 + 1e-9),
                "budget {b}: achieved {}",
                report.work_inefficiency()
            );
        }
    }

    #[test]
    fn higher_budgets_run_faster() {
        // Figure 10: execution time falls as the budget loosens.
        let (data, trace) = setup(Benchmark::Gcc, 40);
        let mut prev = f64::INFINITY;
        for b in [1.0, 1.1, 1.2, 1.3, 1.6] {
            let mut g = OracleOptimalGovernor::new(Arc::clone(&data), budget(b));
            let report = GovernedRun::without_overheads().execute(&data, &trace, &mut g);
            let t = report.total_time().value();
            assert!(t <= prev * (1.0 + 0.006), "budget {b}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn cluster_governor_degrades_at_most_threshold_without_overheads() {
        // Figure 11(a): degradation is bounded by the cluster threshold.
        let (data, trace) = setup(Benchmark::Gobmk, 40);
        let b = budget(1.3);
        let runner = GovernedRun::without_overheads();
        let mut opt = OracleOptimalGovernor::new(Arc::clone(&data), b);
        let reference = runner.execute(&data, &trace, &mut opt);
        for thr in [0.01, 0.03, 0.05] {
            let mut g = OracleClusterGovernor::new(Arc::clone(&data), b, thr).unwrap();
            let report = runner.execute(&data, &trace, &mut g);
            let degradation = report.perf_degradation_vs(&reference);
            assert!(
                degradation <= thr + 1e-9,
                "threshold {thr}: degradation {degradation}"
            );
            // And clusters save energy relative to exact tracking.
            assert!(report.energy_savings_vs(&reference) >= -1e-9);
        }
    }

    #[test]
    fn overheads_make_exact_tracking_pay() {
        // Figure 11(b) / Figure 9(b): with tuning overhead, the cluster
        // tuner beats exact tracking end to end. bzip2 at a loose budget is
        // the paper's showcase — exact tracking flaps among performance
        // near-ties while one cluster region covers the whole benchmark.
        let (data, trace) = setup(Benchmark::Bzip2, 40);
        let b = budget(1.6);
        let runner = GovernedRun::with_paper_overheads();
        let mut opt = OracleOptimalGovernor::new(Arc::clone(&data), b);
        let tracked = runner.execute(&data, &trace, &mut opt);
        let mut cluster = OracleClusterGovernor::new(Arc::clone(&data), b, 0.05).unwrap();
        let clustered = runner.execute(&data, &trace, &mut cluster);
        assert!(
            clustered.tuning_time < tracked.tuning_time,
            "cluster tuner searches less"
        );
        assert!(
            clustered.transitions < tracked.transitions,
            "clusters {} vs tracked {}",
            clustered.transitions,
            tracked.transitions
        );
        assert!(
            clustered.total_time() < tracked.total_time(),
            "avoided overhead outweighs the bounded performance loss"
        );
    }

    #[test]
    fn performance_governor_never_transitions_after_boot() {
        let (data, trace) = setup(Benchmark::Bzip2, 8);
        let mut g = PerformanceGovernor::new(data.grid());
        let report = GovernedRun::with_paper_overheads().execute(&data, &trace, &mut g);
        assert_eq!(report.transitions, 0, "boot setting is already max");
        assert_eq!(report.transition_energy, Joules::ZERO);
    }

    #[test]
    fn report_totals_are_component_sums() {
        let (data, trace) = setup(Benchmark::Lbm, 10);
        let mut g = OracleOptimalGovernor::new(Arc::clone(&data), budget(1.3));
        let r = GovernedRun::with_paper_overheads().execute(&data, &trace, &mut g);
        assert!(
            (r.total_time().value()
                - (r.work_time.value() + r.tuning_time.value() + r.transition_time.value()))
            .abs()
                < 1e-15
        );
        assert!(r.total_inefficiency() >= r.work_inefficiency());
        assert_eq!(r.sample_settings.len(), 10);
        assert!(r.searches > 0);
    }

    #[test]
    fn recorded_run_matches_unrecorded_bit_for_bit() {
        let (data, trace) = setup(Benchmark::Milc, 20);
        let runner = GovernedRun::with_paper_overheads();
        let mut g1 = OracleOptimalGovernor::new(Arc::clone(&data), budget(1.3));
        let mut g2 = OracleOptimalGovernor::new(Arc::clone(&data), budget(1.3));
        let plain = runner.execute(&data, &trace, &mut g1);
        let mut ledger = RunLedger::unbounded();
        let recorded = runner.execute_recorded(&data, &trace, &mut g2, &mut ledger);
        assert_eq!(plain, recorded, "recording must not perturb the run");
        recorded
            .verify_ledger(&ledger)
            .expect("replay reproduces totals");
    }

    #[test]
    fn ledger_region_lengths_cover_the_trace() {
        let (data, trace) = setup(Benchmark::Gcc, 30);
        let mut g = OracleClusterGovernor::new(Arc::clone(&data), budget(1.3), 0.05).unwrap();
        let mut ledger = RunLedger::unbounded();
        let report =
            GovernedRun::without_overheads().execute_recorded(&data, &trace, &mut g, &mut ledger);
        let lengths = ledger.region_lengths();
        assert_eq!(lengths.iter().sum::<usize>(), 30);
        assert_eq!(
            lengths.len() as u64,
            report.searches,
            "one search per region"
        );
    }

    #[test]
    fn budget_alert_fires_once_and_changes_nothing() {
        let (data, trace) = setup(Benchmark::Milc, 20);
        // Performance pins both domains at max: energy-oblivious, so a
        // tight alert budget must trip.
        let plain = {
            let mut g = PerformanceGovernor::new(data.grid());
            GovernedRun::without_overheads().execute(&data, &trace, &mut g)
        };
        let mut g = PerformanceGovernor::new(data.grid());
        let mut ledger = RunLedger::unbounded();
        let alerting = GovernedRun::without_overheads()
            .with_budget_alert(1.01)
            .execute_recorded(&data, &trace, &mut g, &mut ledger);
        assert_eq!(plain, alerting, "the alert only observes");
        assert_eq!(
            ledger.replay().expect("complete ledger").budget_alerts,
            1,
            "emitted exactly once"
        );
        let fired = ledger.events().any(|e| {
            matches!(e, mcdvfs_obs::Event::BudgetExceeded { inefficiency, budget, .. }
                if *inefficiency > *budget)
        });
        assert!(fired);
    }

    #[test]
    fn lossy_ledger_fails_verification() {
        let (data, trace) = setup(Benchmark::Gobmk, 12);
        let mut g = OracleOptimalGovernor::new(Arc::clone(&data), budget(1.3));
        let mut ledger = RunLedger::with_capacity(4);
        let report = GovernedRun::with_paper_overheads().execute_recorded(
            &data,
            &trace,
            &mut g,
            &mut ledger,
        );
        let err = report.verify_ledger(&ledger).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_budget_alert_panics() {
        let _ = GovernedRun::without_overheads().with_budget_alert(0.5);
    }

    #[test]
    #[should_panic(expected = "same samples")]
    fn mismatched_trace_panics() {
        let (data, _) = setup(Benchmark::Gobmk, 10);
        let other = Benchmark::Gobmk.trace().window(0, 5);
        let mut g = PerformanceGovernor::new(data.grid());
        let _ = GovernedRun::without_overheads().execute(&data, &other, &mut g);
    }
}
