//! Reference `Vec`-based implementations of the analysis kernels.
//!
//! These are the pre-bitset algorithms — per-sample feasible filtering
//! into `Vec<usize>`, cluster membership as sorted index vectors, and the
//! stable-region scan as sorted-`Vec` merge intersection — preserved
//! verbatim as executable specifications. The equivalence test suite
//! asserts the [`SettingSet`](mcdvfs_types::SettingSet)-backed hot paths
//! produce bit-identical results, and the `sweep` wall-clock bench times
//! both so the speedup is measured, not assumed.
//!
//! Nothing here is deprecated-but-load-bearing: production paths never
//! call into this module.

use crate::inefficiency::{Inefficiency, InefficiencyBudget};
use crate::optimal::{OptimalChoice, OptimalFinder};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{Error, FreqSetting, FrequencyGrid, Result};
use mcdvfs_workloads::SampleTrace;

/// A stable region as the reference scan reports it: plain indices, no
/// bitsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyRegion {
    /// First sample (inclusive).
    pub start: usize,
    /// One past the last sample (exclusive).
    pub end: usize,
    /// Highest-CPU-then-memory surviving setting.
    pub chosen_index: usize,
    /// All surviving settings, ascending.
    pub available: Vec<usize>,
}

/// Reference characterization: one [`System::simulate_sample`] call per
/// `(sample, setting)` cell, row-major — the pre-`EvalPlan` loop the
/// compiled path in [`CharacterizationGrid::characterize`] replaced. The
/// equivalence suite asserts the plan-compiled path (and incremental
/// [`CharacterizationGrid::recharacterize`] updates) reproduce this
/// bit-for-bit, and the `sweep` bench times both.
///
/// # Panics
///
/// Panics if the trace is empty.
#[must_use]
pub fn characterize(
    system: &System,
    trace: &SampleTrace,
    grid: FrequencyGrid,
) -> CharacterizationGrid {
    assert!(!trace.is_empty(), "cannot characterize an empty trace");
    let settings: Vec<FreqSetting> = grid.settings().collect();
    let mut arena = Vec::with_capacity(trace.len() * settings.len());
    for chars in trace.iter() {
        for &s in &settings {
            arena.push(system.simulate_sample(chars, s));
        }
    }
    CharacterizationGrid::from_measurements(trace.name(), grid, settings.len(), arena)
}

/// Reference feasible filter: scan the row, collect in-budget indices.
#[must_use]
pub fn feasible(finder: &OptimalFinder, data: &CharacterizationGrid, s: usize) -> Vec<usize> {
    let emin = data.sample_emin(s);
    data.sample_row(s)
        .iter()
        .enumerate()
        .filter(|(_, m)| finder.budget().admits_value(m.energy() / emin))
        .map(|(i, _)| i)
        .collect()
}

/// Reference optimal choice for one sample: `Vec` feasible set, fold for
/// the best time, `max_by_key` over the grid settings for the tie-break.
///
/// # Panics
///
/// Panics when `s` is out of range.
#[must_use]
pub fn find(finder: &OptimalFinder, data: &CharacterizationGrid, s: usize) -> OptimalChoice {
    if finder.budget() == InefficiencyBudget::Unconstrained {
        let index = data.n_settings() - 1;
        let m = data.measurement(s, index);
        return OptimalChoice {
            sample: s,
            index,
            setting: data.grid().max_setting(),
            time: m.time,
            energy: m.energy(),
            inefficiency: Inefficiency::compute(m.energy(), data.sample_emin(s))
                .expect("grid energies are positive"),
        };
    }
    let feasible = feasible(finder, data, s);
    let row = data.sample_row(s);
    let best_time = feasible
        .iter()
        .map(|&i| row[i].time.value())
        .fold(f64::INFINITY, f64::min);
    let index = feasible
        .iter()
        .copied()
        .filter(|&i| row[i].time.value() <= best_time * (1.0 + finder.tie_tolerance()))
        .max_by_key(|&i| data.grid().get(i).expect("feasible index on grid"))
        .expect("at least the best-time setting qualifies");
    let m = &row[index];
    OptimalChoice {
        sample: s,
        index,
        setting: data.grid().get(index).expect("index on grid"),
        time: m.time,
        energy: m.energy(),
        inefficiency: Inefficiency::compute(m.energy(), data.sample_emin(s))
            .expect("grid energies are positive"),
    }
}

/// Reference optimal series: [`find`] per sample.
#[must_use]
pub fn series(finder: &OptimalFinder, data: &CharacterizationGrid) -> Vec<OptimalChoice> {
    (0..data.n_samples())
        .map(|s| find(finder, data, s))
        .collect()
}

/// Reference cluster membership: per sample, the optimal choice plus every
/// feasible setting within the time cap, as a sorted `Vec` (the paper's
/// two-pass algorithm over `Vec` sets).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `threshold` is outside
/// `[0, 0.5]`.
pub fn cluster_members(
    data: &CharacterizationGrid,
    budget: InefficiencyBudget,
    threshold: f64,
) -> Result<Vec<Vec<usize>>> {
    if !(0.0..=0.5).contains(&threshold) {
        return Err(Error::InvalidParameter {
            name: "threshold",
            reason: format!("cluster threshold must be in [0, 0.5], got {threshold}"),
        });
    }
    let finder = OptimalFinder::new(budget);
    let mut out = Vec::with_capacity(data.n_samples());
    for s in 0..data.n_samples() {
        let optimal = find(&finder, data, s);
        let row = data.sample_row(s);
        let time_cap = optimal.time.value() / (1.0 - threshold);
        let mut members: Vec<usize> = feasible(&finder, data, s)
            .into_iter()
            .filter(|&i| row[i].time.value() <= time_cap * (1.0 + 1e-12))
            .collect();
        if !members.contains(&optimal.index) {
            members.push(optimal.index);
        }
        members.sort_unstable();
        out.push(members);
    }
    Ok(out)
}

/// Reference stable-region scan over per-sample member `Vec`s, using
/// sorted-merge intersection.
#[must_use]
pub fn stable_regions(members: &[Vec<usize>]) -> Vec<LegacyRegion> {
    let mut regions = Vec::new();
    if members.is_empty() {
        return regions;
    }
    let close = |start: usize, end: usize, available: Vec<usize>| -> LegacyRegion {
        let chosen_index = *available.last().expect("region has at least one setting");
        LegacyRegion {
            start,
            end,
            chosen_index,
            available,
        }
    };
    let mut start = 0usize;
    let mut available: Vec<usize> = members[0].clone();
    for (s, cluster) in members.iter().enumerate().skip(1) {
        let next = intersect_sorted(&available, cluster);
        if next.is_empty() {
            regions.push(close(start, s, available));
            start = s;
            available = cluster.clone();
        } else {
            available = next;
        }
    }
    regions.push(close(start, members.len(), available));
    regions
}

/// Intersection of two ascending index slices by sorted merge.
#[must_use]
pub fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &Benchmark::Gobmk.trace().window(0, n),
            FrequencyGrid::coarse(),
        )
    }

    #[test]
    fn legacy_characterize_matches_production_bit_for_bit() {
        let system = System::galaxy_nexus_class();
        let trace = Benchmark::Gobmk.trace().window(0, 8);
        let reference = characterize(&system, &trace, FrequencyGrid::coarse());
        let production =
            CharacterizationGrid::characterize(&system, &trace, FrequencyGrid::coarse());
        assert_eq!(reference, production);
        assert_eq!(reference.fingerprint(), production.fingerprint());
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<usize>::new());
    }

    #[test]
    fn legacy_regions_partition_the_trace() {
        let d = data(20);
        let members = cluster_members(&d, InefficiencyBudget::bounded(1.3).unwrap(), 0.01).unwrap();
        let regions = stable_regions(&members);
        assert_eq!(regions[0].start, 0);
        assert_eq!(regions.last().unwrap().end, 20);
        assert_eq!(regions.iter().map(|r| r.end - r.start).sum::<usize>(), 20);
    }

    #[test]
    fn legacy_threshold_validation_matches_production() {
        let d = data(3);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        assert!(cluster_members(&d, budget, -0.01).is_err());
        assert!(cluster_members(&d, budget, 0.51).is_err());
    }
}
