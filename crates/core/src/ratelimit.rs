//! Absolute-energy rate limiting — the baseline the inefficiency metric
//! replaces.
//!
//! Section II motivates inefficiency by critiquing rate-limiting
//! approaches (Cinder [Rumble et al.]; ECOSystem [Zeng et al.]): they take
//! "the maximum energy that can be consumed in a given time period as an
//! input. Once the application consumes its limit, it is paused until the
//! next time period begins." The problems the paper lists, all observable
//! with this module:
//!
//! * the right absolute budget is **application- and device-dependent** —
//!   the same joules-per-second means a different thing for bzip2 and lbm;
//! * a too-tight budget "may slow down applications to the point where
//!   total energy consumption increases" (pausing burns idle power while
//!   the work still has to finish);
//! * energy is allotted per *time window*, not per *work*, so a window
//!   with little work wastes its allotment ("doesn't require a specific
//!   amount of work to be done within that budget").

use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{Error, FreqSetting, Joules, Result, Seconds, Watts};

/// Outcome of executing a characterized trace under an absolute-energy
/// rate limiter.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLimitedRun {
    /// Fixed setting the application ran at.
    pub setting: FreqSetting,
    /// Energy allotment per window.
    pub budget_per_window: Joules,
    /// Window length.
    pub window: Seconds,
    /// Time spent actually executing.
    pub run_time: Seconds,
    /// Time spent paused waiting for the next window.
    pub paused_time: Seconds,
    /// Energy consumed by execution.
    pub work_energy: Joules,
    /// Energy consumed while paused (idle power is not free).
    pub idle_energy: Joules,
    /// Number of pauses taken.
    pub pauses: u64,
}

impl RateLimitedRun {
    /// Wall-clock completion time (execution + pauses).
    #[must_use]
    pub fn total_time(&self) -> Seconds {
        self.run_time + self.paused_time
    }

    /// Total energy including idle consumption during pauses.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.work_energy + self.idle_energy
    }

    /// Whole-run inefficiency achieved, against the same per-sample `Emin`
    /// the inefficiency-budget algorithms use.
    #[must_use]
    pub fn inefficiency(&self, data: &CharacterizationGrid) -> f64 {
        self.total_energy() / data.total_emin()
    }
}

/// A Cinder-style energy rate limiter.
///
/// The application runs at a fixed setting; whenever the current window's
/// allotment is exhausted mid-sample, the remainder of the window is spent
/// paused at `idle_power` and the allotment refreshes.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::ratelimit::RateLimiter;
/// use mcdvfs_types::{Joules, Seconds, Watts};
///
/// let limiter = RateLimiter::new(
///     Joules::from_millis(8.0),
///     Seconds::from_millis(10.0),
///     Watts::from_millis(150.0),
/// ).unwrap();
/// assert!((limiter.average_power_cap().value() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiter {
    budget_per_window: Joules,
    window: Seconds,
    idle_power: Watts,
}

impl RateLimiter {
    /// Creates a limiter granting `budget_per_window` joules every
    /// `window`; pauses burn `idle_power`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the budget or window is
    /// not positive, or idle power is negative.
    pub fn new(budget_per_window: Joules, window: Seconds, idle_power: Watts) -> Result<Self> {
        if !(budget_per_window.value() > 0.0 && budget_per_window.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "budget_per_window",
                reason: "must be positive and finite".into(),
            });
        }
        if !(window.value() > 0.0 && window.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "window",
                reason: "must be positive and finite".into(),
            });
        }
        if !(idle_power.value() >= 0.0 && idle_power.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "idle_power",
                reason: "must be non-negative and finite".into(),
            });
        }
        Ok(Self {
            budget_per_window,
            window,
            idle_power,
        })
    }

    /// The limiter's long-run average power cap (budget over window).
    #[must_use]
    pub fn average_power_cap(&self) -> Watts {
        self.budget_per_window / self.window
    }

    /// Runs the whole characterized trace at `setting` under this limiter.
    ///
    /// Accounting is cumulative: every elapsed window grants one allotment;
    /// execution may not push total consumption (work **and** idle energy —
    /// the meter sees all of it) past the granted allowance. A sample that
    /// would overdraw pauses the application at window boundaries until
    /// enough allowance has accrued. Samples are atomic once started.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SettingOffGrid`] when `setting` is not on the
    /// grid, or [`Error::InvalidParameter`] when idle consumption drains a
    /// window's entire allotment while a sample is still unaffordable (the
    /// run would never finish).
    pub fn execute(
        &self,
        data: &CharacterizationGrid,
        setting: FreqSetting,
    ) -> Result<RateLimitedRun> {
        let idx = data.grid().index_of(setting).ok_or(Error::SettingOffGrid {
            setting: setting.to_string(),
        })?;

        let mut run = RateLimitedRun {
            setting,
            budget_per_window: self.budget_per_window,
            window: self.window,
            run_time: Seconds::ZERO,
            paused_time: Seconds::ZERO,
            work_energy: Joules::ZERO,
            idle_energy: Joules::ZERO,
            pauses: 0,
        };
        let window_s = self.window.value();
        let mut now = 0.0f64; // wall-clock seconds
        let mut consumed = Joules::ZERO;

        for s in 0..data.n_samples() {
            let m = data.measurement(s, idx);
            let sample_energy = m.energy();
            let mut paused_this_sample = false;
            // A sample may legitimately wait several windows; a wait of
            // thousands of windows means the allotment is hopeless for this
            // workload and the "run" has degenerated into starvation.
            let mut windows_waited = 0u64;
            const STARVATION_WINDOWS: u64 = 100_000;
            loop {
                let windows_granted = (now / window_s).floor() + 1.0;
                let allowance = self.budget_per_window * windows_granted;
                if (consumed + sample_energy).value() <= allowance.value() + 1e-15 {
                    break;
                }
                // Pause to the next window boundary; idle power is metered.
                // Guard against `now` sitting on a boundary within float
                // round-off, which would make the pause zero-length.
                let mut boundary = windows_granted * window_s;
                if boundary - now < window_s * 1e-9 {
                    boundary += window_s;
                }
                let pause = Seconds::new(boundary - now);
                let idle = self.idle_power * pause;
                windows_waited += 1;
                let net_gain = self.budget_per_window.value() - idle.value();
                if (paused_this_sample && net_gain <= 0.0) || windows_waited > STARVATION_WINDOWS {
                    return Err(Error::InvalidParameter {
                        name: "budget_per_window",
                        reason: format!(
                            "allotment {} nets {net_gain:.3e} J per window against idle \
                             consumption; a {sample_energy} sample starves",
                            self.budget_per_window
                        ),
                    });
                }
                run.paused_time += pause;
                run.idle_energy += idle;
                consumed += idle;
                now = boundary;
                if !paused_this_sample {
                    run.pauses += 1;
                    paused_this_sample = true;
                }
            }

            run.run_time += m.time;
            run.work_energy += sample_energy;
            consumed += sample_energy;
            now += m.time.value();
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        )
    }

    const IDLE: Watts = Watts::new(0.15);

    #[test]
    fn generous_budget_never_pauses() {
        let d = data(Benchmark::Bzip2, 10);
        let limiter = RateLimiter::new(
            Joules::from_millis(1000.0),
            Seconds::from_millis(10.0),
            IDLE,
        )
        .unwrap();
        let run = limiter
            .execute(&d, FreqSetting::from_mhz(800, 400))
            .unwrap();
        assert_eq!(run.pauses, 0);
        assert_eq!(run.paused_time, Seconds::ZERO);
        assert_eq!(run.idle_energy, Joules::ZERO);
        let idx = d.grid().index_of(FreqSetting::from_mhz(800, 400)).unwrap();
        assert!((run.total_time().value() - d.total_time_at(idx).value()).abs() < 1e-12);
    }

    #[test]
    fn tight_budget_pauses_and_stretches_execution() {
        let d = data(Benchmark::Gobmk, 10);
        let idx = d.grid().index_of(FreqSetting::from_mhz(800, 400)).unwrap();
        // Cap average power at ~60% of what the setting draws.
        let avg_power = d.total_energy_at(idx) / d.total_time_at(idx);
        let window = Seconds::from_millis(10.0);
        let limiter = RateLimiter::new(avg_power * 0.6 * window, window, IDLE).unwrap();
        let run = limiter
            .execute(&d, FreqSetting::from_mhz(800, 400))
            .unwrap();
        assert!(run.pauses > 0, "the limiter must kick in");
        assert!(run.total_time() > d.total_time_at(idx));
    }

    #[test]
    fn pausing_wastes_energy_versus_inefficiency_budgeting() {
        // The paper's core argument: at equal total energy, the
        // inefficiency-constrained tuner delivers better performance
        // because the limiter burns idle energy achieving nothing.
        use crate::governor::OracleOptimalGovernor;
        use crate::runner::GovernedRun;
        use std::sync::Arc;

        let d = Arc::new(data(Benchmark::Gobmk, 30));
        let budget = crate::InefficiencyBudget::bounded(1.2).unwrap();
        let mut governor = OracleOptimalGovernor::new(Arc::clone(&d), budget);
        let tuned = GovernedRun::without_overheads().execute(
            &d,
            &Benchmark::Gobmk.trace().window(0, 30),
            &mut governor,
        );

        // Rate limiter at max setting, capped to the tuned run's average power.
        let cap = tuned.total_energy() / tuned.total_time();
        let window = Seconds::from_millis(10.0);
        let limiter = RateLimiter::new(cap * window, window, IDLE).unwrap();
        let limited = limiter.execute(&d, d.grid().max_setting()).unwrap();

        assert!(
            limited.total_time() > tuned.total_time(),
            "rate limiting {} s vs inefficiency budget {} s at the same power cap",
            limited.total_time().value(),
            tuned.total_time().value()
        );
        assert!(
            limited.idle_energy.value() > 0.0,
            "pauses burn energy for nothing"
        );
    }

    #[test]
    fn inefficiency_of_limited_run_exceeds_untuned_floor() {
        let d = data(Benchmark::Milc, 15);
        let idx = d.grid().index_of(FreqSetting::from_mhz(1000, 800)).unwrap();
        let avg_power = d.total_energy_at(idx) / d.total_time_at(idx);
        let window = Seconds::from_millis(5.0);
        let limiter = RateLimiter::new(avg_power * 0.7 * window, window, IDLE).unwrap();
        let run = limiter
            .execute(&d, FreqSetting::from_mhz(1000, 800))
            .unwrap();
        // Idle burn makes the limited run strictly less efficient than the
        // same setting unthrottled.
        let unthrottled = d.total_energy_at(idx).value() / d.total_emin().value();
        assert!(run.inefficiency(&d) > unthrottled);
    }

    #[test]
    fn idle_dominated_budget_starves_and_is_reported() {
        // The window's allotment doesn't even cover idle consumption: the
        // application can never bank enough to run.
        let d = data(Benchmark::Lbm, 5);
        let limiter = RateLimiter::new(
            Joules::from_micros(100.0),
            Seconds::from_millis(1.0),
            Watts::from_millis(150.0), // 150 µJ idle per 100 µJ window
        )
        .unwrap();
        let err = limiter
            .execute(&d, FreqSetting::from_mhz(500, 400))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn pathologically_small_budget_is_reported_as_starvation() {
        let d = data(Benchmark::Lbm, 5);
        let limiter = RateLimiter::new(
            Joules::from_nanos(1.0),
            Seconds::from_millis(1.0),
            Watts::ZERO,
        )
        .unwrap();
        let err = limiter
            .execute(&d, FreqSetting::from_mhz(500, 400))
            .unwrap_err();
        assert!(err.to_string().contains("starves"));
    }

    #[test]
    fn off_grid_setting_rejected() {
        let d = data(Benchmark::Lbm, 3);
        let limiter = RateLimiter::new(Joules::new(1.0), Seconds::new(0.01), IDLE).unwrap();
        assert!(limiter
            .execute(&d, FreqSetting::from_mhz(123, 456))
            .is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(RateLimiter::new(Joules::ZERO, Seconds::new(1.0), IDLE).is_err());
        assert!(RateLimiter::new(Joules::new(1.0), Seconds::ZERO, IDLE).is_err());
        assert!(RateLimiter::new(Joules::new(1.0), Seconds::new(1.0), Watts::new(-1.0)).is_err());
    }

    #[test]
    fn average_power_cap_is_budget_over_window() {
        let limiter =
            RateLimiter::new(Joules::from_millis(5.0), Seconds::from_millis(10.0), IDLE).unwrap();
        assert!((limiter.average_power_cap().value() - 0.5).abs() < 1e-12);
    }
}
