//! Stable regions.
//!
//! "We define the term stable regions as regions in which at least one pair
//! of CPU and memory frequency settings is common among all samples in the
//! region." (Section VI)
//!
//! The paper's algorithm: walk the trace sample by sample, intersecting the
//! running set of available settings with each sample's performance
//! cluster. When the intersection would become empty, close the region —
//! choosing, from the settings that survived, the one with the highest CPU
//! and then memory frequency — and start a new region at the current
//! sample.
//!
//! The running intersection is a [`SettingSet`] word-AND (eight `u64` ANDs
//! on the fine grid) rather than a sorted-`Vec` merge, with the per-region
//! index `Vec` derived once when a region closes.

use crate::clusters::PerformanceCluster;
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{FreqSetting, SettingSet};

/// One stable region: a maximal run of samples sharing a common setting.
#[derive(Debug, Clone, PartialEq)]
pub struct StableRegion {
    /// First sample of the region (inclusive).
    pub start: usize,
    /// One past the last sample of the region (exclusive).
    pub end: usize,
    /// Flat grid index of the chosen representative setting (highest CPU,
    /// then memory, among the surviving common settings).
    pub chosen_index: usize,
    /// Settings common to every sample in the region, as a bitset.
    available_set: SettingSet,
    /// Flat grid indices of *all* settings common to every sample in the
    /// region, ascending — derived from `available_set`.
    available: Vec<usize>,
}

impl StableRegion {
    /// Region length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the region spans no samples. Construction guarantees
    /// `start < end`, so this is `false` for every region produced by
    /// [`stable_regions`] — but the answer comes from the data, not from
    /// that assumption.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All settings common to every sample of the region, ascending.
    #[must_use]
    pub fn available_indices(&self) -> &[usize] {
        &self.available
    }

    /// The region's common settings as a bitset.
    #[must_use]
    pub fn available_set(&self) -> &SettingSet {
        &self.available_set
    }

    /// The representative setting resolved against `data`'s grid.
    #[must_use]
    pub fn chosen_setting(&self, data: &CharacterizationGrid) -> FreqSetting {
        data.grid()
            .get(self.chosen_index)
            .expect("chosen index on grid")
    }

    /// `true` when `sample` falls inside the region.
    #[must_use]
    pub fn contains_sample(&self, sample: usize) -> bool {
        (self.start..self.end).contains(&sample)
    }

    /// The available setting that consumes the least total energy over the
    /// region's samples.
    ///
    /// The default representative ([`Self::chosen_setting`]) maximizes
    /// performance per the paper's Section VI-B rule; this alternative
    /// realizes the Section VI-C observation that "with an increase in
    /// cluster threshold, energy consumption decreases because lower
    /// frequency settings can be chosen" — every member is within the
    /// performance threshold anyway, so picking the cheapest one trades
    /// bounded performance for energy.
    #[must_use]
    pub fn most_efficient_setting(&self, data: &CharacterizationGrid) -> FreqSetting {
        let idx = self
            .available
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ea: f64 = (self.start..self.end)
                    .map(|s| data.measurement(s, a).energy().value())
                    .sum();
                let eb: f64 = (self.start..self.end)
                    .map(|s| data.measurement(s, b).energy().value())
                    .sum();
                ea.partial_cmp(&eb).expect("energies are finite")
            })
            .expect("region has at least one setting");
        data.grid().get(idx).expect("available index on grid")
    }
}

/// Splits a cluster series into stable regions.
///
/// The regions partition `[0, clusters.len())`; running the whole trace at
/// each region's chosen setting requires exactly `regions.len() - 1`
/// frequency transitions.
///
/// # Panics
///
/// Panics if `clusters` is not indexed `0..n` in order (i.e. was not
/// produced by [`cluster_series`](crate::cluster_series)).
///
/// # Examples
///
/// ```
/// use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget};
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let data = CharacterizationGrid::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Lbm.trace().window(0, 30),
///     FrequencyGrid::coarse(),
/// );
/// let clusters = cluster_series(&data, InefficiencyBudget::bounded(1.3).unwrap(), 0.05).unwrap();
/// let regions = stable_regions(&clusters);
/// // lbm is steady: a handful of regions cover 30 samples.
/// assert!(regions.len() <= 4);
/// assert_eq!(regions.iter().map(|r| r.len()).sum::<usize>(), 30);
/// ```
#[must_use]
pub fn stable_regions(clusters: &[PerformanceCluster]) -> Vec<StableRegion> {
    for (i, c) in clusters.iter().enumerate() {
        assert_eq!(c.sample, i, "clusters must be a contiguous 0..n series");
    }
    let mut regions = Vec::new();
    if clusters.is_empty() {
        return regions;
    }

    let mut start = 0usize;
    let mut available = *clusters[0].member_set();
    for (s, cluster) in clusters.iter().enumerate().skip(1) {
        let next = available.intersection(cluster.member_set());
        if next.is_empty() {
            regions.push(close_region(start, s, available));
            start = s;
            available = *cluster.member_set();
        } else {
            available = next;
        }
    }
    regions.push(close_region(start, clusters.len(), available));
    regions
}

fn close_region(start: usize, end: usize, available: SettingSet) -> StableRegion {
    debug_assert!(start < end, "regions must span at least one sample");
    // Grid indices are ascending in (cpu, mem) lexicographic order, so the
    // highest set bit is the paper's highest-CPU-then-memory choice.
    let chosen_index = available
        .max_index()
        .expect("region has at least one setting");
    StableRegion {
        start,
        end,
        chosen_index,
        available: available.to_vec(),
        available_set: available,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::cluster_series;
    use crate::inefficiency::InefficiencyBudget;
    use mcdvfs_sim::{CharacterizationGrid, System};
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn clusters_for(
        b: Benchmark,
        n: usize,
        budget: f64,
        thr: f64,
    ) -> (CharacterizationGrid, Vec<PerformanceCluster>) {
        let d = CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        );
        let c = cluster_series(&d, InefficiencyBudget::bounded(budget).unwrap(), thr).unwrap();
        (d, c)
    }

    #[test]
    fn regions_are_never_empty() {
        let (_, c) = clusters_for(Benchmark::Gobmk, 30, 1.3, 0.01);
        for r in stable_regions(&c) {
            assert!(!r.is_empty());
        }
        // And the answer is honest, not hard-coded: a degenerate region
        // reports itself empty.
        let degenerate = StableRegion {
            start: 3,
            end: 3,
            chosen_index: 0,
            available_set: SettingSet::from_indices(70, [0]),
            available: vec![0],
        };
        assert!(degenerate.is_empty());
    }

    #[test]
    fn regions_partition_the_trace() {
        let (_, c) = clusters_for(Benchmark::Gobmk, 30, 1.3, 0.01);
        let regions = stable_regions(&c);
        assert_eq!(regions[0].start, 0);
        assert_eq!(regions.last().unwrap().end, 30);
        for w in regions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "regions must be contiguous");
        }
        assert_eq!(regions.iter().map(StableRegion::len).sum::<usize>(), 30);
    }

    #[test]
    fn chosen_setting_is_in_every_member_cluster() {
        let (_, c) = clusters_for(Benchmark::Gcc, 40, 1.3, 0.03);
        for r in stable_regions(&c) {
            for (s, cluster) in c.iter().enumerate().take(r.end).skip(r.start) {
                assert!(
                    cluster.contains_index(r.chosen_index),
                    "region {}..{} chose {} not in cluster of sample {s}",
                    r.start,
                    r.end,
                    r.chosen_index
                );
                assert!(r.contains_sample(s));
            }
        }
    }

    #[test]
    fn every_available_setting_is_common_to_the_region() {
        let (_, c) = clusters_for(Benchmark::Milc, 30, 1.3, 0.05);
        for r in stable_regions(&c) {
            assert_eq!(r.available_set().to_vec(), r.available_indices());
            for &idx in r.available_indices() {
                for cluster in &c[r.start..r.end] {
                    assert!(cluster.contains_index(idx));
                }
            }
            // Equivalently, the available set is a subset of every member
            // cluster in the region.
            for cluster in &c[r.start..r.end] {
                assert!(r.available_set().is_subset(cluster.member_set()));
            }
        }
    }

    #[test]
    fn regions_are_maximal() {
        // Extending any region by one sample must empty the intersection.
        let (_, c) = clusters_for(Benchmark::Gobmk, 40, 1.0, 0.01);
        let regions = stable_regions(&c);
        for r in &regions {
            if r.end < c.len() {
                let extended = r.available_set().intersection(c[r.end].member_set());
                assert!(
                    extended.is_empty(),
                    "region {}..{} could have been extended",
                    r.start,
                    r.end
                );
            }
        }
    }

    #[test]
    fn chosen_is_highest_cpu_then_memory() {
        let (d, c) = clusters_for(Benchmark::Lbm, 20, 1.3, 0.05);
        for r in stable_regions(&c) {
            let chosen = r.chosen_setting(&d);
            for &idx in r.available_indices() {
                let other = d.grid().get(idx).unwrap();
                assert!(other <= chosen, "{other} > chosen {chosen}");
            }
        }
    }

    #[test]
    fn steady_workload_has_fewer_regions_than_phasey_one() {
        let (_, cl) = clusters_for(Benchmark::Lbm, 40, 1.3, 0.05);
        let (_, cg) = clusters_for(Benchmark::Gobmk, 40, 1.3, 0.05);
        let lbm_regions = stable_regions(&cl).len();
        let gobmk_regions = stable_regions(&cg).len();
        assert!(
            lbm_regions < gobmk_regions,
            "lbm {lbm_regions} vs gobmk {gobmk_regions}"
        );
    }

    #[test]
    fn higher_threshold_means_no_more_regions() {
        // Higher cluster thresholds increase stable-region length (paper
        // observation), so the region count cannot grow.
        for b in [Benchmark::Gcc, Benchmark::Gobmk, Benchmark::Milc] {
            let (_, tight) = clusters_for(b, 40, 1.3, 0.01);
            let (_, loose) = clusters_for(b, 40, 1.3, 0.05);
            assert!(
                stable_regions(&loose).len() <= stable_regions(&tight).len(),
                "{b:?}"
            );
        }
    }

    #[test]
    fn empty_cluster_series_yields_no_regions() {
        assert!(stable_regions(&[]).is_empty());
    }

    #[test]
    fn single_sample_trace_is_one_region() {
        let (_, c) = clusters_for(Benchmark::Bzip2, 1, 1.3, 0.01);
        let regions = stable_regions(&c);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len(), 1);
    }
}
