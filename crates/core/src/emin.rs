//! `Emin` estimation.
//!
//! Computing inefficiency needs the minimum energy the sample could have
//! consumed. The paper proposes two routes (Section II-B), both provided
//! here against a [`CharacterizationGrid`]:
//!
//! * [`BruteForceEmin`] — evaluate the energy model at every possible
//!   setting and take the minimum. Exact but expensive; its cost is what
//!   the tuning-overhead model charges per search.
//! * [`LookupTableEmin`] — brute force once, memoize per sample. Same
//!   answers at O(1) repeat cost.
//! * [`LearningEmin`] — predict `Emin` from previous observations with an
//!   exponentially weighted moving average over a CPI-bucketed phase key,
//!   falling back to brute force on cold buckets and learning continuously.

use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::Joules;
use std::collections::HashMap;

/// A strategy for obtaining per-sample `Emin`.
pub trait EminEstimator {
    /// Estimated minimum energy for sample `s`.
    fn emin(&mut self, data: &CharacterizationGrid, s: usize) -> Joules;

    /// Number of full grid scans performed so far (the expensive part; the
    /// tuning-overhead model charges per scan).
    fn scans(&self) -> u64;
}

/// Exact `Emin` by scanning every setting, every time.
#[derive(Debug, Clone, Default)]
pub struct BruteForceEmin {
    scans: u64,
}

impl BruteForceEmin {
    /// Creates a fresh estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EminEstimator for BruteForceEmin {
    fn emin(&mut self, data: &CharacterizationGrid, s: usize) -> Joules {
        self.scans += 1;
        data.sample_row(s)
            .iter()
            .map(|m| m.energy())
            .fold(Joules::new(f64::INFINITY), Joules::min)
    }

    fn scans(&self) -> u64 {
        self.scans
    }
}

/// Brute force once per sample, memoized thereafter.
#[derive(Debug, Clone, Default)]
pub struct LookupTableEmin {
    table: HashMap<usize, Joules>,
    scans: u64,
}

impl LookupTableEmin {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl EminEstimator for LookupTableEmin {
    fn emin(&mut self, data: &CharacterizationGrid, s: usize) -> Joules {
        if let Some(&e) = self.table.get(&s) {
            return e;
        }
        self.scans += 1;
        let e = data.sample_emin(s);
        self.table.insert(s, e);
        e
    }

    fn scans(&self) -> u64 {
        self.scans
    }
}

/// Learning-based `Emin` predictor.
///
/// Samples are bucketed by quantized CPI at the reference (maximum)
/// setting — a cheap observable phase signature. Each bucket holds an EWMA
/// of observed `Emin`. Cold buckets fall back to a brute-force scan (and
/// seed the bucket); warm buckets predict at zero scan cost and then update
/// from the true value, so the predictor keeps learning.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::emin::{EminEstimator, LearningEmin};
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let data = CharacterizationGrid::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Lbm.trace().window(0, 20),
///     FrequencyGrid::coarse(),
/// );
/// let mut predictor = LearningEmin::new(0.25);
/// for s in 0..data.n_samples() {
///     let _ = predictor.emin(&data, s);
/// }
/// // lbm is steady: after the first scan the phase bucket stays warm.
/// assert!(predictor.scans() < data.n_samples() as u64 / 2);
/// ```
#[derive(Debug, Clone)]
pub struct LearningEmin {
    /// EWMA smoothing factor in `(0, 1]`; higher forgets faster.
    alpha: f64,
    buckets: HashMap<u32, f64>,
    scans: u64,
    predictions: u64,
}

impl LearningEmin {
    /// Creates a predictor with EWMA factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            buckets: HashMap::new(),
            scans: 0,
            predictions: 0,
        }
    }

    /// Number of warm-bucket predictions served without a scan.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Phase signature: CPI at the grid's maximum setting, quantized to
    /// 0.25-CPI buckets.
    fn bucket(data: &CharacterizationGrid, s: usize) -> u32 {
        let max_idx = data.n_settings() - 1;
        (data.measurement(s, max_idx).cpi / 0.25).round() as u32
    }

    /// Mean absolute relative error of the predictor against exact `Emin`
    /// over all samples of `data` (diagnostic; does not mutate state).
    #[must_use]
    pub fn validation_error(&self, data: &CharacterizationGrid) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in 0..data.n_samples() {
            if let Some(&predicted) = self.buckets.get(&Self::bucket(data, s)) {
                let exact = data.sample_emin(s).value();
                total += (predicted - exact).abs() / exact;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

impl EminEstimator for LearningEmin {
    fn emin(&mut self, data: &CharacterizationGrid, s: usize) -> Joules {
        let key = Self::bucket(data, s);
        match self.buckets.get(&key).copied() {
            Some(predicted) => {
                self.predictions += 1;
                // Continuous learning: blend in the true value (available
                // here because the grid is measured; a real system would
                // refine from its next scan).
                let exact = data.sample_emin(s).value();
                self.buckets
                    .insert(key, predicted + self.alpha * (exact - predicted));
                Joules::new(predicted)
            }
            None => {
                self.scans += 1;
                let exact = data.sample_emin(s);
                self.buckets.insert(key, exact.value());
                exact
            }
        }
    }

    fn scans(&self) -> u64 {
        self.scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::new(200, 1000, 200, 200, 800, 200).unwrap(),
        )
    }

    #[test]
    fn brute_force_matches_grid_cache() {
        let d = data(Benchmark::Gobmk, 8);
        let mut bf = BruteForceEmin::new();
        for s in 0..d.n_samples() {
            assert_eq!(bf.emin(&d, s), d.sample_emin(s));
        }
        assert_eq!(bf.scans(), 8);
    }

    #[test]
    fn lookup_table_scans_each_sample_once() {
        let d = data(Benchmark::Gobmk, 6);
        let mut lut = LookupTableEmin::new();
        assert!(lut.is_empty());
        for _ in 0..3 {
            for s in 0..d.n_samples() {
                assert_eq!(lut.emin(&d, s), d.sample_emin(s));
            }
        }
        assert_eq!(lut.scans(), 6, "one scan per distinct sample");
        assert_eq!(lut.len(), 6);
    }

    #[test]
    fn learning_predictor_is_cheap_on_steady_workloads() {
        let d = data(Benchmark::Lbm, 20);
        let mut learn = LearningEmin::new(0.3);
        for s in 0..d.n_samples() {
            let e = learn.emin(&d, s);
            assert!(e.value() > 0.0);
        }
        assert!(
            learn.scans() <= 4,
            "lbm phase buckets: {} scans",
            learn.scans()
        );
        assert!(learn.predictions() >= 16);
    }

    #[test]
    fn learning_predictor_error_is_small_on_steady_workloads() {
        let d = data(Benchmark::Lbm, 20);
        let mut learn = LearningEmin::new(0.3);
        for s in 0..d.n_samples() {
            let _ = learn.emin(&d, s);
        }
        let err = learn.validation_error(&d);
        assert!(err < 0.05, "validation error {err}");
    }

    #[test]
    fn learning_predictor_scans_more_on_phasey_workloads() {
        let dg = data(Benchmark::Gobmk, 20);
        let dl = data(Benchmark::Lbm, 20);
        let mut lg = LearningEmin::new(0.3);
        let mut ll = LearningEmin::new(0.3);
        for s in 0..20 {
            let _ = lg.emin(&dg, s);
            let _ = ll.emin(&dl, s);
        }
        assert!(
            lg.scans() >= ll.scans(),
            "gobmk ({}) should need at least as many scans as lbm ({})",
            lg.scans(),
            ll.scans()
        );
    }

    #[test]
    fn predictions_stay_close_to_exact() {
        let d = data(Benchmark::Milc, 25);
        let mut learn = LearningEmin::new(0.5);
        for s in 0..d.n_samples() {
            let predicted = learn.emin(&d, s).value();
            let exact = d.sample_emin(s).value();
            let err = (predicted - exact).abs() / exact;
            assert!(err < 0.25, "sample {s}: prediction off by {err}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = LearningEmin::new(0.0);
    }
}
