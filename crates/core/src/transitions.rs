//! Frequency-transition statistics (the paper's Figure 8).
//!
//! The paper reports *transitions per billion instructions* for tracking
//! the optimal settings exactly versus staying inside performance clusters
//! at 1%, 3% and 5% thresholds, across inefficiency budgets.

use crate::clusters::PerformanceCluster;
use crate::optimal::OptimalChoice;
use crate::stable::{stable_regions, StableRegion};
use mcdvfs_types::INSTRUCTIONS_PER_SAMPLE;

/// Counts the setting changes made when tracking a per-sample decision
/// series exactly (a transition whenever consecutive samples choose
/// different settings).
#[must_use]
pub fn count_optimal_transitions(series: &[OptimalChoice]) -> usize {
    series
        .windows(2)
        .filter(|w| w[0].setting != w[1].setting)
        .count()
}

/// Counts the transitions a cluster-following tuner makes: one per stable
/// region boundary.
#[must_use]
pub fn count_cluster_transitions(clusters: &[PerformanceCluster]) -> usize {
    stable_regions(clusters).len().saturating_sub(1)
}

/// Normalizes a transition count to the paper's *per billion instructions*
/// unit, given the number of 10 M-instruction samples it was counted over.
///
/// # Panics
///
/// Panics when `samples` is zero.
#[must_use]
pub fn per_billion_instructions(transitions: usize, samples: usize) -> f64 {
    assert!(samples > 0, "cannot normalize over zero samples");
    let instructions = samples as u64 * INSTRUCTIONS_PER_SAMPLE;
    transitions as f64 * 1e9 / instructions as f64
}

/// Lengths of each stable region in samples, for the paper's Figure 9
/// distribution plots.
#[must_use]
pub fn region_lengths(regions: &[StableRegion]) -> Vec<usize> {
    regions.iter().map(StableRegion::len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::cluster_series;
    use crate::inefficiency::InefficiencyBudget;
    use crate::optimal::OptimalFinder;
    use mcdvfs_sim::{CharacterizationGrid, System};
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        )
    }

    #[test]
    fn optimal_tracking_produces_the_most_transitions() {
        // Figure 8's headline: tracking optimal settings needs the most
        // transitions; clusters need fewer, monotonically in threshold.
        let d = data(Benchmark::Gobmk, 50);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let optimal = OptimalFinder::new(budget).series(&d);
        let n_opt = count_optimal_transitions(&optimal);
        let mut prev = n_opt;
        for thr in [0.01, 0.03, 0.05] {
            let clusters = cluster_series(&d, budget, thr).unwrap();
            let n = count_cluster_transitions(&clusters);
            assert!(n <= prev, "threshold {thr}: {n} > {prev}");
            prev = n;
        }
        assert!(n_opt > 0, "gobmk must transition when tracked exactly");
    }

    #[test]
    fn per_billion_normalization() {
        // 50 samples = 500 M instructions; 10 transitions = 20 per billion.
        assert!((per_billion_instructions(10, 50) - 20.0).abs() < 1e-12);
        assert_eq!(per_billion_instructions(0, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn zero_samples_panics() {
        let _ = per_billion_instructions(1, 0);
    }

    #[test]
    fn steady_workload_needs_few_transitions() {
        let d = data(Benchmark::Lbm, 40);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let clusters = cluster_series(&d, budget, 0.05).unwrap();
        let n = count_cluster_transitions(&clusters);
        assert!(n <= 3, "lbm at 5%: {n} transitions");
    }

    #[test]
    fn region_lengths_sum_to_trace_length() {
        let d = data(Benchmark::Gcc, 60);
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let clusters = cluster_series(&d, budget, 0.03).unwrap();
        let lengths = region_lengths(&stable_regions(&clusters));
        assert_eq!(lengths.iter().sum::<usize>(), 60);
        assert!(lengths.iter().all(|&l| l >= 1));
    }

    #[test]
    fn constant_series_has_zero_transitions() {
        let d = data(Benchmark::Bzip2, 10);
        let series = OptimalFinder::new(InefficiencyBudget::Unconstrained).series(&d);
        assert_eq!(count_optimal_transitions(&series), 0);
    }
}
