//! Parallel analysis sweeps over one characterization.
//!
//! The paper's evaluation repeats the same derivation — optimal series,
//! performance clusters, stable regions — across a grid of inefficiency
//! budgets and cluster thresholds (Figures 4–12). Rederiving the optimal
//! series for every `(budget, threshold)` point is wasted work: the series
//! depends only on the budget, and each point is independent of the
//! others.
//!
//! [`SweepEngine`] characterizes **once**, computes each budget's optimal
//! series **once**, and fans the point grid out over scoped worker threads
//! (the same contiguous-chunk pattern as
//! [`CharacterizationGrid::characterize_parallel`]). Results come back in
//! deterministic budget-major order and are bit-identical to running the
//! sequential single-point pipeline at every grid point — the equivalence
//! suite asserts exactly that.

use crate::clusters::{cluster_series_with_optimal, PerformanceCluster};
use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use crate::optimal::{OptimalChoice, OptimalFinder};
use crate::runner::{GovernedRun, RunReport};
use crate::stable::{stable_regions, StableRegion};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_types::{Error, FrequencyGrid, Result};
use mcdvfs_workloads::SampleTrace;
use std::sync::Arc;

/// Runs `f` over every job on up to `threads` scoped workers, returning
/// results in job order.
///
/// Jobs are split into contiguous chunks (one per worker), so the output
/// order — and therefore everything derived from it — is independent of
/// the thread count. With one thread (or one job) no threads are spawned.
///
/// # Panics
///
/// Panics when `threads` is zero, or when a worker panics.
pub fn fan_out<T, R>(jobs: &[T], threads: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    assert!(threads >= 1, "fan_out needs at least one worker");
    if threads == 1 || jobs.len() <= 1 {
        return jobs.iter().map(f).collect();
    }
    let chunk = jobs.len().div_ceil(threads.min(jobs.len()));
    let mut out = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("sweep worker panicked"));
        }
    });
    out
}

/// One point of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Inefficiency budget of this point.
    pub budget: InefficiencyBudget,
    /// Cluster threshold of this point (e.g. `0.05` for 5%).
    pub threshold: f64,
}

/// Everything the analysis pipeline derives at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The grid point this outcome belongs to.
    pub point: SweepPoint,
    /// The budget's optimal series — shared (not recomputed) across every
    /// threshold swept at the same budget.
    pub optimal: Arc<Vec<OptimalChoice>>,
    /// Per-sample performance clusters at this point.
    pub clusters: Vec<PerformanceCluster>,
    /// Stable regions of the cluster series.
    pub regions: Vec<StableRegion>,
}

impl SweepOutcome {
    /// Mean cluster size in settings.
    #[must_use]
    pub fn mean_cluster_size(&self) -> f64 {
        self.clusters.iter().map(|c| c.len() as f64).sum::<f64>() / self.clusters.len() as f64
    }

    /// Mean stable-region length in samples.
    #[must_use]
    pub fn mean_region_len(&self) -> f64 {
        self.regions.iter().map(|r| r.len() as f64).sum::<f64>() / self.regions.len() as f64
    }
}

/// Characterize-once, analyze-many driver for budget × threshold grids.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::{InefficiencyBudget, SweepEngine};
/// use mcdvfs_sim::System;
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let engine = SweepEngine::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Gobmk.trace().window(0, 20),
///     FrequencyGrid::coarse(),
/// );
/// let budgets = [
///     InefficiencyBudget::bounded(1.0).unwrap(),
///     InefficiencyBudget::bounded(1.3).unwrap(),
/// ];
/// let outcomes = engine.sweep(&budgets, &[0.01, 0.05]).unwrap();
/// assert_eq!(outcomes.len(), 4); // budget-major: (1.0,1%), (1.0,5%), ...
/// assert!(outcomes.iter().all(|o| !o.regions.is_empty()));
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    data: Arc<CharacterizationGrid>,
    threads: usize,
}

impl SweepEngine {
    /// Wraps an existing characterization, sizing the worker pool from
    /// [`CharacterizationGrid::default_threads`].
    #[must_use]
    pub fn new(data: Arc<CharacterizationGrid>) -> Self {
        Self::with_threads(data, CharacterizationGrid::default_threads())
    }

    /// Wraps an existing characterization with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_threads(data: Arc<CharacterizationGrid>, threads: usize) -> Self {
        assert!(threads >= 1, "sweep engine needs at least one worker");
        Self { data, threads }
    }

    /// Characterizes `trace` on `grid` (parallel, auto-sized) and wraps
    /// the result.
    #[must_use]
    pub fn characterize(system: &System, trace: &SampleTrace, grid: FrequencyGrid) -> Self {
        Self::new(Arc::new(CharacterizationGrid::characterize_auto(
            system, trace, grid,
        )))
    }

    /// The shared characterization the sweeps read.
    #[must_use]
    pub fn data(&self) -> &Arc<CharacterizationGrid> {
        &self.data
    }

    /// Worker-pool size.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Optimal series for each finder, in input order, computed in
    /// parallel. Finders may differ in budget, tie tolerance, or both
    /// (the tie-break ablation sweeps tolerance at fixed budgets).
    #[must_use]
    pub fn optimal_sweep(&self, finders: &[OptimalFinder]) -> Vec<Vec<OptimalChoice>> {
        fan_out(finders, self.threads, |f| f.series(&self.data))
    }

    /// Derives optimal series, clusters and stable regions at every
    /// `(budget, threshold)` grid point, in budget-major order (all
    /// thresholds of `budgets[0]`, then `budgets[1]`, …).
    ///
    /// Each budget's optimal series is computed once and shared across its
    /// thresholds; the points themselves run on the worker pool. Results
    /// are bit-identical to the sequential
    /// [`cluster_series`](crate::cluster_series) /
    /// [`stable_regions`] pipeline at every point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any threshold is outside
    /// `[0, 0.5]` — checked up front, before any work is spawned.
    pub fn sweep(
        &self,
        budgets: &[InefficiencyBudget],
        thresholds: &[f64],
    ) -> Result<Vec<SweepOutcome>> {
        for &thr in thresholds {
            if !(0.0..=0.5).contains(&thr) {
                return Err(Error::InvalidParameter {
                    name: "threshold",
                    reason: format!("cluster threshold must be in [0, 0.5], got {thr}"),
                });
            }
        }
        let finders: Vec<OptimalFinder> = budgets.iter().map(|&b| OptimalFinder::new(b)).collect();
        let optimal: Vec<Arc<Vec<OptimalChoice>>> = self
            .optimal_sweep(&finders)
            .into_iter()
            .map(Arc::new)
            .collect();
        let jobs: Vec<(usize, f64)> = (0..budgets.len())
            .flat_map(|bi| thresholds.iter().map(move |&thr| (bi, thr)))
            .collect();
        Ok(fan_out(&jobs, self.threads, |&(bi, thr)| {
            let clusters = cluster_series_with_optimal(&self.data, &finders[bi], &optimal[bi], thr)
                .expect("thresholds validated above");
            let regions = stable_regions(&clusters);
            SweepOutcome {
                point: SweepPoint {
                    budget: budgets[bi],
                    threshold: thr,
                },
                optimal: Arc::clone(&optimal[bi]),
                clusters,
                regions,
            }
        }))
    }

    /// Governed oracle-optimal runs for each budget, in input order,
    /// executed on the worker pool.
    ///
    /// Each budget's plan (its optimal series) is derived once and then
    /// replayed through `runner`; the replay makes the same
    /// full-grid-search decisions as
    /// [`OracleOptimalGovernor`](crate::governor::OracleOptimalGovernor)
    /// and carries the same governor name, so the [`RunReport`]s are
    /// equal to executing that governor directly.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the engine's characterization disagree on
    /// sample count.
    #[must_use]
    pub fn governed_reports(
        &self,
        runner: &GovernedRun,
        trace: &SampleTrace,
        budgets: &[InefficiencyBudget],
    ) -> Vec<RunReport> {
        let finders: Vec<OptimalFinder> = budgets.iter().map(|&b| OptimalFinder::new(b)).collect();
        let plans = self.optimal_sweep(&finders);
        let jobs: Vec<(InefficiencyBudget, Vec<OptimalChoice>)> =
            budgets.iter().copied().zip(plans).collect();
        fan_out(&jobs, self.threads, |(budget, plan)| {
            let mut governor = PlanGovernor {
                name: format!("oracle-optimal({budget})"),
                plan,
                n_settings: self.data.n_settings(),
            };
            runner.execute(&self.data, trace, &mut governor)
        })
    }
}

/// Replays a precomputed optimal plan, reporting the same name and search
/// charges as the oracle governor that would have derived it live.
struct PlanGovernor<'a> {
    name: String,
    plan: &'a [OptimalChoice],
    n_settings: usize,
}

impl Governor for PlanGovernor<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        let choice = &self.plan[next_sample.min(self.plan.len() - 1)];
        // The oracle searches the full grid every sample; the replay
        // charges identically.
        Decision::searched(choice.setting, self.n_settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::cluster_series;
    use crate::governor::OracleOptimalGovernor;
    use mcdvfs_workloads::Benchmark;

    fn engine(n: usize) -> (SweepEngine, SampleTrace) {
        let trace = Benchmark::Gobmk.trace().window(0, n);
        let e = SweepEngine::characterize(
            &System::galaxy_nexus_class(),
            &trace,
            FrequencyGrid::coarse(),
        );
        (e, trace)
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn fan_out_preserves_job_order_at_any_width() {
        let jobs: Vec<usize> = (0..23).collect();
        let expect: Vec<usize> = jobs.iter().map(|j| j * j).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(fan_out(&jobs, threads, |&j| j * j), expect, "{threads}");
        }
        assert!(fan_out(&Vec::<usize>::new(), 4, |&j: &usize| j).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn fan_out_rejects_zero_threads() {
        let _ = fan_out(&[1], 0, |&j: &i32| j);
    }

    #[test]
    fn sweep_matches_the_sequential_pipeline_bit_for_bit() {
        let (e, _) = engine(25);
        let budgets = [budget(1.0), budget(1.3), InefficiencyBudget::Unconstrained];
        let thresholds = [0.01, 0.05];
        let outcomes = e.sweep(&budgets, &thresholds).unwrap();
        assert_eq!(outcomes.len(), budgets.len() * thresholds.len());
        let mut i = 0;
        for &b in &budgets {
            let series = OptimalFinder::new(b).series(e.data());
            for &thr in &thresholds {
                let o = &outcomes[i];
                assert_eq!(o.point.budget, b, "budget-major order");
                assert_eq!(o.point.threshold, thr);
                assert_eq!(*o.optimal.as_ref(), series);
                let clusters = cluster_series(e.data(), b, thr).unwrap();
                assert_eq!(o.clusters, clusters);
                assert_eq!(o.regions, stable_regions(&clusters));
                i += 1;
            }
        }
    }

    #[test]
    fn sweep_shares_one_optimal_series_per_budget() {
        let (e, _) = engine(10);
        let outcomes = e.sweep(&[budget(1.3)], &[0.01, 0.03, 0.05]).unwrap();
        assert!(outcomes
            .windows(2)
            .all(|w| Arc::ptr_eq(&w[0].optimal, &w[1].optimal)));
    }

    #[test]
    fn sweep_rejects_bad_thresholds_before_working() {
        let (e, _) = engine(5);
        assert!(e.sweep(&[budget(1.3)], &[0.01, 0.9]).is_err());
        assert!(e.sweep(&[budget(1.3)], &[-0.01]).is_err());
    }

    #[test]
    fn optimal_sweep_matches_per_finder_series() {
        let (e, _) = engine(15);
        let finders = [
            OptimalFinder::new(budget(1.3)),
            OptimalFinder::new(budget(1.3)).with_tie_tolerance(0.0),
            OptimalFinder::new(budget(1.6)),
        ];
        let swept = e.optimal_sweep(&finders);
        for (f, s) in finders.iter().zip(&swept) {
            assert_eq!(*s, f.series(e.data()));
        }
    }

    #[test]
    fn governed_reports_equal_the_live_oracle_governor() {
        let (e, trace) = engine(20);
        let budgets = [budget(1.0), budget(1.3), budget(1.6)];
        for runner in [
            GovernedRun::without_overheads(),
            GovernedRun::with_paper_overheads(),
        ] {
            let swept = e.governed_reports(&runner, &trace, &budgets);
            for (&b, got) in budgets.iter().zip(&swept) {
                let mut live = OracleOptimalGovernor::new(Arc::clone(e.data()), b);
                let want = runner.execute(e.data(), &trace, &mut live);
                assert_eq!(*got, want, "budget {b}");
            }
        }
    }

    #[test]
    fn outcome_means_are_consistent() {
        let (e, _) = engine(30);
        let o = &e.sweep(&[budget(1.3)], &[0.05]).unwrap()[0];
        assert!(o.mean_cluster_size() >= 1.0);
        let total: usize = o.regions.iter().map(StableRegion::len).sum();
        assert_eq!(total, 30);
        let mean = o.mean_region_len();
        assert!((mean - 30.0 / o.regions.len() as f64).abs() < 1e-12);
    }
}
