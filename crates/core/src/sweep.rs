//! Parallel analysis sweeps over one characterization.
//!
//! The paper's evaluation repeats the same derivation — optimal series,
//! performance clusters, stable regions — across a grid of inefficiency
//! budgets and cluster thresholds (Figures 4–12). Rederiving the optimal
//! series for every `(budget, threshold)` point is wasted work: the series
//! depends only on the budget, and each point is independent of the
//! others.
//!
//! [`SweepEngine`] characterizes **once**, computes each budget's optimal
//! series **once**, and fans the point grid out over scoped worker threads
//! (the same contiguous-chunk pattern as
//! [`CharacterizationGrid::characterize_parallel`]). Results come back in
//! deterministic budget-major order and are bit-identical to running the
//! sequential single-point pipeline at every grid point — the equivalence
//! suite asserts exactly that.

use crate::clusters::{cluster_series_with_optimal, PerformanceCluster};
use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use crate::optimal::{OptimalChoice, OptimalFinder};
use crate::runner::{GovernedRun, RunReport};
use crate::stable::{stable_regions, StableRegion};
use mcdvfs_obs::{count_edges, MetricSet, Profiler, SpanId};
use mcdvfs_sim::{CharacterizationGrid, System};
use mcdvfs_store::SnapshotStore;
use mcdvfs_types::{Error, FrequencyGrid, Result};
use mcdvfs_workloads::SampleTrace;
use std::sync::Arc;
use std::time::Instant;

/// Runs `f` over every job on up to `threads` scoped workers, returning
/// results in job order.
///
/// Jobs are split into contiguous chunks (one per worker), so the output
/// order — and therefore everything derived from it — is independent of
/// the thread count. `threads == 0` clamps to one worker; with one thread,
/// one job, or no jobs at all, no scope is spawned.
///
/// # Panics
///
/// Panics when a worker panics.
pub fn fan_out<T, R>(jobs: &[T], threads: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    fan_out_profiled(jobs, threads, Profiler::noop(), 0, "fan_out", |j, _| f(j))
}

/// [`fan_out`] with phase spans and per-worker metrics flowing into
/// `profiler`.
///
/// Opens one `label` span under `parent` (`0` for a root), gives every
/// worker a `worker` child span and a *private* [`MetricSet`] — `f` may
/// observe into it freely without contending with other workers — and
/// merges the per-worker sets into the profiler in worker order after the
/// scoped joins. On top of whatever `f` records, each worker contributes
/// `{label}.jobs` (counter), `{label}.worker_jobs` (count histogram whose
/// [`imbalance`](MetricSet::imbalance) is the queue-balance signal) and
/// `{label}.worker_busy_ns` (duration histogram).
///
/// Results are bit-identical to [`fan_out`]: the instrumentation never
/// touches job results, and a disabled profiler reduces every hook to a
/// branch.
///
/// # Panics
///
/// Panics when a worker panics.
pub fn fan_out_profiled<T, R>(
    jobs: &[T],
    threads: usize,
    profiler: &Profiler,
    parent: SpanId,
    label: &'static str,
    f: impl Fn(&T, &mut MetricSet) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.max(1);
    if jobs.is_empty() {
        return Vec::new();
    }
    let phase = profiler.span_under(parent, label);
    let phase_id = phase.id();
    let run_chunk = |part: &[T], metrics: &mut MetricSet| -> Vec<R> {
        let started = profiler.is_enabled().then(Instant::now);
        let out: Vec<R> = part.iter().map(|j| f(j, metrics)).collect();
        if let Some(t0) = started {
            metrics.incr(&format!("{label}.jobs"), part.len() as u64);
            metrics.observe(
                &format!("{label}.worker_jobs"),
                part.len() as f64,
                count_edges,
            );
            metrics.observe_duration_ns(
                &format!("{label}.worker_busy_ns"),
                t0.elapsed().as_nanos() as f64,
            );
        }
        out
    };
    if threads == 1 || jobs.len() == 1 {
        let mut metrics = MetricSet::new();
        let out = run_chunk(jobs, &mut metrics);
        profiler.absorb(metrics);
        return out;
    }
    let chunk = jobs.len().div_ceil(threads.min(jobs.len()));
    let mut out = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let run_chunk = &run_chunk;
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    let _worker = profiler.span_under(phase_id, "worker");
                    let mut metrics = MetricSet::new();
                    let rows = run_chunk(c, &mut metrics);
                    (rows, metrics)
                })
            })
            .collect();
        for h in handles {
            let (rows, metrics) = h.join().expect("sweep worker panicked");
            out.extend(rows);
            profiler.absorb(metrics);
        }
    });
    out
}

/// One point of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Inefficiency budget of this point.
    pub budget: InefficiencyBudget,
    /// Cluster threshold of this point (e.g. `0.05` for 5%).
    pub threshold: f64,
}

/// Everything the analysis pipeline derives at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The grid point this outcome belongs to.
    pub point: SweepPoint,
    /// The budget's optimal series — shared (not recomputed) across every
    /// threshold swept at the same budget.
    pub optimal: Arc<Vec<OptimalChoice>>,
    /// Per-sample performance clusters at this point.
    pub clusters: Vec<PerformanceCluster>,
    /// Stable regions of the cluster series.
    pub regions: Vec<StableRegion>,
}

impl SweepOutcome {
    /// Mean cluster size in settings.
    #[must_use]
    pub fn mean_cluster_size(&self) -> f64 {
        self.clusters.iter().map(|c| c.len() as f64).sum::<f64>() / self.clusters.len() as f64
    }

    /// Mean stable-region length in samples.
    #[must_use]
    pub fn mean_region_len(&self) -> f64 {
        self.regions.iter().map(|r| r.len() as f64).sum::<f64>() / self.regions.len() as f64
    }
}

/// Characterize-once, analyze-many driver for budget × threshold grids.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::{InefficiencyBudget, SweepEngine};
/// use mcdvfs_sim::System;
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let engine = SweepEngine::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Gobmk.trace().window(0, 20),
///     FrequencyGrid::coarse(),
/// );
/// let budgets = [
///     InefficiencyBudget::bounded(1.0).unwrap(),
///     InefficiencyBudget::bounded(1.3).unwrap(),
/// ];
/// let outcomes = engine.sweep(&budgets, &[0.01, 0.05]).unwrap();
/// assert_eq!(outcomes.len(), 4); // budget-major: (1.0,1%), (1.0,5%), ...
/// assert!(outcomes.iter().all(|o| !o.regions.is_empty()));
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    data: Arc<CharacterizationGrid>,
    threads: usize,
    profiler: Option<Arc<Profiler>>,
}

impl SweepEngine {
    /// Wraps an existing characterization, sizing the worker pool from
    /// [`CharacterizationGrid::default_threads`].
    #[must_use]
    pub fn new(data: Arc<CharacterizationGrid>) -> Self {
        Self::with_threads(data, CharacterizationGrid::default_threads())
    }

    /// Wraps an existing characterization with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn with_threads(data: Arc<CharacterizationGrid>, threads: usize) -> Self {
        assert!(threads >= 1, "sweep engine needs at least one worker");
        Self {
            data,
            threads,
            profiler: None,
        }
    }

    /// Attaches a profiler: every sweep method records phase spans,
    /// per-worker sample counts and queue-imbalance histograms into it.
    /// Outputs stay bit-identical — the profiler only observes.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The attached profiler, or the process-wide no-op one.
    #[must_use]
    pub fn profiler(&self) -> &Profiler {
        self.profiler.as_deref().unwrap_or(Profiler::noop())
    }

    /// Characterizes `trace` on `grid` (parallel, auto-sized) and wraps
    /// the result.
    #[must_use]
    pub fn characterize(system: &System, trace: &SampleTrace, grid: FrequencyGrid) -> Self {
        Self::new(Arc::new(CharacterizationGrid::characterize_auto(
            system, trace, grid,
        )))
    }

    /// [`Self::characterize`] with an explicit query-time worker count.
    ///
    /// The characterization itself still runs parallel and auto-sized
    /// (it is a one-off build cost and bit-identical at any width); only
    /// the per-query fan-out width is pinned. A multi-tenant server
    /// building one engine per workload shard uses `threads == 1` so N
    /// shards do not each spawn a full core-count worker set — replies
    /// stay bit-identical because every sweep entry point is
    /// thread-count-invariant.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    #[must_use]
    pub fn characterize_with_threads(
        system: &System,
        trace: &SampleTrace,
        grid: FrequencyGrid,
        threads: usize,
    ) -> Self {
        Self::with_threads(
            Arc::new(CharacterizationGrid::characterize_auto(system, trace, grid)),
            threads,
        )
    }

    /// The shared characterization the sweeps read.
    #[must_use]
    pub fn data(&self) -> &Arc<CharacterizationGrid> {
        &self.data
    }

    /// Warm-starts an engine from a persisted snapshot instead of paying
    /// for characterization.
    ///
    /// Looks `fingerprint` up in `store`; on a hit, rehydrates the grid via
    /// [`CharacterizationGrid::from_snapshot`] — the result answers every
    /// sweep query bit-identically to an engine built by fresh
    /// characterization of the same trace. Returns `Ok(None)` on a plain
    /// miss (no snapshot file), so callers fall back to characterize (and
    /// typically persist for the next cold start). The bytes read off disk
    /// ride along for the caller's telemetry.
    ///
    /// # Errors
    ///
    /// Propagates the typed [`mcdvfs_store::SnapshotError`] when a snapshot
    /// file exists but is corrupt, truncated, or from another format
    /// version — callers should treat that as a miss and recharacterize,
    /// never serve from it.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn warm_start(
        store: &SnapshotStore,
        fingerprint: u64,
        threads: usize,
    ) -> std::result::Result<Option<(Self, u64)>, mcdvfs_store::SnapshotError> {
        let Some(loaded) = store.load(fingerprint)? else {
            return Ok(None);
        };
        let bytes_read = loaded.bytes_read;
        let grid = CharacterizationGrid::from_snapshot(loaded.snapshot)?;
        Ok(Some((
            Self::with_threads(Arc::new(grid), threads),
            bytes_read,
        )))
    }

    /// Incrementally re-characterizes the dirty samples in place (see
    /// [`CharacterizationGrid::recharacterize`]), so a warm engine picks
    /// up a few changed samples without re-simulating the whole grid.
    ///
    /// If the characterization is shared (other `Arc` holders exist —
    /// e.g. engine clones or in-flight queries), it is cloned first and
    /// only this engine's copy is updated; exclusive holders are updated
    /// without copying.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the characterization disagree on sample
    /// count, or when a dirty index is out of range.
    pub fn recharacterize(&mut self, system: &System, trace: &SampleTrace, dirty: &[usize]) {
        Arc::make_mut(&mut self.data).recharacterize(system, trace, dirty);
    }

    /// Worker-pool size.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Optimal series for each finder, in input order, computed in
    /// parallel. Finders may differ in budget, tie tolerance, or both
    /// (the tie-break ablation sweeps tolerance at fixed budgets).
    #[must_use]
    pub fn optimal_sweep(&self, finders: &[OptimalFinder]) -> Vec<Vec<OptimalChoice>> {
        self.optimal_under(0, finders)
    }

    /// Optimal series under one budget — the serving layer's
    /// single-query entry point. Bit-identical to
    /// [`OptimalFinder::series`] with the same budget, at any engine
    /// thread count.
    #[must_use]
    pub fn optimal_series(&self, budget: InefficiencyBudget) -> Vec<OptimalChoice> {
        self.optimal_sweep(&[OptimalFinder::new(budget)])
            .pop()
            .expect("one finder yields one series")
    }

    /// Per-sample clusters at one `(budget, threshold)` point, deriving
    /// the optimal series once. Bit-identical to
    /// [`cluster_series`](crate::cluster_series).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `threshold` is outside
    /// `[0, 0.5]`.
    pub fn cluster_detail(
        &self,
        budget: InefficiencyBudget,
        threshold: f64,
    ) -> Result<Vec<PerformanceCluster>> {
        let finder = OptimalFinder::new(budget);
        let optimal = self.optimal_series(budget);
        cluster_series_with_optimal(&self.data, &finder, &optimal, threshold)
    }

    /// Stable regions at one `(budget, threshold)` point. Bit-identical
    /// to [`stable_regions`] over [`Self::cluster_detail`]'s clusters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `threshold` is outside
    /// `[0, 0.5]`.
    pub fn stable_detail(
        &self,
        budget: InefficiencyBudget,
        threshold: f64,
    ) -> Result<Vec<StableRegion>> {
        Ok(stable_regions(&self.cluster_detail(budget, threshold)?))
    }

    /// [`Self::optimal_sweep`] with the phase span parented under
    /// `parent`, so callers that already opened a root span (`sweep`,
    /// `governed_reports`) nest the optimal phase inside it.
    fn optimal_under(&self, parent: SpanId, finders: &[OptimalFinder]) -> Vec<Vec<OptimalChoice>> {
        let p = self.profiler();
        fan_out_profiled(finders, self.threads, p, parent, "optimal", |f, m| {
            let t0 = p.is_enabled().then(Instant::now);
            let series = f.series(&self.data);
            if let Some(t0) = t0 {
                m.observe_duration_ns("optimal.series_ns", t0.elapsed().as_nanos() as f64);
            }
            series
        })
    }

    /// Derives optimal series, clusters and stable regions at every
    /// `(budget, threshold)` grid point, in budget-major order (all
    /// thresholds of `budgets[0]`, then `budgets[1]`, …).
    ///
    /// Each budget's optimal series is computed once and shared across its
    /// thresholds; the points themselves run on the worker pool. Results
    /// are bit-identical to the sequential
    /// [`cluster_series`](crate::cluster_series) /
    /// [`stable_regions`] pipeline at every point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any threshold is outside
    /// `[0, 0.5]` — checked up front, before any work is spawned.
    pub fn sweep(
        &self,
        budgets: &[InefficiencyBudget],
        thresholds: &[f64],
    ) -> Result<Vec<SweepOutcome>> {
        for &thr in thresholds {
            if !(0.0..=0.5).contains(&thr) {
                return Err(Error::InvalidParameter {
                    name: "threshold",
                    reason: format!("cluster threshold must be in [0, 0.5], got {thr}"),
                });
            }
        }
        let p = self.profiler();
        let root = p.span("sweep");
        let finders: Vec<OptimalFinder> = budgets.iter().map(|&b| OptimalFinder::new(b)).collect();
        let optimal: Vec<Arc<Vec<OptimalChoice>>> = self
            .optimal_under(root.id(), &finders)
            .into_iter()
            .map(Arc::new)
            .collect();
        let jobs: Vec<(usize, f64)> = (0..budgets.len())
            .flat_map(|bi| thresholds.iter().map(move |&thr| (bi, thr)))
            .collect();
        Ok(fan_out_profiled(
            &jobs,
            self.threads,
            p,
            root.id(),
            "points",
            |&(bi, thr), m| {
                let t0 = p.is_enabled().then(Instant::now);
                let clusters =
                    cluster_series_with_optimal(&self.data, &finders[bi], &optimal[bi], thr)
                        .expect("thresholds validated above");
                let t1 = p.is_enabled().then(Instant::now);
                let regions = stable_regions(&clusters);
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    m.observe_duration_ns("points.cluster_ns", (t1 - t0).as_nanos() as f64);
                    m.observe_duration_ns("points.regions_ns", t1.elapsed().as_nanos() as f64);
                }
                SweepOutcome {
                    point: SweepPoint {
                        budget: budgets[bi],
                        threshold: thr,
                    },
                    optimal: Arc::clone(&optimal[bi]),
                    clusters,
                    regions,
                }
            },
        ))
    }

    /// Governed oracle-optimal runs for each budget, in input order,
    /// executed on the worker pool.
    ///
    /// Each budget's plan (its optimal series) is derived once and then
    /// replayed through `runner`; the replay makes the same
    /// full-grid-search decisions as
    /// [`OracleOptimalGovernor`](crate::governor::OracleOptimalGovernor)
    /// and carries the same governor name, so the [`RunReport`]s are
    /// equal to executing that governor directly.
    ///
    /// # Panics
    ///
    /// Panics when `trace` and the engine's characterization disagree on
    /// sample count.
    #[must_use]
    pub fn governed_reports(
        &self,
        runner: &GovernedRun,
        trace: &SampleTrace,
        budgets: &[InefficiencyBudget],
    ) -> Vec<RunReport> {
        let p = self.profiler();
        let root = p.span("governed_reports");
        let finders: Vec<OptimalFinder> = budgets.iter().map(|&b| OptimalFinder::new(b)).collect();
        let plans = self.optimal_under(root.id(), &finders);
        let jobs: Vec<(InefficiencyBudget, Vec<OptimalChoice>)> =
            budgets.iter().copied().zip(plans).collect();
        fan_out_profiled(
            &jobs,
            self.threads,
            p,
            root.id(),
            "runs",
            |(budget, plan), m| {
                let t0 = p.is_enabled().then(Instant::now);
                let mut governor = PlanGovernor {
                    name: format!("oracle-optimal({budget})"),
                    plan,
                    n_settings: self.data.n_settings(),
                };
                let report = runner.execute(&self.data, trace, &mut governor);
                if let Some(t0) = t0 {
                    m.observe_duration_ns("runs.execute_ns", t0.elapsed().as_nanos() as f64);
                }
                report
            },
        )
    }
}

/// Replays a precomputed optimal plan, reporting the same name and search
/// charges as the oracle governor that would have derived it live.
struct PlanGovernor<'a> {
    name: String,
    plan: &'a [OptimalChoice],
    n_settings: usize,
}

impl Governor for PlanGovernor<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        let choice = &self.plan[next_sample.min(self.plan.len() - 1)];
        // The oracle searches the full grid every sample; the replay
        // charges identically.
        Decision::searched(choice.setting, self.n_settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::cluster_series;
    use crate::governor::OracleOptimalGovernor;
    use mcdvfs_obs::Histogram;
    use mcdvfs_workloads::Benchmark;

    fn engine(n: usize) -> (SweepEngine, SampleTrace) {
        let trace = Benchmark::Gobmk.trace().window(0, n);
        let e = SweepEngine::characterize(
            &System::galaxy_nexus_class(),
            &trace,
            FrequencyGrid::coarse(),
        );
        (e, trace)
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn fan_out_preserves_job_order_at_any_width() {
        let jobs: Vec<usize> = (0..23).collect();
        let expect: Vec<usize> = jobs.iter().map(|j| j * j).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(fan_out(&jobs, threads, |&j| j * j), expect, "{threads}");
        }
    }

    #[test]
    fn fan_out_clamps_zero_threads_to_one() {
        assert_eq!(fan_out(&[1, 2, 3], 0, |&j: &i32| j * 10), vec![10, 20, 30]);
    }

    #[test]
    fn fan_out_on_empty_jobs_spawns_nothing() {
        // Empty input short-circuits before any scope (or span) exists —
        // even at a width that would otherwise chunk by zero.
        let p = Profiler::enabled();
        let out = fan_out_profiled(&Vec::<usize>::new(), 8, &p, 0, "empty", |&j, _| j);
        assert!(out.is_empty());
        assert!(p.spans().is_empty(), "no phase span for an empty fan-out");
        assert!(p.metrics().is_empty());
        assert!(fan_out(&Vec::<usize>::new(), 0, |&j: &usize| j).is_empty());
    }

    #[test]
    fn fan_out_profiled_matches_fan_out_and_aggregates_workers() {
        let jobs: Vec<u64> = (0..17).collect();
        let expect = fan_out(&jobs, 4, |&j| j + 1);
        let p = Profiler::enabled();
        let got = fan_out_profiled(&jobs, 4, &p, 0, "grid", |&j, m| {
            m.incr("grid.touched", 1);
            j + 1
        });
        assert_eq!(got, expect);

        let spans = p.spans();
        let phase = spans.iter().find(|s| s.name == "grid").expect("phase span");
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4, "17 jobs in chunks of 5 = 4 workers");
        assert!(workers.iter().all(|w| w.parent == phase.id));

        let m = p.metrics();
        assert_eq!(m.counter("grid.touched"), 17, "per-job user metric");
        assert_eq!(m.counter("grid.jobs"), 17);
        let per_worker = m.histogram("grid.worker_jobs").expect("job histogram");
        assert_eq!(per_worker.total(), 4);
        assert_eq!(per_worker.min_value(), Some(2.0), "last chunk holds 2");
        assert_eq!(per_worker.max_value(), Some(5.0));
        assert!(m.imbalance("grid.worker_jobs").unwrap() > 1.0);
        assert_eq!(
            m.histogram("grid.worker_busy_ns").map(Histogram::total),
            Some(4)
        );
    }

    #[test]
    fn sweep_matches_the_sequential_pipeline_bit_for_bit() {
        let (e, _) = engine(25);
        let budgets = [budget(1.0), budget(1.3), InefficiencyBudget::Unconstrained];
        let thresholds = [0.01, 0.05];
        let outcomes = e.sweep(&budgets, &thresholds).unwrap();
        assert_eq!(outcomes.len(), budgets.len() * thresholds.len());
        let mut i = 0;
        for &b in &budgets {
            let series = OptimalFinder::new(b).series(e.data());
            for &thr in &thresholds {
                let o = &outcomes[i];
                assert_eq!(o.point.budget, b, "budget-major order");
                assert_eq!(o.point.threshold, thr);
                assert_eq!(*o.optimal.as_ref(), series);
                let clusters = cluster_series(e.data(), b, thr).unwrap();
                assert_eq!(o.clusters, clusters);
                assert_eq!(o.regions, stable_regions(&clusters));
                i += 1;
            }
        }
    }

    #[test]
    fn sweep_shares_one_optimal_series_per_budget() {
        let (e, _) = engine(10);
        let outcomes = e.sweep(&[budget(1.3)], &[0.01, 0.03, 0.05]).unwrap();
        assert!(outcomes
            .windows(2)
            .all(|w| Arc::ptr_eq(&w[0].optimal, &w[1].optimal)));
    }

    #[test]
    fn sweep_rejects_bad_thresholds_before_working() {
        let (e, _) = engine(5);
        assert!(e.sweep(&[budget(1.3)], &[0.01, 0.9]).is_err());
        assert!(e.sweep(&[budget(1.3)], &[-0.01]).is_err());
    }

    #[test]
    fn recharacterize_matches_a_fresh_engine_and_leaves_shared_views_alone() {
        let system = System::galaxy_nexus_class();
        let (mut e, trace) = engine(12);
        let shared = Arc::clone(e.data());
        let before = shared.fingerprint();

        let mut samples = trace.samples().to_vec();
        samples[3].mpki *= 2.0;
        samples[8].base_cpi += 0.3;
        let updated = SampleTrace::new(trace.name(), samples);
        e.recharacterize(&system, &updated, &[3, 8]);

        // The outstanding holder kept the pre-update view (copy-on-write)...
        assert_eq!(shared.fingerprint(), before);
        // ...while the engine matches a from-scratch characterization.
        let fresh = SweepEngine::characterize(&system, &updated, FrequencyGrid::coarse());
        assert_eq!(e.data().as_ref(), fresh.data().as_ref());
        assert_eq!(e.data().fingerprint(), fresh.data().fingerprint());
    }

    #[test]
    fn optimal_sweep_matches_per_finder_series() {
        let (e, _) = engine(15);
        let finders = [
            OptimalFinder::new(budget(1.3)),
            OptimalFinder::new(budget(1.3)).with_tie_tolerance(0.0),
            OptimalFinder::new(budget(1.6)),
        ];
        let swept = e.optimal_sweep(&finders);
        for (f, s) in finders.iter().zip(&swept) {
            assert_eq!(*s, f.series(e.data()));
        }
    }

    #[test]
    fn governed_reports_equal_the_live_oracle_governor() {
        let (e, trace) = engine(20);
        let budgets = [budget(1.0), budget(1.3), budget(1.6)];
        for runner in [
            GovernedRun::without_overheads(),
            GovernedRun::with_paper_overheads(),
        ] {
            let swept = e.governed_reports(&runner, &trace, &budgets);
            for (&b, got) in budgets.iter().zip(&swept) {
                let mut live = OracleOptimalGovernor::new(Arc::clone(e.data()), b);
                let want = runner.execute(e.data(), &trace, &mut live);
                assert_eq!(*got, want, "budget {b}");
            }
        }
    }

    #[test]
    fn profiled_sweep_is_bit_identical_and_builds_the_phase_tree() {
        let (e, _) = engine(20);
        let budgets = [budget(1.0), budget(1.3)];
        let thresholds = [0.01, 0.05];
        let plain = e.sweep(&budgets, &thresholds).unwrap();

        let profiler = Arc::new(Profiler::enabled());
        let profiled = e
            .clone()
            .with_profiler(Arc::clone(&profiler))
            .sweep(&budgets, &thresholds)
            .unwrap();
        assert_eq!(profiled, plain, "profiling must not change outcomes");

        let paths: Vec<String> = profiler
            .phase_totals()
            .into_iter()
            .map(|t| t.path)
            .collect();
        assert!(paths.contains(&"sweep".to_string()));
        assert!(paths.contains(&"sweep/optimal".to_string()));
        assert!(paths.contains(&"sweep/points".to_string()));

        let m = profiler.metrics();
        assert_eq!(m.counter("points.jobs"), 4);
        assert_eq!(m.counter("optimal.jobs"), 2);
        assert_eq!(
            m.histogram("points.cluster_ns").map(Histogram::total),
            Some(4)
        );
        assert_eq!(
            m.histogram("points.regions_ns").map(Histogram::total),
            Some(4)
        );
    }

    #[test]
    fn outcome_means_are_consistent() {
        let (e, _) = engine(30);
        let o = &e.sweep(&[budget(1.3)], &[0.05]).unwrap()[0];
        assert!(o.mean_cluster_size() >= 1.0);
        let total: usize = o.regions.iter().map(StableRegion::len).sum();
        assert_eq!(total, 30);
        let mean = o.mean_region_len();
        assert!((mean - 30.0 / o.regions.len() as f64).abs() < 1e-12);
    }
}
