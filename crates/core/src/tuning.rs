//! Tuning-overhead accounting.
//!
//! Section VI-C calibrates the cost of one tuning event — computing
//! per-setting inefficiencies, searching for the optimal setting over the
//! 70-setting space, and transitioning the hardware — at **500 µs and
//! 30 µJ**. This module models that cost as a per-evaluated-setting search
//! component plus the hardware transition charged separately by the
//! [`TransitionModel`](mcdvfs_sim::TransitionModel), so the figure-11
//! harness can report trade-offs with and without overhead and so search
//! strategies that evaluate fewer settings (cluster reuse, CoScale-style
//! gradient descent) are charged proportionally less.

use mcdvfs_types::{Joules, Seconds};

/// Cost of one tuning event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningCost {
    /// Time the tuner spends deciding (the application is stalled).
    pub latency: Seconds,
    /// Energy spent deciding.
    pub energy: Joules,
}

impl TuningCost {
    /// A free tuning event.
    pub const ZERO: Self = Self {
        latency: Seconds::ZERO,
        energy: Joules::ZERO,
    };
}

impl std::ops::Add for TuningCost {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            latency: self.latency + rhs.latency,
            energy: self.energy + rhs.energy,
        }
    }
}

/// Per-setting search cost model, calibrated to the paper's numbers.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::TuningCostModel;
///
/// let model = TuningCostModel::paper_calibrated();
/// let full_search = model.search_cost(70);
/// // Paper: ~500 µs / 30 µJ for the full 70-setting tuning event
/// // (including the hardware transition, charged separately).
/// assert!((400.0..=500.0).contains(&full_search.latency.as_micros()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningCostModel {
    /// Fixed cost per tuning event (bookkeeping, Emin lookup).
    pub base_latency: Seconds,
    /// Fixed energy per tuning event.
    pub base_energy: Joules,
    /// Cost per setting evaluated during the search.
    pub per_setting_latency: Seconds,
    /// Energy per setting evaluated.
    pub per_setting_energy: Joules,
}

impl TuningCostModel {
    /// Calibration reproducing Section VI-C: a 70-setting search costs
    /// ~470 µs / 28 µJ, which together with one ~30 µs hardware transition
    /// reaches the paper's 500 µs / 30 µJ total.
    #[must_use]
    pub fn paper_calibrated() -> Self {
        Self {
            base_latency: Seconds::from_micros(50.0),
            base_energy: Joules::from_micros(3.0),
            per_setting_latency: Seconds::from_micros(6.0),
            per_setting_energy: Joules::from_micros(0.36),
        }
    }

    /// A free tuner, for the "no tuning overhead" arms of Figure 11.
    #[must_use]
    pub fn free() -> Self {
        Self {
            base_latency: Seconds::ZERO,
            base_energy: Joules::ZERO,
            per_setting_latency: Seconds::ZERO,
            per_setting_energy: Joules::ZERO,
        }
    }

    /// Cost of one search that evaluated `settings_evaluated` settings.
    #[must_use]
    pub fn search_cost(&self, settings_evaluated: usize) -> TuningCost {
        let n = settings_evaluated as f64;
        TuningCost {
            latency: self.base_latency + self.per_setting_latency * n,
            energy: self.base_energy + self.per_setting_energy * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_hits_500us_30uj_with_transition() {
        let m = TuningCostModel::paper_calibrated();
        let search = m.search_cost(70);
        // Hardware transition from the sim crate adds ~30 µs / ~10 µJ.
        let total_us = search.latency.as_micros() + 30.0;
        let total_uj = search.energy.as_micros() + 10.0;
        assert!(
            (450.0..=550.0).contains(&total_us),
            "total tuning latency {total_us} µs"
        );
        assert!(
            (25.0..=45.0).contains(&total_uj),
            "total tuning energy {total_uj} µJ"
        );
    }

    #[test]
    fn cost_scales_with_settings_evaluated() {
        let m = TuningCostModel::paper_calibrated();
        let small = m.search_cost(4);
        let large = m.search_cost(496);
        assert!(small.latency < large.latency);
        assert!(small.energy < large.energy);
        // The fine grid is substantially more expensive to search.
        assert!(large.latency.as_micros() > 2.0 * m.search_cost(70).latency.as_micros());
    }

    #[test]
    fn zero_settings_costs_only_the_base() {
        let m = TuningCostModel::paper_calibrated();
        let c = m.search_cost(0);
        assert_eq!(c.latency, m.base_latency);
        assert_eq!(c.energy, m.base_energy);
    }

    #[test]
    fn free_model_is_free() {
        assert_eq!(TuningCostModel::free().search_cost(496), TuningCost::ZERO);
    }

    #[test]
    fn costs_add() {
        let m = TuningCostModel::paper_calibrated();
        let a = m.search_cost(10);
        let b = m.search_cost(20);
        let sum = a + b;
        assert!((sum.latency.value() - (a.latency.value() + b.latency.value())).abs() < 1e-18);
        assert!((sum.energy.value() - (a.energy.value() + b.energy.value())).abs() < 1e-18);
    }
}
