//! Oracle-gap scoring for online policies.
//!
//! A [`PolicyScorecard`] replays one governor (typically an online policy
//! adapted through `mcdvfs-policy`) over a characterized trace with the
//! ledger-verified accounting of
//! [`GovernedRun::execute_accounted`], then positions the result on the
//! fig08/fig11 axes relative to an *ideal oracle* reference run:
//!
//! * **energy vs. Emin gap** — total energy over the per-sample minimum
//!   ([`RunReport::total_inefficiency`]), the paper's inefficiency metric;
//! * **energy vs. oracle gap** — total energy over the reference run's,
//!   i.e. how much the policy pays for not knowing the future;
//! * **deadline misses** — intervals whose execution time at the chosen
//!   setting exceeded the interval deadline;
//! * **transition counts** — joint and per-domain hardware transitions
//!   (fig08's axis);
//! * **overhead-adjusted runtime** — total time *including* tuning and
//!   transition overheads, and its ratio to the reference (fig11's axis).
//!
//! The scorecard is governor-agnostic: it accepts any
//! [`Governor`](crate::governor::Governor), so oracles can be scored
//! against each other with the same code path.

use crate::governor::Governor;
use crate::runner::{GovernedRun, RunAccounting, RunReport};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::Seconds;
use mcdvfs_workloads::SampleTrace;

/// One policy's replay, scored against an ideal-oracle reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyScorecard {
    /// Name the governed run reported (the policy/governor name).
    pub policy: String,
    /// Scenario the policy was replayed under.
    pub scenario: String,
    /// Intervals replayed.
    pub intervals: u64,
    /// Total energy of the policy run, joules.
    pub energy_j: f64,
    /// Sum of per-sample minimum energies, joules.
    pub emin_j: f64,
    /// Energy-vs-Emin gap: total energy / Emin (≥ 1).
    pub energy_vs_emin: f64,
    /// Total energy of the reference run, joules.
    pub oracle_energy_j: f64,
    /// Energy-vs-oracle gap: policy energy / reference energy.
    pub energy_vs_oracle: f64,
    /// Overhead-adjusted runtime of the policy run, seconds.
    pub time_s: f64,
    /// Overhead-adjusted runtime of the reference run, seconds.
    pub oracle_time_s: f64,
    /// Runtime-vs-oracle ratio: policy time / reference time.
    pub time_vs_oracle: f64,
    /// Intervals whose execution time exceeded their deadline.
    pub deadline_misses: u64,
    /// Hardware transitions where either domain changed.
    pub transitions: u64,
    /// CPU-domain frequency changes.
    pub cpu_transitions: u64,
    /// Memory-domain frequency changes.
    pub mem_transitions: u64,
    /// Tuning searches the policy performed.
    pub searches: u64,
    /// Median wall-clock gap between hardware transitions, seconds
    /// (`None` with fewer than two transitions).
    pub median_transition_gap: Option<f64>,
    /// Tuning-plus-transition time as a fraction of total runtime.
    pub overhead_fraction: f64,
    /// The full run report of the scored policy.
    pub report: RunReport,
}

impl PolicyScorecard {
    /// Replays `governor` over `trace`/`data` under `runner`, verifies the
    /// ledger, and scores it against `reference` (typically an ideal-oracle
    /// run at the same budget). `deadlines` holds one absolute deadline per
    /// sample; `scenario` is recorded verbatim.
    ///
    /// # Panics
    ///
    /// Panics when `deadlines` does not align with the trace, when the
    /// governor returns an off-grid setting, or when ledger verification
    /// fails.
    #[must_use]
    pub fn score(
        runner: &GovernedRun,
        data: &CharacterizationGrid,
        trace: &SampleTrace,
        governor: &mut dyn Governor,
        deadlines: &[Seconds],
        scenario: &str,
        reference: &RunReport,
    ) -> Self {
        assert_eq!(
            deadlines.len(),
            data.n_samples(),
            "deadlines must align 1:1 with characterized samples"
        );
        let acc: RunAccounting = runner.execute_accounted(data, trace, governor);
        let deadline_misses = acc
            .report
            .sample_settings
            .iter()
            .enumerate()
            .filter(|(s, setting)| {
                let m = data
                    .measurement_at(*s, **setting)
                    .expect("executed setting is on the grid");
                m.time.value() > deadlines[*s].value()
            })
            .count() as u64;
        let energy = acc.report.total_energy().value();
        let time = acc.report.total_time().value();
        let oracle_energy = reference.total_energy().value();
        let oracle_time = reference.total_time().value();
        Self {
            policy: acc.report.governor.clone(),
            scenario: scenario.to_string(),
            intervals: data.n_samples() as u64,
            energy_j: energy,
            emin_j: acc.report.total_emin.value(),
            energy_vs_emin: acc.report.total_inefficiency(),
            oracle_energy_j: oracle_energy,
            energy_vs_oracle: energy / oracle_energy,
            time_s: time,
            oracle_time_s: oracle_time,
            time_vs_oracle: time / oracle_time,
            deadline_misses,
            transitions: acc.joint_transitions,
            cpu_transitions: acc.cpu_domain_transitions,
            mem_transitions: acc.mem_domain_transitions,
            searches: acc.report.searches,
            median_transition_gap: acc.median_transition_gap,
            overhead_fraction: acc.overhead_fraction,
            report: acc.report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{OracleOptimalGovernor, PerformanceGovernor};
    use crate::inefficiency::InefficiencyBudget;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;
    use std::sync::Arc;

    fn setup() -> (Arc<CharacterizationGrid>, SampleTrace) {
        let trace = Benchmark::Gobmk.trace().window(0, 12);
        let data = CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &trace,
            FrequencyGrid::coarse(),
        );
        (Arc::new(data), trace)
    }

    #[test]
    fn oracle_scored_against_itself_has_unit_gaps() {
        let (data, trace) = setup();
        let budget = InefficiencyBudget::bounded(1.3).unwrap();
        let runner = GovernedRun::without_overheads();
        let reference = runner.execute(
            &data,
            &trace,
            &mut OracleOptimalGovernor::new(Arc::clone(&data), budget),
        );
        let deadlines = vec![Seconds::new(1.0); trace.len()];
        let sc = PolicyScorecard::score(
            &runner,
            &data,
            &trace,
            &mut OracleOptimalGovernor::new(Arc::clone(&data), budget),
            &deadlines,
            "unit-test",
            &reference,
        );
        assert!((sc.energy_vs_oracle - 1.0).abs() < 1e-12);
        assert!((sc.time_vs_oracle - 1.0).abs() < 1e-12);
        assert!(sc.energy_vs_emin >= 1.0);
        assert_eq!(sc.deadline_misses, 0, "1 s deadlines are generous");
        assert_eq!(sc.intervals, trace.len() as u64);
        assert_eq!(sc.scenario, "unit-test");
    }

    #[test]
    fn impossible_deadlines_are_all_missed() {
        let (data, trace) = setup();
        let runner = GovernedRun::without_overheads();
        let reference = runner.execute(&data, &trace, &mut PerformanceGovernor::new(data.grid()));
        let deadlines = vec![Seconds::new(0.0); trace.len()];
        let sc = PolicyScorecard::score(
            &runner,
            &data,
            &trace,
            &mut PerformanceGovernor::new(data.grid()),
            &deadlines,
            "unit-test",
            &reference,
        );
        assert_eq!(sc.deadline_misses, trace.len() as u64);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_deadlines_panic() {
        let (data, trace) = setup();
        let runner = GovernedRun::without_overheads();
        let reference = runner.execute(&data, &trace, &mut PerformanceGovernor::new(data.grid()));
        let _ = PolicyScorecard::score(
            &runner,
            &data,
            &trace,
            &mut PerformanceGovernor::new(data.grid()),
            &[Seconds::new(1.0)],
            "unit-test",
            &reference,
        );
    }
}
