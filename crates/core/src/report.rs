//! Plain-text table, CSV and run-ledger emission for the figure harness.
//!
//! The bench binaries print the same rows and series the paper's figures
//! report and mirror them as CSV files under `results/` so plots can be
//! regenerated with any external tool. Run ledgers recorded by
//! [`GovernedRun::execute_recorded`](crate::GovernedRun::execute_recorded)
//! export as JSON-lines ([`ledger_to_jsonl`]) or as a flat CSV table
//! ([`ledger_table`]) — both dependency-free, both carrying the exact
//! event quantities so external tooling can re-derive the run totals.

use mcdvfs_obs::{Event, RunLedger};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::report::Table;
///
/// let mut t = Table::new(vec!["benchmark", "Imax"]);
/// t.row(vec!["gobmk".into(), "1.89".into()]);
/// let text = t.to_text();
/// assert!(text.contains("benchmark"));
/// assert!(text.contains("gobmk"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells that need
    /// it).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with `digits` decimal places, for table cells.
#[must_use]
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Renders one event as a single JSON object (no trailing newline).
///
/// Floats use Rust's shortest round-trip formatting, so parsing the field
/// back yields the exact recorded `f64`.
#[must_use]
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"event\":\"{}\",\"sample\":{}",
        event.kind(),
        event.sample()
    );
    match *event {
        Event::SampleExecuted {
            setting,
            time,
            energy,
            ..
        } => {
            let _ = write!(
                out,
                ",\"cpu_mhz\":{},\"mem_mhz\":{},\"time_s\":{},\"energy_j\":{}",
                setting.cpu.mhz(),
                setting.mem.mhz(),
                time.value(),
                energy.value()
            );
        }
        Event::TuningSearch {
            settings_evaluated,
            latency,
            energy,
            ..
        } => {
            let _ = write!(
                out,
                ",\"settings_evaluated\":{},\"latency_s\":{},\"energy_j\":{}",
                settings_evaluated,
                latency.value(),
                energy.value()
            );
        }
        Event::FrequencyTransition {
            at,
            from,
            to,
            latency,
            energy,
            cpu_changed,
            mem_changed,
            ..
        } => {
            let _ = write!(
                out,
                ",\"at_s\":{},\"from_cpu_mhz\":{},\"from_mem_mhz\":{},\
                 \"to_cpu_mhz\":{},\"to_mem_mhz\":{},\"latency_s\":{},\"energy_j\":{},\
                 \"cpu_changed\":{cpu_changed},\"mem_changed\":{mem_changed}",
                at.value(),
                from.cpu.mhz(),
                from.mem.mhz(),
                to.cpu.mhz(),
                to.mem.mhz(),
                latency.value(),
                energy.value()
            );
        }
        Event::RegionBoundary { .. } => {}
        Event::BudgetExceeded {
            inefficiency,
            budget,
            ..
        } => {
            let _ = write!(out, ",\"inefficiency\":{inefficiency},\"budget\":{budget}");
        }
    }
    out.push('}');
    out
}

/// Renders a ledger as JSON-lines: one event object per line, oldest
/// first.
#[must_use]
pub fn ledger_to_jsonl(ledger: &RunLedger) -> String {
    let mut out = String::new();
    for e in ledger.events() {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Writes the JSON-lines rendering of `ledger` to `path`, creating parent
/// directories.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_ledger_jsonl(ledger: &RunLedger, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, ledger_to_jsonl(ledger))
}

/// Flattens a ledger into a [`Table`] (one row per event, blank cells for
/// fields a variant does not carry), ready for
/// [`Table::to_csv`]/[`Table::write_csv`].
#[must_use]
pub fn ledger_table(ledger: &RunLedger) -> Table {
    let mut t = Table::new(vec![
        "event",
        "sample",
        "at_s",
        "from_cpu_mhz",
        "from_mem_mhz",
        "to_cpu_mhz",
        "to_mem_mhz",
        "settings_evaluated",
        "time_s",
        "energy_j",
        "inefficiency",
        "budget",
    ]);
    for e in ledger.events() {
        let mut row = vec![e.kind().to_string(), e.sample().to_string()];
        row.extend(std::iter::repeat_with(String::new).take(10));
        match *e {
            Event::SampleExecuted {
                setting,
                time,
                energy,
                ..
            } => {
                row[5] = setting.cpu.mhz().to_string();
                row[6] = setting.mem.mhz().to_string();
                row[8] = time.value().to_string();
                row[9] = energy.value().to_string();
            }
            Event::TuningSearch {
                settings_evaluated,
                latency,
                energy,
                ..
            } => {
                row[7] = settings_evaluated.to_string();
                row[8] = latency.value().to_string();
                row[9] = energy.value().to_string();
            }
            Event::FrequencyTransition {
                at,
                from,
                to,
                latency,
                energy,
                ..
            } => {
                row[2] = at.value().to_string();
                row[3] = from.cpu.mhz().to_string();
                row[4] = from.mem.mhz().to_string();
                row[5] = to.cpu.mhz().to_string();
                row[6] = to.mem.mhz().to_string();
                row[8] = latency.value().to_string();
                row[9] = energy.value().to_string();
            }
            Event::RegionBoundary { .. } => {}
            Event::BudgetExceeded {
                inefficiency,
                budget,
                ..
            } => {
                row[10] = inefficiency.to_string();
                row[11] = budget.to_string();
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = table().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns have equal widths.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip_basics() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().next(), Some("name,value"));
        assert!(csv.contains("alpha,1"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("mcdvfs-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        table().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("alpha"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(table().len(), 2);
        assert!(!table().is_empty());
        assert!(Table::new(vec!["x"]).is_empty());
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }

    fn ledger() -> RunLedger {
        use mcdvfs_obs::Recorder as _;
        use mcdvfs_types::{FreqSetting, Joules, Seconds};
        let mut l = RunLedger::unbounded();
        l.record(Event::RegionBoundary { sample: 0 });
        l.record(Event::TuningSearch {
            sample: 0,
            settings_evaluated: 70,
            latency: Seconds::from_micros(470.0),
            energy: Joules::from_micros(28.0),
        });
        l.record(Event::FrequencyTransition {
            sample: 0,
            at: Seconds::ZERO,
            from: FreqSetting::from_mhz(1000, 800),
            to: FreqSetting::from_mhz(500, 400),
            latency: Seconds::from_micros(30.0),
            energy: Joules::from_micros(10.0),
            cpu_changed: true,
            mem_changed: true,
        });
        l.record(Event::SampleExecuted {
            sample: 0,
            setting: FreqSetting::from_mhz(500, 400),
            time: Seconds::from_millis(1.0),
            energy: Joules::from_millis(4.0),
        });
        l.record(Event::BudgetExceeded {
            sample: 0,
            inefficiency: 1.31,
            budget: 1.3,
        });
        l
    }

    #[test]
    fn jsonl_emits_one_object_per_event() {
        let text = ledger_to_jsonl(&ledger());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":\""));
            assert!(line.contains("\"sample\":0"));
        }
        assert!(lines[1].contains("\"settings_evaluated\":70"));
        assert!(lines[2].contains("\"from_cpu_mhz\":1000"));
        assert!(lines[2].contains("\"cpu_changed\":true"));
        assert!(lines[4].contains("\"budget\":1.3"));
    }

    #[test]
    fn json_floats_round_trip_exactly() {
        use mcdvfs_types::{Joules, Seconds};
        let time = Seconds::from_micros(470.0);
        let energy = Joules::from_micros(28.0);
        let json = event_to_json(&Event::TuningSearch {
            sample: 3,
            settings_evaluated: 70,
            latency: time,
            energy,
        });
        let field = |name: &str| -> f64 {
            let start = json.find(name).unwrap() + name.len() + 2;
            json[start..]
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(field("\"latency_s\"").to_bits(), time.value().to_bits());
        assert_eq!(field("\"energy_j\"").to_bits(), energy.value().to_bits());
    }

    #[test]
    fn ledger_csv_is_rectangular() {
        let t = ledger_table(&ledger());
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        let width = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), width, "{line}");
        }
        assert!(csv.contains("region_boundary"));
        assert!(csv.contains("frequency_transition"));
    }

    #[test]
    fn write_ledger_jsonl_creates_directories() {
        let dir = std::env::temp_dir().join("mcdvfs-ledger-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/run.jsonl");
        write_ledger_jsonl(&ledger(), &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read.lines().count(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
