//! Plain-text table and CSV emission for the figure harness.
//!
//! The bench binaries print the same rows and series the paper's figures
//! report and mirror them as CSV files under `results/` so plots can be
//! regenerated with any external tool.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::report::Table;
///
/// let mut t = Table::new(vec!["benchmark", "Imax"]);
/// t.row(vec!["gobmk".into(), "1.89".into()]);
/// let text = t.to_text();
/// assert!(text.contains("benchmark"));
/// assert!(text.contains("gobmk"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells that need
    /// it).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with `digits` decimal places, for table cells.
#[must_use]
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = table().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns have equal widths.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip_basics() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().next(), Some("name,value"));
        assert!(csv.contains("alpha,1"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("mcdvfs-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        table().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("alpha"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(table().len(), 2);
        assert!(!table().is_empty());
        assert!(Table::new(vec!["x"]).is_empty());
    }

    #[test]
    fn fmt_digits() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }
}
