//! The optimal-settings finder.
//!
//! Implements the paper's Section V algorithm: for each sample,
//!
//! 1. filter the grid to settings whose per-sample inefficiency
//!    `E / Emin` is within the budget;
//! 2. among those, find the setting with the highest speedup (lowest
//!    execution time);
//! 3. where several settings perform within 0.5% of the best (simulation
//!    noise), pick the one with the highest CPU frequency first, then the
//!    highest memory frequency — that setting is "bound to have the
//!    highest performance among the other possibilities".

use crate::inefficiency::{Inefficiency, InefficiencyBudget};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{FreqSetting, Joules, Seconds, SettingSet};

/// The optimal choice for one sample under one budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalChoice {
    /// Sample index within the trace.
    pub sample: usize,
    /// Flat grid index of the chosen setting.
    pub index: usize,
    /// The chosen setting.
    pub setting: FreqSetting,
    /// Execution time of the sample at the chosen setting.
    pub time: Seconds,
    /// Energy of the sample at the chosen setting.
    pub energy: Joules,
    /// Inefficiency of the sample at the chosen setting.
    pub inefficiency: Inefficiency,
}

/// Finder configured with a budget and the paper's 0.5% noise tie-break.
///
/// # Examples
///
/// Tighter budgets can only slow the optimal point down:
///
/// ```
/// use mcdvfs_core::{InefficiencyBudget, OptimalFinder};
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let data = CharacterizationGrid::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Gobmk.trace().window(0, 5),
///     FrequencyGrid::coarse(),
/// );
/// let tight = OptimalFinder::new(InefficiencyBudget::bounded(1.0).unwrap()).series(&data);
/// let loose = OptimalFinder::new(InefficiencyBudget::Unconstrained).series(&data);
/// for (t, l) in tight.iter().zip(&loose) {
///     assert!(t.time >= l.time);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalFinder {
    budget: InefficiencyBudget,
    /// Relative performance band treated as measurement noise (paper: 0.5%).
    tie_tolerance: f64,
}

impl OptimalFinder {
    /// The paper's noise tolerance: settings within 0.5% of the best
    /// performance are considered tied.
    pub const PAPER_TIE_TOLERANCE: f64 = 0.005;

    /// Creates a finder for `budget` with the paper's tie tolerance.
    #[must_use]
    pub fn new(budget: InefficiencyBudget) -> Self {
        Self {
            budget,
            tie_tolerance: Self::PAPER_TIE_TOLERANCE,
        }
    }

    /// Overrides the tie tolerance (ablation studies).
    ///
    /// # Panics
    ///
    /// Panics when `tolerance` is negative or not finite.
    #[must_use]
    pub fn with_tie_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance >= 0.0 && tolerance.is_finite(),
            "tie tolerance must be non-negative"
        );
        self.tie_tolerance = tolerance;
        self
    }

    /// The budget this finder enforces.
    #[must_use]
    pub fn budget(&self) -> InefficiencyBudget {
        self.budget
    }

    /// The configured tie tolerance (the paper's 0.5% unless overridden).
    #[must_use]
    pub fn tie_tolerance(&self) -> f64 {
        self.tie_tolerance
    }

    /// The within-budget settings for sample `s` as a bitset — the hot
    /// representation every downstream pass (clusters, stable regions)
    /// operates on.
    ///
    /// Never empty: the `Emin` setting always has inefficiency 1.
    #[must_use]
    pub fn feasible_set(&self, data: &CharacterizationGrid, s: usize) -> SettingSet {
        let emin = data.sample_emin(s);
        let mut set = SettingSet::empty(data.n_settings());
        for (i, m) in data.sample_row(s).iter().enumerate() {
            if self.budget.admits_value(m.energy() / emin) {
                set.insert(i);
            }
        }
        set
    }

    /// Grid indices of all settings within budget for sample `s`,
    /// ascending — derived from [`Self::feasible_set`].
    ///
    /// Never empty: the `Emin` setting always has inefficiency 1.
    #[must_use]
    pub fn feasible(&self, data: &CharacterizationGrid, s: usize) -> Vec<usize> {
        self.feasible_set(data, s).to_vec()
    }

    /// Finds the optimal setting for sample `s`.
    ///
    /// Under the unconstrained (`∞`) budget this is, by the paper's
    /// definition, always the maximum setting — "the algorithm always
    /// chooses the highest frequency settings as these settings always
    /// deliver the highest performance" — with no search.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn find(&self, data: &CharacterizationGrid, s: usize) -> OptimalChoice {
        if self.budget == InefficiencyBudget::Unconstrained {
            let index = data.n_settings() - 1;
            let m = data.measurement(s, index);
            return OptimalChoice {
                sample: s,
                index,
                setting: data.grid().max_setting(),
                time: m.time,
                energy: m.energy(),
                inefficiency: Inefficiency::compute(m.energy(), data.sample_emin(s))
                    .expect("grid energies are positive"),
            };
        }
        // One pass builds the feasible set and folds the best time (same
        // accumulation order as a separate fold, so bit-identical).
        let emin = data.sample_emin(s);
        let row = data.sample_row(s);
        let mut feasible = SettingSet::empty(data.n_settings());
        let mut best_time = f64::INFINITY;
        for (i, m) in row.iter().enumerate() {
            if self.budget.admits_value(m.energy() / emin) {
                feasible.insert(i);
                best_time = f64::min(best_time, m.time.value());
            }
        }
        debug_assert!(!feasible.is_empty(), "Emin setting is always feasible");
        // All settings whose performance is within the noise band of the
        // best; pick the highest (cpu, mem) among them. Grid indices
        // ascend lexicographically in (cpu, mem), so that is the highest
        // qualifying index — found from the top, where it usually sits
        // within a probe or two.
        let noise_band = best_time * (1.0 + self.tie_tolerance);
        let index = feasible
            .iter()
            .rev()
            .find(|&i| row[i].time.value() <= noise_band)
            .expect("at least the best-time setting qualifies");
        let m = &row[index];
        OptimalChoice {
            sample: s,
            index,
            setting: data.grid().get(index).expect("index on grid"),
            time: m.time,
            energy: m.energy(),
            inefficiency: Inefficiency::compute(m.energy(), data.sample_emin(s))
                .expect("grid energies are positive"),
        }
    }

    /// Optimal settings for every sample of the trace — the series the
    /// paper's Figure 3 plots.
    #[must_use]
    pub fn series(&self, data: &CharacterizationGrid) -> Vec<OptimalChoice> {
        (0..data.n_samples()).map(|s| self.find(data, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        )
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn choice_is_always_within_budget() {
        let d = data(Benchmark::Gobmk, 12);
        for b in [1.0, 1.1, 1.3, 1.6] {
            let finder = OptimalFinder::new(budget(b));
            let bound = b * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;
            for c in finder.series(&d) {
                assert!(
                    c.inefficiency.value() <= bound,
                    "budget {b}: sample {} at I={}",
                    c.sample,
                    c.inefficiency
                );
            }
        }
    }

    #[test]
    fn choice_dominates_every_feasible_setting() {
        let d = data(Benchmark::Milc, 10);
        let finder = OptimalFinder::new(budget(1.3));
        for s in 0..d.n_samples() {
            let c = finder.find(&d, s);
            for i in finder.feasible(&d, s) {
                let t = d.measurement(s, i).time.value();
                assert!(
                    c.time.value() <= t * (1.0 + OptimalFinder::PAPER_TIE_TOLERANCE),
                    "sample {s}: chosen {} slower than feasible {}",
                    c.time.value(),
                    t
                );
            }
        }
    }

    #[test]
    fn unconstrained_budget_picks_the_maximum_setting() {
        // Paper: with unbounded energy the algorithm always chooses the
        // highest frequencies, as they always deliver the best performance.
        let d = data(Benchmark::Gobmk, 8);
        let finder = OptimalFinder::new(InefficiencyBudget::Unconstrained);
        for c in finder.series(&d) {
            assert_eq!(c.setting, d.grid().max_setting(), "sample {}", c.sample);
        }
    }

    #[test]
    fn higher_budget_never_hurts_performance() {
        let d = data(Benchmark::Gcc, 15);
        let budgets = [1.0, 1.1, 1.2, 1.3, 1.6];
        let series: Vec<Vec<OptimalChoice>> = budgets
            .iter()
            .map(|&b| OptimalFinder::new(budget(b)).series(&d))
            .collect();
        for s in 0..d.n_samples() {
            for w in series.windows(2) {
                assert!(
                    w[1][s].time.value() <= w[0][s].time.value() * (1.0 + 0.006),
                    "sample {s}: looser budget slower"
                );
            }
        }
    }

    #[test]
    fn tie_break_prefers_highest_cpu_then_memory() {
        let d = data(Benchmark::Bzip2, 6);
        // bzip2 is CPU bound: many memory frequencies perform within 0.5%,
        // so the tie-break must select the highest memory one among ties at
        // the top CPU frequency.
        let finder = OptimalFinder::new(InefficiencyBudget::Unconstrained);
        let c = finder.find(&d, 0);
        assert_eq!(c.setting.cpu.mhz(), 1000);
        assert_eq!(c.setting.mem.mhz(), 800);
    }

    #[test]
    fn emin_budget_selects_the_emin_setting() {
        let d = data(Benchmark::Lbm, 5);
        let finder = OptimalFinder::new(budget(1.0));
        for s in 0..d.n_samples() {
            let c = finder.find(&d, s);
            let feasible = finder.feasible(&d, s);
            // At I=1 only settings within noise of Emin are feasible.
            assert!(!feasible.is_empty());
            let excess = c.energy.value() / d.sample_emin(s).value() - 1.0;
            assert!(
                (0.0..=InefficiencyBudget::NOISE_TOLERANCE + 1e-9).contains(&excess),
                "sample {s}: excess {excess}"
            );
        }
    }

    #[test]
    fn feasible_set_grows_with_budget() {
        let d = data(Benchmark::Gobmk, 8);
        for s in 0..d.n_samples() {
            let mut prev = 0;
            for b in [1.0, 1.2, 1.4, 1.6, 2.0] {
                let n = OptimalFinder::new(budget(b)).feasible(&d, s).len();
                assert!(n >= prev, "sample {s} budget {b}");
                prev = n;
            }
            assert_eq!(
                OptimalFinder::new(InefficiencyBudget::Unconstrained)
                    .feasible(&d, s)
                    .len(),
                d.n_settings()
            );
        }
    }

    #[test]
    fn memory_phases_pull_memory_frequency_up_under_tight_budgets() {
        // Figure 3's core observation: at low budgets the optimal settings
        // follow the phases — memory-intensive samples get higher memory
        // frequency than CPU-intensive ones.
        let d = data(Benchmark::Milc, 60);
        let finder = OptimalFinder::new(budget(1.3));
        let series = finder.series(&d);
        let trace = Benchmark::Milc.trace().window(0, 60);
        let avg_mem_mhz = |v: &[f64]| -> f64 {
            // An empty phase set would make the comparison vacuous (the
            // old `len().max(1)` silently averaged it to 0); the trace
            // must actually contain both kinds of phase.
            assert!(!v.is_empty(), "phase set must be non-empty");
            v.iter().sum::<f64>() / v.len() as f64
        };
        let mem_heavy: Vec<f64> = series
            .iter()
            .filter(|c| trace.get(c.sample).unwrap().mpki > 10.0)
            .map(|c| f64::from(c.setting.mem.mhz()))
            .collect();
        let cpu_heavy: Vec<f64> = series
            .iter()
            .filter(|c| trace.get(c.sample).unwrap().mpki < 5.0)
            .map(|c| f64::from(c.setting.mem.mhz()))
            .collect();
        let mem_heavy_avg = avg_mem_mhz(&mem_heavy);
        let cpu_heavy_avg = avg_mem_mhz(&cpu_heavy);
        assert!(
            mem_heavy_avg > cpu_heavy_avg,
            "memory phases {mem_heavy_avg} MHz vs CPU phases {cpu_heavy_avg} MHz"
        );
    }

    #[test]
    fn zero_tie_tolerance_picks_strict_minimum_time() {
        let d = data(Benchmark::Gobmk, 5);
        let finder = OptimalFinder::new(budget(1.3)).with_tie_tolerance(0.0);
        for s in 0..d.n_samples() {
            let c = finder.find(&d, s);
            let best = finder
                .feasible(&d, s)
                .into_iter()
                .map(|i| d.measurement(s, i).time.value())
                .fold(f64::INFINITY, f64::min);
            assert_eq!(c.time.value(), best);
        }
    }

    #[test]
    fn feasible_vec_mirrors_feasible_set() {
        let d = data(Benchmark::Milc, 8);
        for b in [budget(1.0), budget(1.3), InefficiencyBudget::Unconstrained] {
            let finder = OptimalFinder::new(b);
            for s in 0..d.n_samples() {
                let set = finder.feasible_set(&d, s);
                let vec = finder.feasible(&d, s);
                assert_eq!(set.to_vec(), vec);
                assert_eq!(set.count(), vec.len());
                for &i in &vec {
                    assert!(set.contains(i));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "tie tolerance")]
    fn negative_tolerance_panics() {
        let _ = OptimalFinder::new(budget(1.3)).with_tie_tolerance(-0.1);
    }
}
