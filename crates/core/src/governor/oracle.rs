//! Oracle governors over the characterization grid.
//!
//! Both know the measured grid (the paper runs them over collected data;
//! "all our studies are performed using measured performance and power
//! data"). The optimal tracker re-searches every sample; the cluster
//! follower is the paper's ideal stable-region algorithm, tuning only when
//! a region ends.

use crate::clusters::cluster_series;
use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use crate::optimal::OptimalFinder;
use crate::stable::{stable_regions, StableRegion};
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::Result;
use std::sync::Arc;

/// Tracks the per-sample optimal setting exactly, searching the full grid
/// at every sample boundary.
#[derive(Debug, Clone)]
pub struct OracleOptimalGovernor {
    data: Arc<CharacterizationGrid>,
    finder: OptimalFinder,
    name: String,
}

impl OracleOptimalGovernor {
    /// Creates the governor for `budget` over `data`.
    #[must_use]
    pub fn new(data: Arc<CharacterizationGrid>, budget: InefficiencyBudget) -> Self {
        Self {
            name: format!("oracle-optimal({budget})"),
            finder: OptimalFinder::new(budget),
            data,
        }
    }
}

impl Governor for OracleOptimalGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        let choice = self
            .finder
            .find(&self.data, next_sample.min(self.data.n_samples() - 1));
        // Exact tracking re-plans every sample: each is its own region.
        Decision::searched(choice.setting, self.data.n_settings())
    }
}

/// How a cluster governor picks one setting from a stable region's common
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionChoice {
    /// Highest CPU then memory frequency — the paper's Section VI-B rule,
    /// maximizing performance within the region.
    #[default]
    HighestFrequency,
    /// Lowest total region energy — realizes the Section VI-C energy
    /// savings ("lower frequency settings can be chosen at higher cluster
    /// thresholds") while staying within the performance threshold.
    LowestEnergy,
}

/// Follows precomputed stable regions: one setting per region, one search
/// per region boundary — the paper's ideal cluster algorithm (Section VI)
/// and its offline-analysis deployment proposal (Section VII).
#[derive(Debug, Clone)]
pub struct OracleClusterGovernor {
    data: Arc<CharacterizationGrid>,
    regions: Vec<StableRegion>,
    choice: RegionChoice,
    name: String,
}

impl OracleClusterGovernor {
    /// Precomputes clusters and stable regions for `budget` and
    /// `threshold`, using the performance-maximizing region choice.
    ///
    /// # Errors
    ///
    /// Propagates the threshold validation of
    /// [`cluster_series`](crate::cluster_series).
    pub fn new(
        data: Arc<CharacterizationGrid>,
        budget: InefficiencyBudget,
        threshold: f64,
    ) -> Result<Self> {
        Self::with_choice(data, budget, threshold, RegionChoice::HighestFrequency)
    }

    /// As [`Self::new`], with an explicit region representative policy.
    ///
    /// # Errors
    ///
    /// Propagates the threshold validation of
    /// [`cluster_series`](crate::cluster_series).
    pub fn with_choice(
        data: Arc<CharacterizationGrid>,
        budget: InefficiencyBudget,
        threshold: f64,
        choice: RegionChoice,
    ) -> Result<Self> {
        let clusters = cluster_series(&data, budget, threshold)?;
        let regions = stable_regions(&clusters);
        let tag = match choice {
            RegionChoice::HighestFrequency => "",
            RegionChoice::LowestEnergy => ", efficient",
        };
        Ok(Self {
            name: format!("oracle-cluster({budget}, {:.0}%{tag})", threshold * 100.0),
            data,
            regions,
            choice,
        })
    }

    /// The stable regions this governor follows.
    #[must_use]
    pub fn regions(&self) -> &[StableRegion] {
        &self.regions
    }
}

impl Governor for OracleClusterGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        let region = self
            .regions
            .iter()
            .find(|r| r.contains_sample(next_sample))
            .or_else(|| self.regions.last())
            .expect("regions cover the trace");
        let setting = match self.choice {
            RegionChoice::HighestFrequency => region.chosen_setting(&self.data),
            RegionChoice::LowestEnergy => region.most_efficient_setting(&self.data),
        };
        // Search only at region starts; inside a region the decision is a
        // table lookup.
        if next_sample == region.start {
            Decision::searched(setting, self.data.n_settings())
        } else {
            Decision::reuse(setting)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> Arc<CharacterizationGrid> {
        Arc::new(CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        ))
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn optimal_governor_matches_the_finder() {
        let d = data(Benchmark::Gobmk, 10);
        let mut g = OracleOptimalGovernor::new(Arc::clone(&d), budget(1.3));
        let series = OptimalFinder::new(budget(1.3)).series(&d);
        for (s, expect) in series.iter().enumerate() {
            let dec = g.decide(s, None);
            assert_eq!(dec.setting, expect.setting, "sample {s}");
            assert_eq!(dec.settings_evaluated, 70, "full search every sample");
        }
        assert!(g.name().contains("oracle-optimal"));
    }

    #[test]
    fn cluster_governor_holds_the_setting_within_a_region() {
        let d = data(Benchmark::Lbm, 20);
        let mut g = OracleClusterGovernor::new(Arc::clone(&d), budget(1.3), 0.05).unwrap();
        let regions = g.regions().to_vec();
        for r in &regions {
            let first = g.decide(r.start, None);
            assert_eq!(first.settings_evaluated, 70, "search at region start");
            for s in r.start + 1..r.end {
                let dec = g.decide(s, None);
                assert_eq!(dec.setting, first.setting);
                assert_eq!(dec.settings_evaluated, 0, "free inside a region");
            }
        }
    }

    #[test]
    fn cluster_governor_changes_only_at_boundaries() {
        let d = data(Benchmark::Gcc, 40);
        let mut g = OracleClusterGovernor::new(Arc::clone(&d), budget(1.3), 0.03).unwrap();
        let mut last = None;
        let mut changes = 0;
        for s in 0..40 {
            let dec = g.decide(s, None);
            if last.is_some_and(|p| p != dec.setting) {
                changes += 1;
            }
            last = Some(dec.setting);
        }
        assert_eq!(changes, g.regions().len() - 1);
    }

    #[test]
    fn cluster_governor_stays_within_budget_per_sample() {
        let d = data(Benchmark::Milc, 25);
        let b = 1.3;
        let mut g = OracleClusterGovernor::new(Arc::clone(&d), budget(b), 0.05).unwrap();
        let bound = b * (1.0 + InefficiencyBudget::NOISE_TOLERANCE) + 1e-9;
        for s in 0..25 {
            let dec = g.decide(s, None);
            let m = d.measurement_at(s, dec.setting).unwrap();
            let ineff = m.energy() / d.sample_emin(s);
            assert!(ineff <= bound, "sample {s}: I={ineff}");
        }
    }

    #[test]
    fn invalid_threshold_propagates() {
        let d = data(Benchmark::Bzip2, 4);
        assert!(OracleClusterGovernor::new(d, budget(1.3), 0.9).is_err());
    }

    #[test]
    fn out_of_range_sample_clamps() {
        let d = data(Benchmark::Bzip2, 4);
        let mut g = OracleOptimalGovernor::new(Arc::clone(&d), budget(1.3));
        let dec = g.decide(99, None);
        assert!(d.grid().contains(dec.setting));
        let mut gc = OracleClusterGovernor::new(d, budget(1.3), 0.05).unwrap();
        let dec = gc.decide(99, None);
        assert_ne!(dec.settings_evaluated, usize::MAX);
    }
}
