//! Frequency governors.
//!
//! A [`Governor`] decides, at each sample boundary, which frequency setting
//! the next sample runs at — the decision interface of the paper's future
//! energy-management algorithms and of the Linux cpufreq/memfreq governors
//! its infrastructure extends.
//!
//! Provided policies:
//!
//! * [`FixedGovernor`] — the `userspace` governor the paper uses to pin
//!   settings for its characterization runs;
//! * [`PerformanceGovernor`] / [`PowersaveGovernor`] — pin to the grid
//!   maximum/minimum;
//! * [`OndemandGovernor`] — a load-driven baseline: CPU rails to maximum
//!   under sustained load (as Linux ondemand does), memory frequency
//!   follows observed bandwidth demand;
//! * [`OracleOptimalGovernor`] — tracks the paper's per-sample optimal
//!   settings, searching the full grid every interval;
//! * [`OracleClusterGovernor`] — follows precomputed stable regions,
//!   searching only at region boundaries (the paper's offline-analysis
//!   proposal, Section VII);
//! * [`CoScaleGovernor`] — a CoScale-style greedy searcher that restarts
//!   from the maximum setting every interval (the strategy the paper
//!   argues is inefficient);
//! * [`PredictiveGovernor`] — a runtime-plausible tuner that re-searches
//!   only when its phase predictor expires or the observed CPI drifts
//!   (the paper's learning proposal, Section VII).
//!
//! The oracle, CoScale and predictive governors consult the
//! characterization grid as their performance/energy model; what the paper
//! studies — and what distinguishes them — is *how often they search* and
//! *from where*, which is exactly what the tuning-overhead accounting in
//! [`GovernedRun`](crate::GovernedRun) charges for.

mod coscale;
mod oracle;
mod predictive;
mod profile;

pub use coscale::CoScaleGovernor;
pub use oracle::{OracleClusterGovernor, OracleOptimalGovernor, RegionChoice};
pub use predictive::{PhasePredictor, PredictiveGovernor};
pub use profile::{ProfileGovernor, WorkloadProfile};

use mcdvfs_types::{FreqSetting, FrequencyGrid, SampleMeasurement};

/// What a governor learns about the sample that just finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Index of the completed sample.
    pub sample: usize,
    /// Setting the sample ran at.
    pub setting: FreqSetting,
    /// Its measurement.
    pub measurement: SampleMeasurement,
    /// DRAM bytes the sample moved (from PMU counters).
    pub dram_bytes: u64,
}

impl Observation {
    /// Achieved DRAM bandwidth over the sample, bytes/second.
    #[must_use]
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bytes as f64 / self.measurement.time.value()
    }
}

/// A governor's decision for the upcoming sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Setting to run the next sample at.
    pub setting: FreqSetting,
    /// Number of candidate settings the governor evaluated to decide
    /// (drives the tuning-overhead charge; `0` = reused a prior decision).
    pub settings_evaluated: usize,
    /// `true` when this decision opens a new control region — the governor
    /// crossed a stable-region boundary, invalidated its previous plan, or
    /// otherwise started planning afresh. Drives the
    /// [`RegionBoundary`](mcdvfs_obs::Event::RegionBoundary) events the
    /// run ledger aggregates into region-length distributions.
    pub region_start: bool,
}

impl Decision {
    /// A decision that reuses the previous setting without searching.
    #[must_use]
    pub const fn reuse(setting: FreqSetting) -> Self {
        Self {
            setting,
            settings_evaluated: 0,
            region_start: false,
        }
    }

    /// A decision reached by a fresh search over `settings_evaluated`
    /// candidates, opening a new control region.
    #[must_use]
    pub const fn searched(setting: FreqSetting, settings_evaluated: usize) -> Self {
        Self {
            setting,
            settings_evaluated,
            region_start: true,
        }
    }
}

/// A frequency-selection policy.
pub trait Governor {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Decides the setting for sample `next_sample`. `prev` is the
    /// observation of the immediately preceding sample, absent for the
    /// first.
    fn decide(&mut self, next_sample: usize, prev: Option<&Observation>) -> Decision;
}

/// The `userspace` governor: a fixed setting.
#[derive(Debug, Clone)]
pub struct FixedGovernor {
    setting: FreqSetting,
}

impl FixedGovernor {
    /// Pins the platform at `setting`.
    #[must_use]
    pub fn new(setting: FreqSetting) -> Self {
        Self { setting }
    }
}

impl Governor for FixedGovernor {
    fn name(&self) -> &str {
        "userspace"
    }

    fn decide(&mut self, _next_sample: usize, _prev: Option<&Observation>) -> Decision {
        Decision::reuse(self.setting)
    }
}

/// Pins both domains at the grid maximum.
#[derive(Debug, Clone)]
pub struct PerformanceGovernor {
    setting: FreqSetting,
}

impl PerformanceGovernor {
    /// Creates the governor for `grid`.
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        Self {
            setting: grid.max_setting(),
        }
    }
}

impl Governor for PerformanceGovernor {
    fn name(&self) -> &str {
        "performance"
    }

    fn decide(&mut self, _next_sample: usize, _prev: Option<&Observation>) -> Decision {
        Decision::reuse(self.setting)
    }
}

/// Pins both domains at the grid minimum.
#[derive(Debug, Clone)]
pub struct PowersaveGovernor {
    setting: FreqSetting,
}

impl PowersaveGovernor {
    /// Creates the governor for `grid`.
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        Self {
            setting: grid.min_setting(),
        }
    }
}

impl Governor for PowersaveGovernor {
    fn name(&self) -> &str {
        "powersave"
    }

    fn decide(&mut self, _next_sample: usize, _prev: Option<&Observation>) -> Decision {
        Decision::reuse(self.setting)
    }
}

/// Load-driven baseline: `ondemand` for the CPU plus a bandwidth-driven
/// memory governor (the devfreq pattern).
///
/// SPEC-style samples never idle, so the CPU side rails to maximum — the
/// realistic (and energy-oblivious) behaviour of Linux ondemand under
/// sustained load. The memory side picks the lowest frequency whose
/// effective bandwidth keeps the *observed* demand below a utilization
/// target.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    grid: FrequencyGrid,
    /// Utilization target for the memory channel (e.g. `0.6`).
    mem_target: f64,
    /// Effective bandwidth at each memory step, bytes/s, ascending.
    mem_bandwidths: Vec<(u32, f64)>,
    current: FreqSetting,
}

impl OndemandGovernor {
    /// Creates the governor. `mem_bandwidth_of` maps a memory frequency in
    /// MHz to the channel's effective bandwidth in bytes/second (supplied
    /// by the platform's latency model).
    ///
    /// # Panics
    ///
    /// Panics when `mem_target` is outside `(0, 1]`.
    #[must_use]
    pub fn new(
        grid: FrequencyGrid,
        mem_target: f64,
        mem_bandwidth_of: impl Fn(u32) -> f64,
    ) -> Self {
        assert!(mem_target > 0.0 && mem_target <= 1.0, "target in (0, 1]");
        let mem_bandwidths = grid
            .mem_freqs()
            .map(|f| (f.mhz(), mem_bandwidth_of(f.mhz())))
            .collect();
        Self {
            grid,
            mem_target,
            mem_bandwidths,
            current: grid.max_setting(),
        }
    }
}

impl Governor for OndemandGovernor {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn decide(&mut self, _next_sample: usize, prev: Option<&Observation>) -> Decision {
        let cpu = self.grid.max_setting().cpu; // sustained load rails up
        let mem = match prev {
            None => self.grid.max_setting().mem,
            Some(obs) => {
                let demand = obs.dram_bandwidth();
                self.mem_bandwidths
                    .iter()
                    .find(|&&(_, bw)| demand <= bw * self.mem_target)
                    .map(|&(mhz, _)| mcdvfs_types::MemFreq::from_mhz(mhz))
                    .unwrap_or(self.grid.max_setting().mem)
            }
        };
        let setting = FreqSetting::new(cpu, mem);
        // Ondemand's decision is O(#mem steps) table walk, not a search.
        let evaluated = usize::from(setting != self.current) * self.mem_bandwidths.len();
        self.current = setting;
        Decision {
            setting,
            settings_evaluated: evaluated,
            region_start: evaluated > 0,
        }
    }
}

/// Linux's `conservative` governor pattern: like [`OndemandGovernor`] but
/// stepping one frequency step per interval instead of jumping, trading
/// reaction latency for fewer large transitions (and smaller voltage
/// swings).
#[derive(Debug, Clone)]
pub struct ConservativeGovernor {
    grid: FrequencyGrid,
    /// Utilization target for the memory channel.
    mem_target: f64,
    /// Effective bandwidth at each memory step, bytes/s, ascending.
    mem_bandwidths: Vec<(u32, f64)>,
    current: FreqSetting,
}

impl ConservativeGovernor {
    /// Creates the governor; see [`OndemandGovernor::new`] for the
    /// bandwidth callback contract.
    ///
    /// # Panics
    ///
    /// Panics when `mem_target` is outside `(0, 1]`.
    #[must_use]
    pub fn new(
        grid: FrequencyGrid,
        mem_target: f64,
        mem_bandwidth_of: impl Fn(u32) -> f64,
    ) -> Self {
        assert!(mem_target > 0.0 && mem_target <= 1.0, "target in (0, 1]");
        let mem_bandwidths = grid
            .mem_freqs()
            .map(|f| (f.mhz(), mem_bandwidth_of(f.mhz())))
            .collect();
        Self {
            grid,
            mem_target,
            mem_bandwidths,
            current: grid.min_setting(),
        }
    }

    /// One grid step from `from` toward `to` in each domain independently.
    fn step_toward(&self, from: FreqSetting, to: FreqSetting) -> FreqSetting {
        let cpu_steps: Vec<u32> = self.grid.cpu_freqs().map(|f| f.mhz()).collect();
        let mem_steps: Vec<u32> = self.grid.mem_freqs().map(|f| f.mhz()).collect();
        let step = |steps: &[u32], cur: u32, want: u32| -> u32 {
            let i = steps
                .iter()
                .position(|&s| s == cur)
                .expect("current on grid");
            match want.cmp(&cur) {
                std::cmp::Ordering::Greater => steps[(i + 1).min(steps.len() - 1)],
                std::cmp::Ordering::Less => steps[i.saturating_sub(1)],
                std::cmp::Ordering::Equal => cur,
            }
        };
        FreqSetting::from_mhz(
            step(&cpu_steps, from.cpu.mhz(), to.cpu.mhz()),
            step(&mem_steps, from.mem.mhz(), to.mem.mhz()),
        )
    }
}

impl Governor for ConservativeGovernor {
    fn name(&self) -> &str {
        "conservative"
    }

    fn decide(&mut self, _next_sample: usize, prev: Option<&Observation>) -> Decision {
        // Same desired operating point as ondemand...
        let desired_mem = match prev {
            None => self.grid.max_setting().mem,
            Some(obs) => {
                let demand = obs.dram_bandwidth();
                self.mem_bandwidths
                    .iter()
                    .find(|&&(_, bw)| demand <= bw * self.mem_target)
                    .map(|&(mhz, _)| mcdvfs_types::MemFreq::from_mhz(mhz))
                    .unwrap_or(self.grid.max_setting().mem)
            }
        };
        let desired = FreqSetting::new(self.grid.max_setting().cpu, desired_mem);
        // ...approached one step at a time.
        let next = self.step_toward(self.current, desired);
        let evaluated = usize::from(next != self.current) * 2;
        self.current = next;
        Decision {
            setting: next,
            settings_evaluated: evaluated,
            region_start: evaluated > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_types::{Joules, Seconds};

    fn obs(bytes: u64, time_ms: f64) -> Observation {
        Observation {
            sample: 0,
            setting: FreqSetting::from_mhz(1000, 800),
            measurement: SampleMeasurement {
                time: Seconds::from_millis(time_ms),
                cpu_energy: Joules::from_millis(5.0),
                mem_energy: Joules::from_millis(1.0),
                cpi: 1.0,
            },
            dram_bytes: bytes,
        }
    }

    #[test]
    fn fixed_governor_never_moves() {
        let mut g = FixedGovernor::new(FreqSetting::from_mhz(500, 400));
        for s in 0..5 {
            let d = g.decide(s, None);
            assert_eq!(d.setting, FreqSetting::from_mhz(500, 400));
            assert_eq!(d.settings_evaluated, 0);
        }
        assert_eq!(g.name(), "userspace");
    }

    #[test]
    fn performance_and_powersave_pin_extremes() {
        let grid = FrequencyGrid::coarse();
        let mut hi = PerformanceGovernor::new(grid);
        let mut lo = PowersaveGovernor::new(grid);
        assert_eq!(hi.decide(0, None).setting, grid.max_setting());
        assert_eq!(lo.decide(0, None).setting, grid.min_setting());
    }

    #[test]
    fn ondemand_rails_cpu_to_max() {
        let grid = FrequencyGrid::coarse();
        let mut g = OndemandGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 8e6 * 0.7);
        let d = g.decide(1, Some(&obs(64 * 20_000, 10.0)));
        assert_eq!(d.setting.cpu.mhz(), 1000);
    }

    #[test]
    fn ondemand_memory_follows_bandwidth_demand() {
        let grid = FrequencyGrid::coarse();
        let bw = |mhz: u32| f64::from(mhz) * 8e6 * 0.7; // ~0.7 x DDR x32
        let mut g = OndemandGovernor::new(grid, 0.6, bw);
        // Tiny demand -> lowest memory step.
        let d = g.decide(1, Some(&obs(64 * 100, 10.0)));
        assert_eq!(d.setting.mem.mhz(), 200);
        // Huge demand -> highest memory step.
        let d = g.decide(2, Some(&obs(64 * 3_000_000, 10.0)));
        assert_eq!(d.setting.mem.mhz(), 800);
    }

    #[test]
    fn ondemand_first_decision_is_max() {
        let grid = FrequencyGrid::coarse();
        let mut g = OndemandGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 1e6);
        assert_eq!(g.decide(0, None).setting, grid.max_setting());
    }

    #[test]
    fn ondemand_charges_no_search_when_stable() {
        let grid = FrequencyGrid::coarse();
        let mut g = OndemandGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 8e6 * 0.7);
        let o = obs(64 * 100, 10.0);
        let _ = g.decide(1, Some(&o));
        let d = g.decide(2, Some(&o));
        assert_eq!(d.settings_evaluated, 0, "unchanged decision is free");
    }

    #[test]
    fn conservative_climbs_one_step_at_a_time() {
        let grid = FrequencyGrid::coarse();
        let mut g = ConservativeGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 8e6 * 0.7);
        // Boots at min; sustained load walks the CPU up one 100 MHz step
        // per interval.
        let d0 = g.decide(0, None);
        assert_eq!(d0.setting.cpu.mhz(), 200);
        let o = obs(64 * 3_000_000, 10.0);
        let d1 = g.decide(1, Some(&o));
        assert_eq!(d1.setting.cpu.mhz(), 300);
        let mut last = d1;
        for s in 2..20 {
            last = g.decide(s, Some(&o));
        }
        assert_eq!(last.setting, grid.max_setting(), "converges to the target");
    }

    #[test]
    fn conservative_steps_down_when_demand_falls() {
        let grid = FrequencyGrid::coarse();
        let mut g = ConservativeGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 8e6 * 0.7);
        let heavy = obs(64 * 3_000_000, 10.0);
        for s in 0..20 {
            g.decide(s, Some(&heavy));
        }
        let light = obs(64 * 100, 10.0);
        let d = g.decide(20, Some(&light));
        assert_eq!(d.setting.mem.mhz(), 700, "one step down from 800");
    }

    #[test]
    fn conservative_settles_without_charge() {
        let grid = FrequencyGrid::coarse();
        let mut g = ConservativeGovernor::new(grid, 0.6, |mhz| f64::from(mhz) * 8e6 * 0.7);
        let o = obs(64 * 3_000_000, 10.0);
        for s in 0..30 {
            g.decide(s, Some(&o));
        }
        let settled = g.decide(30, Some(&o));
        assert_eq!(settled.settings_evaluated, 0, "no change, no charge");
        assert_eq!(g.name(), "conservative");
    }

    #[test]
    fn observation_bandwidth() {
        let o = obs(64_000_000, 10.0);
        assert!((o.dram_bandwidth() - 6.4e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "target")]
    fn invalid_mem_target_panics() {
        let _ = OndemandGovernor::new(FrequencyGrid::coarse(), 0.0, |_| 1.0);
    }
}
