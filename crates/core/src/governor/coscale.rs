//! CoScale-style greedy searcher.
//!
//! CoScale [Deng et al., MICRO 2012] coordinates CPU and memory DVFS with a
//! gradient-descent search that the paper observes "search[es] for the best
//! performing settings every interval starting from the maximum frequency
//! settings", which it argues is inefficient compared to starting from the
//! previous interval's setting.
//!
//! This adaptation runs CoScale's search shape under the paper's
//! energy-constrained objective: start at the grid maximum; while the
//! current setting violates the inefficiency budget, step to the neighbour
//! (one frequency step in one domain) that stays fastest per unit of
//! inefficiency reduction. Every examined neighbour counts toward the
//! tuning overhead, so the restart-from-maximum strategy is charged
//! faithfully.

use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use mcdvfs_sim::CharacterizationGrid;
use std::sync::Arc;

/// Greedy budget-constrained searcher restarting from the maximum setting
/// each interval.
#[derive(Debug, Clone)]
pub struct CoScaleGovernor {
    data: Arc<CharacterizationGrid>,
    budget: InefficiencyBudget,
    name: String,
    /// `true` to restart each search from the maximum setting (CoScale's
    /// strategy); `false` to start from the previous decision (the paper's
    /// suggested improvement).
    restart_from_max: bool,
    previous: Option<mcdvfs_types::FreqSetting>,
}

impl CoScaleGovernor {
    /// Creates the CoScale-style governor (restart from maximum).
    #[must_use]
    pub fn new(data: Arc<CharacterizationGrid>, budget: InefficiencyBudget) -> Self {
        Self {
            name: format!("coscale({budget})"),
            data,
            budget,
            restart_from_max: true,
            previous: None,
        }
    }

    /// Variant that starts each search from the previous interval's setting
    /// — the improvement the paper proposes in Section V.
    #[must_use]
    pub fn starting_from_previous(mut self) -> Self {
        self.restart_from_max = false;
        self.name = self.name.replace("coscale", "coscale-warm");
        self
    }

    fn inefficiency(&self, sample: usize, idx: usize) -> f64 {
        self.data.measurement(sample, idx).energy() / self.data.sample_emin(sample)
    }

    /// Greedy descent for one sample. Returns `(chosen index, settings
    /// evaluated)`.
    fn search(&self, sample: usize, start_idx: usize) -> (usize, usize) {
        let grid = self.data.grid();
        let mut current = start_idx;
        let mut evaluated = 1usize;
        // Walk downhill until the budget is met; each step evaluates all
        // neighbours and moves to the fastest one that reduces
        // inefficiency. Bounded by the grid diameter.
        for _ in 0..grid.len() {
            if self.budget.admits_value(self.inefficiency(sample, current)) {
                break;
            }
            let setting = grid.get(current).expect("index on grid");
            let mut best: Option<(usize, f64)> = None;
            for n in grid.neighbours(setting) {
                let idx = grid.index_of(n).expect("neighbour on grid");
                evaluated += 1;
                let ineff = self.inefficiency(sample, idx);
                if ineff < self.inefficiency(sample, current) {
                    let time = self.data.measurement(sample, idx).time.value();
                    if best
                        .is_none_or(|(b, _)| time < self.data.measurement(sample, b).time.value())
                    {
                        best = Some((idx, ineff));
                    }
                }
            }
            match best {
                Some((idx, _)) => current = idx,
                None => break, // local minimum; accept it
            }
        }
        (current, evaluated)
    }
}

impl Governor for CoScaleGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        let sample = next_sample.min(self.data.n_samples() - 1);
        let grid = self.data.grid();
        let start = if self.restart_from_max {
            grid.len() - 1
        } else {
            self.previous
                .and_then(|s| grid.index_of(s))
                .unwrap_or(grid.len() - 1)
        };
        let (idx, evaluated) = self.search(sample, start);
        let setting = grid.get(idx).expect("index on grid");
        self.previous = Some(setting);
        Decision::searched(setting, evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> Arc<CharacterizationGrid> {
        Arc::new(CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        ))
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    #[test]
    fn unconstrained_budget_stays_at_max() {
        let d = data(Benchmark::Gobmk, 6);
        let mut g = CoScaleGovernor::new(Arc::clone(&d), InefficiencyBudget::Unconstrained);
        for s in 0..6 {
            let dec = g.decide(s, None);
            assert_eq!(dec.setting, d.grid().max_setting());
            assert_eq!(dec.settings_evaluated, 1, "max is admitted immediately");
        }
    }

    #[test]
    fn constrained_search_descends_toward_the_budget() {
        let d = data(Benchmark::Gobmk, 10);
        let b = 1.2;
        let mut g = CoScaleGovernor::new(Arc::clone(&d), budget(b));
        for s in 0..10 {
            let dec = g.decide(s, None);
            let idx = d.grid().index_of(dec.setting).unwrap();
            let ineff = d.measurement(s, idx).energy() / d.sample_emin(s);
            // Greedy descent may stop at a local minimum, but for this
            // smooth landscape it reaches the budget.
            assert!(ineff <= b * 1.02, "sample {s}: I={ineff}");
            assert!(dec.settings_evaluated > 1, "search happened");
        }
    }

    #[test]
    fn warm_start_evaluates_fewer_settings_on_stable_workloads() {
        let d = data(Benchmark::Lbm, 20);
        let b = budget(1.2);
        let mut cold = CoScaleGovernor::new(Arc::clone(&d), b);
        let mut warm = CoScaleGovernor::new(Arc::clone(&d), b).starting_from_previous();
        let mut cold_total = 0usize;
        let mut warm_total = 0usize;
        for s in 0..20 {
            cold_total += cold.decide(s, None).settings_evaluated;
            warm_total += warm.decide(s, None).settings_evaluated;
        }
        assert!(
            warm_total < cold_total,
            "warm {warm_total} vs cold {cold_total}: restarting from max is wasteful"
        );
    }

    #[test]
    fn warm_and_cold_reach_comparable_settings() {
        let d = data(Benchmark::Milc, 15);
        let b = budget(1.3);
        let mut cold = CoScaleGovernor::new(Arc::clone(&d), b);
        let mut warm = CoScaleGovernor::new(Arc::clone(&d), b).starting_from_previous();
        for s in 0..15 {
            let c = cold.decide(s, None);
            let w = warm.decide(s, None);
            let tc = d.measurement_at(s, c.setting).unwrap().time.value();
            let tw = d.measurement_at(s, w.setting).unwrap().time.value();
            // Both are greedy; allow warm to differ but not collapse.
            assert!(tw <= tc * 1.5, "sample {s}: warm {tw} vs cold {tc}");
        }
    }

    #[test]
    fn names_distinguish_variants() {
        let d = data(Benchmark::Bzip2, 3);
        let cold = CoScaleGovernor::new(Arc::clone(&d), budget(1.3));
        let warm = CoScaleGovernor::new(d, budget(1.3)).starting_from_previous();
        assert!(cold.name().contains("coscale("));
        assert!(warm.name().contains("coscale-warm"));
    }
}
