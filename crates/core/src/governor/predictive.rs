//! Runtime predictive tuning (the paper's Section VII "learning" proposal).
//!
//! Isci et al. showed that simple run-length predictors can detect how long
//! the current application phase will remain stable, letting a tuner skip
//! re-searching until the predicted phase end. [`PhasePredictor`]
//! implements that idea over the quantized per-sample CPI signature;
//! [`PredictiveGovernor`] re-searches only when the predictor reports a
//! phase change or its predicted stability window expires.

use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use crate::optimal::OptimalFinder;
use mcdvfs_sim::CharacterizationGrid;
use std::collections::HashMap;
use std::sync::Arc;

/// Run-length phase predictor over a quantized CPI signature.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::governor::PhasePredictor;
///
/// let mut p = PhasePredictor::new(0.25);
/// assert!(p.observe(1.0), "first observation is always a new phase");
/// assert!(!p.observe(1.05), "same bucket: phase continues");
/// assert!(p.observe(2.0), "jump: new phase");
/// ```
#[derive(Debug, Clone)]
pub struct PhasePredictor {
    /// CPI quantization step defining a phase signature.
    bucket_width: f64,
    current_bucket: Option<i64>,
    current_run: usize,
    /// EWMA of past run lengths per signature.
    history: HashMap<i64, f64>,
}

impl PhasePredictor {
    /// Creates a predictor with the given CPI bucket width.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_width` is not positive.
    #[must_use]
    pub fn new(bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Self {
            bucket_width,
            current_bucket: None,
            current_run: 0,
            history: HashMap::new(),
        }
    }

    fn bucket(&self, cpi: f64) -> i64 {
        (cpi / self.bucket_width).round() as i64
    }

    /// Feeds one observed CPI; returns `true` when a phase change is
    /// detected (including the very first observation).
    pub fn observe(&mut self, cpi: f64) -> bool {
        let b = self.bucket(cpi);
        match self.current_bucket {
            Some(cur) if cur == b => {
                self.current_run += 1;
                false
            }
            prev => {
                if let Some(old) = prev {
                    // Record the finished run with EWMA smoothing.
                    let entry = self.history.entry(old).or_insert(self.current_run as f64);
                    *entry = 0.5 * *entry + 0.5 * self.current_run as f64;
                }
                self.current_bucket = Some(b);
                self.current_run = 1;
                true
            }
        }
    }

    /// Predicted total length (in samples) of the current phase.
    ///
    /// Combines two signals, taking the larger: the EWMA of past runs with
    /// the same signature, and — Isci-style run-length doubling — twice the
    /// current run (a phase that has already lasted `n` samples is likely
    /// to last about as long again). Never-seen phases with no run built up
    /// predict `1`, i.e. tune again next sample until confidence builds.
    #[must_use]
    pub fn predicted_length(&self) -> usize {
        let from_history = self
            .current_bucket
            .and_then(|b| self.history.get(&b))
            .map(|&l| l.round().max(1.0) as usize)
            .unwrap_or(1);
        from_history.max(self.current_run * 2)
    }

    /// Length of the current run so far.
    #[must_use]
    pub fn current_run(&self) -> usize {
        self.current_run
    }
}

/// A runtime-plausible tuner: full search only on phase changes or expiry
/// of the predicted stability window.
///
/// The grid serves as the governor's performance/energy model (the paper
/// defers building predictive models to future work); the *policy* —
/// when to pay for a search — is what this governor contributes.
#[derive(Debug, Clone)]
pub struct PredictiveGovernor {
    data: Arc<CharacterizationGrid>,
    finder: OptimalFinder,
    predictor: PhasePredictor,
    name: String,
    current: Option<mcdvfs_types::FreqSetting>,
    /// Samples remaining before the next scheduled re-search.
    hold: usize,
    searches: u64,
}

impl PredictiveGovernor {
    /// Creates the governor for `budget` with a 0.25-CPI phase signature.
    #[must_use]
    pub fn new(data: Arc<CharacterizationGrid>, budget: InefficiencyBudget) -> Self {
        Self {
            name: format!("predictive({budget})"),
            finder: OptimalFinder::new(budget),
            predictor: PhasePredictor::new(0.25),
            data,
            current: None,
            hold: 0,
            searches: 0,
        }
    }

    /// Number of full searches performed so far.
    #[must_use]
    pub fn searches(&self) -> u64 {
        self.searches
    }

    fn search(&mut self, sample: usize) -> Decision {
        self.searches += 1;
        let choice = self.finder.find(&self.data, sample);
        self.current = Some(choice.setting);
        // Hold the setting for the predicted remaining phase length.
        self.hold = self
            .predictor
            .predicted_length()
            .saturating_sub(self.predictor.current_run())
            .max(1);
        Decision::searched(choice.setting, self.data.n_settings())
    }
}

impl Governor for PredictiveGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, prev: Option<&Observation>) -> Decision {
        let sample = next_sample.min(self.data.n_samples() - 1);
        let phase_changed = match prev {
            Some(obs) => self.predictor.observe(obs.measurement.cpi),
            None => true,
        };
        match self.current {
            Some(setting) if !phase_changed && self.hold > 0 => {
                self.hold -= 1;
                Decision::reuse(setting)
            }
            _ => self.search(sample),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, n: usize) -> Arc<CharacterizationGrid> {
        Arc::new(CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, n),
            FrequencyGrid::coarse(),
        ))
    }

    fn budget(v: f64) -> InefficiencyBudget {
        InefficiencyBudget::bounded(v).unwrap()
    }

    fn obs(
        data: &CharacterizationGrid,
        sample: usize,
        setting: mcdvfs_types::FreqSetting,
    ) -> Observation {
        Observation {
            sample,
            setting,
            measurement: *data.measurement_at(sample, setting).unwrap(),
            dram_bytes: 0,
        }
    }

    #[test]
    fn predictor_learns_run_lengths() {
        let mut p = PhasePredictor::new(0.25);
        // Two runs of phase A of length 4, separated by phase B.
        for _ in 0..2 {
            for _ in 0..4 {
                p.observe(1.0);
            }
            for _ in 0..2 {
                p.observe(3.0);
            }
        }
        p.observe(1.0);
        // After seeing A-runs of length 4, prediction approaches 4.
        assert!(
            p.predicted_length() >= 3,
            "predicted {}",
            p.predicted_length()
        );
    }

    #[test]
    fn predictor_detects_changes() {
        let mut p = PhasePredictor::new(0.25);
        assert!(p.observe(0.9));
        assert!(!p.observe(0.95));
        assert_eq!(p.current_run(), 2);
        assert!(p.observe(1.8));
        assert_eq!(p.current_run(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = PhasePredictor::new(0.0);
    }

    #[test]
    fn governor_searches_less_on_steady_workloads() {
        let d = data(Benchmark::Lbm, 30);
        let mut g = PredictiveGovernor::new(Arc::clone(&d), budget(1.3));
        let mut prev: Option<Observation> = None;
        for s in 0..30 {
            let dec = g.decide(s, prev.as_ref());
            prev = Some(obs(&d, s, dec.setting));
        }
        assert!(
            g.searches() < 15,
            "steady lbm should not search every sample: {}",
            g.searches()
        );
    }

    #[test]
    fn governor_searches_more_on_phasey_workloads() {
        let dl = data(Benchmark::Lbm, 30);
        let dg = data(Benchmark::Gobmk, 30);
        let run = |d: &Arc<CharacterizationGrid>| {
            let mut g = PredictiveGovernor::new(Arc::clone(d), budget(1.3));
            let mut prev: Option<Observation> = None;
            for s in 0..30 {
                let dec = g.decide(s, prev.as_ref());
                prev = Some(obs(d, s, dec.setting));
            }
            g.searches()
        };
        let lbm = run(&dl);
        let gobmk = run(&dg);
        assert!(gobmk > lbm, "gobmk {gobmk} searches vs lbm {lbm}");
    }

    #[test]
    fn reused_decisions_are_free() {
        let d = data(Benchmark::Lbm, 20);
        let mut g = PredictiveGovernor::new(Arc::clone(&d), budget(1.3));
        let mut prev: Option<Observation> = None;
        let mut free = 0;
        for s in 0..20 {
            let dec = g.decide(s, prev.as_ref());
            if dec.settings_evaluated == 0 {
                free += 1;
            }
            prev = Some(obs(&d, s, dec.setting));
        }
        assert!(free > 5, "some decisions must be reuses: {free}");
    }

    #[test]
    fn first_decision_always_searches() {
        let d = data(Benchmark::Bzip2, 5);
        let mut g = PredictiveGovernor::new(Arc::clone(&d), budget(1.3));
        let dec = g.decide(0, None);
        assert_eq!(dec.settings_evaluated, d.n_settings());
        assert_eq!(g.searches(), 1);
    }
}
