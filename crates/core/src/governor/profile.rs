//! Offline-profile governor (the paper's Section VII-2 proposal).
//!
//! "An application can be profiled offline to identify regions in which
//! the performance cluster is stable. The profile information of the
//! stable region lengths, positions, and available settings can then be
//! used at run time to enable the system to predict how long it can go
//! without tuning."
//!
//! [`WorkloadProfile`] captures exactly that — region boundaries and their
//! chosen settings from a profiling run — and [`ProfileGovernor`] replays
//! it on a *different* execution of the same application (different input
//! jitter), tuning zero times at runtime. The integration tests quantify
//! how well profiles transfer across executions.

use crate::clusters::cluster_series;
use crate::governor::{Decision, Governor, Observation};
use crate::inefficiency::InefficiencyBudget;
use crate::stable::stable_regions;
use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::{FreqSetting, Result};

/// An offline profile: stable-region boundaries and settings.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Application name the profile was taken from.
    name: String,
    /// Budget the profile was computed for.
    budget: InefficiencyBudget,
    /// Cluster threshold the profile was computed for.
    threshold: f64,
    /// `(start_sample, setting)` per region, ascending by start.
    regions: Vec<(usize, FreqSetting)>,
}

impl WorkloadProfile {
    /// Profiles a characterized training run: computes its performance
    /// clusters and stable regions and records the per-region settings.
    ///
    /// # Errors
    ///
    /// Propagates the threshold validation of
    /// [`cluster_series`](crate::cluster_series).
    pub fn from_characterization(
        data: &CharacterizationGrid,
        budget: InefficiencyBudget,
        threshold: f64,
    ) -> Result<Self> {
        let clusters = cluster_series(data, budget, threshold)?;
        let regions = stable_regions(&clusters)
            .iter()
            .map(|r| (r.start, r.chosen_setting(data)))
            .collect();
        Ok(Self {
            name: data.name().to_string(),
            budget,
            threshold,
            regions,
        })
    }

    /// Application the profile describes.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The budget this profile was built for.
    #[must_use]
    pub fn budget(&self) -> InefficiencyBudget {
        self.budget
    }

    /// The cluster threshold this profile was built for.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// `true` when a profiled region starts exactly at `sample`.
    #[must_use]
    pub fn is_region_start(&self, sample: usize) -> bool {
        self.regions
            .binary_search_by_key(&sample, |&(s, _)| s)
            .is_ok()
    }

    /// Number of profiled regions.
    #[must_use]
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The profiled setting for sample position `sample`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty (profiles always have ≥ 1 region).
    #[must_use]
    pub fn setting_for(&self, sample: usize) -> FreqSetting {
        // Last region whose start is at or before `sample`.
        match self.regions.binary_search_by_key(&sample, |&(s, _)| s) {
            Ok(i) => self.regions[i].1,
            Err(0) => self.regions.first().expect("profiles are never empty").1,
            Err(i) => self.regions[i - 1].1,
        }
    }

    /// Serializes the profile to a simple line format
    /// (`start cpu_mhz mem_mhz` per region) for storage alongside the app,
    /// as the paper's deployment story requires.
    #[must_use]
    pub fn to_profile_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "# mcdvfs profile: {} budget={} threshold={}\n",
            self.name, self.budget, self.threshold
        );
        for (start, setting) in &self.regions {
            let _ = writeln!(out, "{start} {} {}", setting.cpu.mhz(), setting.mem.mhz());
        }
        out
    }

    /// Parses a profile previously written by [`Self::to_profile_text`],
    /// validating every setting against `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`mcdvfs_types::Error::InvalidParameter`] for malformed
    /// input, [`mcdvfs_types::Error::SettingOffGrid`] for settings the
    /// platform does not support.
    pub fn from_profile_text(text: &str, grid: mcdvfs_types::FrequencyGrid) -> Result<Self> {
        use mcdvfs_types::Error;
        let invalid = |reason: String| Error::InvalidParameter {
            name: "profile_text",
            reason,
        };
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| invalid("empty profile".into()))?;
        let rest = header
            .strip_prefix("# mcdvfs profile: ")
            .ok_or_else(|| invalid("missing profile header".into()))?;
        // `<name> budget=I=<b|∞> threshold=<t>`
        let mut parts = rest.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| invalid("missing profile name".into()))?
            .to_string();
        let budget_tok = parts
            .next()
            .and_then(|t| t.strip_prefix("budget=I="))
            .ok_or_else(|| invalid("missing budget field".into()))?;
        let budget = if budget_tok == "∞" {
            InefficiencyBudget::Unconstrained
        } else {
            let b: f64 = budget_tok
                .parse()
                .map_err(|_| invalid(format!("bad budget {budget_tok:?}")))?;
            InefficiencyBudget::bounded(b)?
        };
        let threshold: f64 = parts
            .next()
            .and_then(|t| t.strip_prefix("threshold="))
            .ok_or_else(|| invalid("missing threshold field".into()))?
            .parse()
            .map_err(|_| invalid("bad threshold".into()))?;

        let mut regions: Vec<(usize, FreqSetting)> = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(invalid(format!("line {}: expected 3 fields", i + 2)));
            }
            let parse = |t: &str| -> Result<u32> {
                t.parse()
                    .map_err(|_| invalid(format!("line {}: bad number {t:?}", i + 2)))
            };
            let start = parse(fields[0])? as usize;
            let setting = FreqSetting::from_mhz(parse(fields[1])?, parse(fields[2])?);
            if !grid.contains(setting) {
                return Err(Error::SettingOffGrid {
                    setting: setting.to_string(),
                });
            }
            if regions.last().is_some_and(|&(prev, _)| start <= prev) && !regions.is_empty() {
                return Err(invalid(format!(
                    "line {}: region starts must ascend",
                    i + 2
                )));
            }
            regions.push((start, setting));
        }
        if regions.first().map(|&(s, _)| s) != Some(0) {
            return Err(invalid("first region must start at sample 0".into()));
        }
        Ok(Self {
            name,
            budget,
            threshold,
            regions,
        })
    }
}

/// Replays a [`WorkloadProfile`] at runtime: zero searches, transitions
/// only at profiled region boundaries.
#[derive(Debug, Clone)]
pub struct ProfileGovernor {
    profile: WorkloadProfile,
    name: String,
}

impl ProfileGovernor {
    /// Creates the governor from a profile.
    #[must_use]
    pub fn new(profile: WorkloadProfile) -> Self {
        Self {
            name: format!(
                "profile({}, {}, {:.0}%)",
                profile.name(),
                profile.budget(),
                profile.threshold() * 100.0
            ),
            profile,
        }
    }

    /// The underlying profile.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl Governor for ProfileGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, next_sample: usize, _prev: Option<&Observation>) -> Decision {
        // No runtime search at all: the profile is the search. Profiled
        // region starts are still control-region boundaries for the ledger.
        Decision {
            setting: self.profile.setting_for(next_sample),
            settings_evaluated: 0,
            region_start: self.profile.is_region_start(next_sample),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::FrequencyGrid;
    use mcdvfs_workloads::Benchmark;

    fn characterize(seed: u64) -> CharacterizationGrid {
        let trace = Benchmark::Gcc.trace_with(seed, 0.015).window(0, 60);
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &trace,
            FrequencyGrid::coarse(),
        )
    }

    fn budget() -> InefficiencyBudget {
        InefficiencyBudget::bounded(1.3).unwrap()
    }

    #[test]
    fn profile_matches_training_regions() {
        let train = characterize(1);
        let profile = WorkloadProfile::from_characterization(&train, budget(), 0.05).unwrap();
        let clusters = cluster_series(&train, budget(), 0.05).unwrap();
        let regions = stable_regions(&clusters);
        assert_eq!(profile.n_regions(), regions.len());
        for r in &regions {
            for s in r.start..r.end {
                assert_eq!(profile.setting_for(s), r.chosen_setting(&train));
            }
        }
    }

    #[test]
    fn governor_never_searches() {
        let train = characterize(1);
        let profile = WorkloadProfile::from_characterization(&train, budget(), 0.05).unwrap();
        let mut g = ProfileGovernor::new(profile);
        for s in 0..60 {
            assert_eq!(g.decide(s, None).settings_evaluated, 0);
        }
        assert!(g.name().starts_with("profile(gcc"));
    }

    #[test]
    fn out_of_range_samples_use_the_last_region() {
        let train = characterize(1);
        let profile = WorkloadProfile::from_characterization(&train, budget(), 0.05).unwrap();
        let last = profile.setting_for(59);
        assert_eq!(profile.setting_for(10_000), last);
    }

    #[test]
    fn profile_transfers_across_executions() {
        // Train on one execution, deploy on another (different jitter seed)
        // of the same application: settings remain on-grid and the achieved
        // inefficiency stays near the trained budget.
        let train = characterize(1);
        let deploy = characterize(2);
        let profile = WorkloadProfile::from_characterization(&train, budget(), 0.05).unwrap();
        let mut g = ProfileGovernor::new(profile);
        let mut energy = 0.0;
        for s in 0..deploy.n_samples() {
            let setting = g.decide(s, None).setting;
            energy += deploy.measurement_at(s, setting).unwrap().energy().value();
        }
        let achieved = energy / deploy.total_emin().value();
        assert!(
            achieved <= 1.3 * 1.1,
            "profile transferred badly: achieved inefficiency {achieved}"
        );
    }

    #[test]
    fn profile_text_round_readable() {
        let train = characterize(1);
        let profile = WorkloadProfile::from_characterization(&train, budget(), 0.03).unwrap();
        let text = profile.to_profile_text();
        assert!(text.starts_with("# mcdvfs profile: gcc"));
        // One header plus one line per region, each with three fields.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), profile.n_regions() + 1);
        for line in &lines[1..] {
            assert_eq!(line.split_whitespace().count(), 3, "{line}");
        }
    }

    #[test]
    fn profile_text_round_trips() {
        let train = characterize(1);
        let original = WorkloadProfile::from_characterization(&train, budget(), 0.05).unwrap();
        let parsed =
            WorkloadProfile::from_profile_text(&original.to_profile_text(), train.grid()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parser_rejects_malformed_profiles() {
        let grid = FrequencyGrid::coarse();
        assert!(WorkloadProfile::from_profile_text("", grid).is_err());
        assert!(WorkloadProfile::from_profile_text("garbage\n0 500 400\n", grid).is_err());
        // Off-grid setting.
        let bad = "# mcdvfs profile: x budget=I=1.3 threshold=0.05\n0 512 400\n";
        assert!(WorkloadProfile::from_profile_text(bad, grid).is_err());
        // Region starts must ascend and begin at 0.
        let bad = "# mcdvfs profile: x budget=I=1.3 threshold=0.05\n5 500 400\n";
        assert!(WorkloadProfile::from_profile_text(bad, grid).is_err());
        let bad =
            "# mcdvfs profile: x budget=I=1.3 threshold=0.05\n0 500 400\n10 600 400\n10 700 400\n";
        assert!(WorkloadProfile::from_profile_text(bad, grid).is_err());
        // Unconstrained budgets parse too.
        let inf = "# mcdvfs profile: x budget=I=∞ threshold=0.05\n0 1000 800\n";
        let p = WorkloadProfile::from_profile_text(inf, grid).unwrap();
        assert_eq!(p.budget(), InefficiencyBudget::Unconstrained);
    }
}
