//! The primary contribution of the `mcdvfs` reproduction: energy-constrained
//! multi-component DVFS algorithms from Begum et al. (IISWC 2015).
//!
//! Given a [`CharacterizationGrid`](mcdvfs_sim::CharacterizationGrid) — the
//! per-sample, per-setting measurement matrix a Gem5-class simulator
//! produces — this crate implements everything the paper builds on top:
//!
//! * the **inefficiency** metric `I = E / Emin` and budgets over it
//!   ([`Inefficiency`], [`InefficiencyBudget`]);
//! * per-sample **`Emin` estimation**: brute-force search, memoized lookup
//!   tables, and a learning predictor ([`emin`]);
//! * the **optimal-settings** finder under an inefficiency budget, with the
//!   paper's 0.5% noise tie-break ([`OptimalFinder`]);
//! * **performance clusters** — all in-budget settings within a performance
//!   threshold of optimal ([`PerformanceCluster`], [`cluster_series`]);
//! * **stable regions** — maximal runs of samples whose clusters share a
//!   common setting ([`StableRegion`], [`stable_regions`]);
//! * **transition statistics** (per-billion-instruction counts, Figure 8)
//!   and **tuning overhead** accounting (500 µs / 30 µJ per 70-setting
//!   search, Section VI-C) ([`transitions`], [`TuningCostModel`]);
//! * **governors** — the paper's oracle tuner, a cluster/stable-region
//!   tuner, Linux-style baselines, a CoScale-style greedy searcher, and a
//!   runtime predictive tuner ([`governor`]);
//! * an end-to-end **governed runner** that charges search and hardware
//!   transition overheads and verifies budget compliance ([`GovernedRun`]);
//!   runs can stream a typed event ledger
//!   ([`GovernedRun::execute_recorded`] with a
//!   [`RunLedger`](mcdvfs_obs::RunLedger)) whose replay reproduces the
//!   [`RunReport`] totals exactly ([`RunReport::verify_ledger`]);
//! * analysis and report helpers used by the figure harness, including
//!   JSON-lines and CSV ledger export ([`analysis`], [`report`]).
//!
//! # Examples
//!
//! Find gobmk's optimal settings under a 1.3 inefficiency budget and shrink
//! the transition count with a 5% performance cluster, as in the paper's
//! Figures 3–8:
//!
//! ```
//! use mcdvfs_core::{cluster_series, stable_regions, InefficiencyBudget, OptimalFinder};
//! use mcdvfs_sim::{CharacterizationGrid, System};
//! use mcdvfs_types::FrequencyGrid;
//! use mcdvfs_workloads::Benchmark;
//!
//! let data = CharacterizationGrid::characterize(
//!     &System::galaxy_nexus_class(),
//!     &Benchmark::Gobmk.trace().window(0, 12),
//!     FrequencyGrid::coarse(),
//! );
//! let budget = InefficiencyBudget::bounded(1.3).unwrap();
//!
//! let optimal = OptimalFinder::new(budget).series(&data);
//! let clusters = cluster_series(&data, budget, 0.05).unwrap();
//! let regions = stable_regions(&clusters);
//!
//! // Staying inside clusters can only reduce transitions.
//! let opt_changes = optimal.windows(2).filter(|w| w[0].setting != w[1].setting).count();
//! assert!(regions.len().saturating_sub(1) <= opt_changes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod clusters;
pub mod emin;
pub mod governor;
mod inefficiency;
pub mod legacy;
pub mod metrics;
mod optimal;
pub mod ratelimit;
pub mod report;
mod runner;
mod scorecard;
mod speedup;
mod stable;
pub mod sweep;
pub mod transitions;
mod tuning;

pub use clusters::{cluster_series, cluster_series_with_optimal, PerformanceCluster};
pub use inefficiency::{imax, Inefficiency, InefficiencyBudget};
pub use optimal::{OptimalChoice, OptimalFinder};
pub use runner::{GovernedRun, RunAccounting, RunReport};
pub use scorecard::PolicyScorecard;
pub use speedup::{speedup_of, Speedup};
pub use stable::{stable_regions, StableRegion};
pub use sweep::{SweepEngine, SweepOutcome, SweepPoint};
pub use tuning::{TuningCost, TuningCostModel};
