//! Energy-delay metrics — the alternatives inefficiency replaces.
//!
//! Section II argues that `Energy × Delayⁿ` products "can be used as a
//! measure to gauge energy-performance trade-offs" but are *not* suitable
//! constraints: an effective constraint must be relative to the
//! application's inherent energy needs and independent of applications and
//! devices, and EDP — built from absolute energy — is neither. This module
//! provides EDP/ED²P so the ablation harness can demonstrate that claim
//! quantitatively: the EDP-optimal point sits at a different inefficiency
//! for every workload, so no EDP target expresses "spend at most X% extra
//! energy".

use mcdvfs_sim::CharacterizationGrid;
use mcdvfs_types::SampleMeasurement;

/// Energy-delay product of one measurement, `E · T` (J·s).
#[must_use]
pub fn edp(m: &SampleMeasurement) -> f64 {
    m.energy().value() * m.time.value()
}

/// Energy-delay-squared product, `E · T²` (J·s²) — weights performance
/// harder, as high-performance design flows use.
#[must_use]
pub fn ed2p(m: &SampleMeasurement) -> f64 {
    m.energy().value() * m.time.value() * m.time.value()
}

/// The grid index minimizing `E · Tⁿ` for sample `s`.
///
/// # Panics
///
/// Panics when `s` is out of range or `n` is not 1 or 2.
#[must_use]
pub fn edn_optimal_index(data: &CharacterizationGrid, s: usize, n: u32) -> usize {
    assert!(
        n == 1 || n == 2,
        "only EDP (n=1) and ED2P (n=2) are defined"
    );
    let metric = |m: &SampleMeasurement| match n {
        1 => edp(m),
        _ => ed2p(m),
    };
    data.sample_row(s)
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| metric(a).partial_cmp(&metric(b)).expect("finite metrics"))
        .map(|(i, _)| i)
        .expect("grid is never empty")
}

/// The inefficiency each sample runs at when tuned to its EDP-optimal
/// (`n = 1`) or ED²P-optimal (`n = 2`) setting.
///
/// The paper's point falls out of the spread of these values across
/// workloads: an EDP target pins a *different* energy premium for each, so
/// it cannot serve as a portable energy constraint.
#[must_use]
pub fn edn_optimal_inefficiencies(data: &CharacterizationGrid, n: u32) -> Vec<f64> {
    (0..data.n_samples())
        .map(|s| {
            let idx = edn_optimal_index(data, s, n);
            data.measurement(s, idx).energy() / data.sample_emin(s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_sim::System;
    use mcdvfs_types::{FrequencyGrid, Joules, Seconds};
    use mcdvfs_workloads::Benchmark;

    fn data(b: Benchmark, samples: usize) -> CharacterizationGrid {
        CharacterizationGrid::characterize(
            &System::galaxy_nexus_class(),
            &b.trace().window(0, samples),
            FrequencyGrid::coarse(),
        )
    }

    #[test]
    fn edp_and_ed2p_formulas() {
        let m = SampleMeasurement {
            time: Seconds::new(2.0),
            cpu_energy: Joules::new(3.0),
            mem_energy: Joules::new(1.0),
            cpi: 1.0,
        };
        assert!((edp(&m) - 8.0).abs() < 1e-12);
        assert!((ed2p(&m) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn edp_optimum_dominates_all_settings_on_its_metric() {
        let d = data(Benchmark::Gobmk, 6);
        for s in 0..d.n_samples() {
            let best = edn_optimal_index(&d, s, 1);
            let best_edp = edp(d.measurement(s, best));
            for m in d.sample_row(s) {
                assert!(best_edp <= edp(m) + 1e-15);
            }
        }
    }

    #[test]
    fn ed2p_prefers_faster_settings_than_edp() {
        let d = data(Benchmark::Milc, 8);
        for s in 0..d.n_samples() {
            let e1 = edn_optimal_index(&d, s, 1);
            let e2 = edn_optimal_index(&d, s, 2);
            let t1 = d.measurement(s, e1).time;
            let t2 = d.measurement(s, e2).time;
            assert!(t2 <= t1, "sample {s}: ED2P must not be slower than EDP");
        }
    }

    #[test]
    fn edp_optimum_runs_above_emin() {
        // EDP trades energy for delay, so it never coincides with the pure
        // energy minimum on this platform.
        let d = data(Benchmark::Bzip2, 6);
        for i in edn_optimal_inefficiencies(&d, 1) {
            assert!(i >= 1.0);
            assert!(i < 2.5, "EDP optimum inefficiency {i} should be moderate");
        }
    }

    #[test]
    fn edp_inefficiency_differs_across_workloads() {
        // The paper's argument: the same metric lands at different energy
        // premiums for different applications.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let cpu_bound = mean(&edn_optimal_inefficiencies(&data(Benchmark::Bzip2, 10), 1));
        let mem_bound = mean(&edn_optimal_inefficiencies(&data(Benchmark::Lbm, 10), 1));
        assert!(
            (cpu_bound - mem_bound).abs() > 0.02,
            "EDP pins different premiums: bzip2 {cpu_bound:.3} vs lbm {mem_bound:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "only EDP")]
    fn invalid_exponent_panics() {
        let d = data(Benchmark::Bzip2, 2);
        let _ = edn_optimal_index(&d, 0, 3);
    }
}
