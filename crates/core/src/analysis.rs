//! Analysis helpers for the figure harness.

use mcdvfs_types::Seconds;

/// Five-number summary (box-plot statistics) used by Figure 9's
/// stable-region-length distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of values summarized.
    pub count: usize,
}

impl BoxStats {
    /// Computes the summary of `values`.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty distribution");
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7 quantile).
            let h = p * (v.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            v[lo] + (h - lo as f64) * (v[hi] - v[lo])
        };
        Self {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("nonempty"),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            count: v.len(),
        }
    }

    /// Convenience for integer-valued distributions (region lengths).
    #[must_use]
    pub fn of_lengths(lengths: &[usize]) -> Self {
        let v: Vec<f64> = lengths.iter().map(|&l| l as f64).collect();
        Self::of(&v)
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Execution time normalized against a baseline (Figure 10's y-axis).
///
/// # Panics
///
/// Panics in debug builds when the baseline is non-positive.
#[must_use]
pub fn normalized_time(time: Seconds, baseline: Seconds) -> f64 {
    debug_assert!(baseline.value() > 0.0);
    time / baseline
}

/// Percent change helper: `(new - old) / old * 100`.
#[must_use]
pub fn percent_change(old: f64, new: f64) -> f64 {
    (new - old) / old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_distribution() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn box_stats_interpolates_quartiles() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn box_stats_single_value() {
        let s = BoxStats::of(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn box_stats_unsorted_input() {
        let s = BoxStats::of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn of_lengths_converts() {
        let s = BoxStats::of_lengths(&[1, 2, 3]);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distribution_panics() {
        let _ = BoxStats::of(&[]);
    }

    #[test]
    fn normalized_time_ratio() {
        let n = normalized_time(Seconds::new(0.5), Seconds::new(2.0));
        assert!((n - 0.25).abs() < 1e-12);
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(10.0, 11.0) - 10.0).abs() < 1e-12);
        assert!((percent_change(10.0, 9.0) + 10.0).abs() < 1e-12);
    }
}
