//! The inefficiency metric and inefficiency budgets.
//!
//! The paper's central metric: `I = E / Emin`, the energy an execution
//! consumed relative to the minimum energy the *same work* could have
//! consumed on the *same device*. Unlike absolute-energy budgets or
//! energy-delay products, inefficiency is relative to the application's
//! inherent energy needs and therefore portable across applications and
//! devices. `I = 1` is the most efficient possible execution; `I = 1.5`
//! means 50% extra energy was spent.

use mcdvfs_types::{Error, Joules, Result};
use std::fmt;

/// A measured inefficiency value (dimensionless, `≥ 1` up to measurement
/// noise).
///
/// # Examples
///
/// ```
/// use mcdvfs_core::Inefficiency;
/// use mcdvfs_types::Joules;
///
/// let i = Inefficiency::compute(Joules::new(1.5), Joules::new(1.0)).unwrap();
/// assert!((i.value() - 1.5).abs() < 1e-12);
/// assert_eq!(format!("{i:.2}"), "1.50");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Inefficiency(f64);

impl Inefficiency {
    /// The perfectly efficient execution.
    pub const ONE: Self = Self(1.0);

    /// Computes `I = energy / emin`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `emin` is not positive or
    /// either input is non-finite.
    pub fn compute(energy: Joules, emin: Joules) -> Result<Self> {
        if !(emin.value() > 0.0 && emin.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "emin",
                reason: "minimum energy must be positive and finite".into(),
            });
        }
        if !(energy.value() >= 0.0 && energy.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "energy",
                reason: "energy must be non-negative and finite".into(),
            });
        }
        Ok(Self(energy / emin))
    }

    /// The raw ratio.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Extra energy fraction over the most efficient execution
    /// (`I = 1.5` → `0.5`).
    #[must_use]
    pub fn excess(self) -> f64 {
        self.0 - 1.0
    }
}

impl fmt::Display for Inefficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}", p, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// An inefficiency constraint: how much extra energy the system may spend
/// to improve performance.
///
/// Budgets are set by the user, the application, or the OS (e.g. by
/// priority). [`InefficiencyBudget::Unconstrained`] is the paper's `∞`
/// budget: energy is unlimited and the tuner always picks the fastest
/// settings.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::{Inefficiency, InefficiencyBudget};
///
/// let budget = InefficiencyBudget::bounded(1.3).unwrap();
/// assert!(budget.admits(Inefficiency::ONE));
/// assert!(!budget.admits(Inefficiency::compute(
///     mcdvfs_types::Joules::new(2.0),
///     mcdvfs_types::Joules::new(1.0),
/// ).unwrap()));
/// assert!(InefficiencyBudget::Unconstrained.admits_value(99.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub enum InefficiencyBudget {
    /// At most this much inefficiency (`≥ 1`).
    Bounded(f64),
    /// The `∞` budget: no energy constraint.
    Unconstrained,
}

impl InefficiencyBudget {
    /// Creates a bounded budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `budget < 1` (no execution
    /// can beat its own minimum energy) or is non-finite.
    pub fn bounded(budget: f64) -> Result<Self> {
        if !(budget >= 1.0 && budget.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: format!("inefficiency budget must be >= 1 and finite, got {budget}"),
            });
        }
        Ok(Self::Bounded(budget))
    }

    /// The perfectly-efficient budget `I = 1` (with a hair of slack for
    /// floating-point round-off so the Emin setting itself always passes).
    #[must_use]
    pub fn most_efficient() -> Self {
        Self::Bounded(1.0)
    }

    /// `true` when `inefficiency` satisfies the budget.
    #[must_use]
    pub fn admits(self, inefficiency: Inefficiency) -> bool {
        self.admits_value(inefficiency.value())
    }

    /// Relative tolerance applied at the budget boundary: the same 0.5%
    /// noise band the paper's optimal-settings tie-break filters. Measured
    /// energies carry simulation noise, so a setting within noise of the
    /// budget is considered compliant (and the `Emin` setting itself is
    /// always admitted by the `I = 1` budget despite round-off).
    pub const NOISE_TOLERANCE: f64 = 0.005;

    /// `true` when the raw ratio satisfies the budget, within
    /// [`Self::NOISE_TOLERANCE`].
    #[must_use]
    pub fn admits_value(self, inefficiency: f64) -> bool {
        match self {
            Self::Bounded(b) => inefficiency <= b * (1.0 + Self::NOISE_TOLERANCE),
            Self::Unconstrained => true,
        }
    }

    /// The numeric bound, or `None` when unconstrained.
    #[must_use]
    pub fn bound(self) -> Option<f64> {
        match self {
            Self::Bounded(b) => Some(b),
            Self::Unconstrained => None,
        }
    }
}

impl fmt::Display for InefficiencyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bounded(b) => write!(f, "I={b}"),
            Self::Unconstrained => f.write_str("I=∞"),
        }
    }
}

/// The maximum achievable whole-run inefficiency `Imax` for a
/// characterized workload: the worst fixed-setting total energy over the
/// best (paper Section II-A).
///
/// The paper argues the absolute value of `Imax` is irrelevant to tuning
/// (an unconstrained budget just means "best performance at any cost") but
/// observes it lands between 1.5 and 2 for its benchmarks; exposing it
/// lets budget-setting code clamp user inputs to the meaningful range.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::imax;
/// use mcdvfs_sim::{CharacterizationGrid, System};
/// use mcdvfs_types::FrequencyGrid;
/// use mcdvfs_workloads::Benchmark;
///
/// let data = CharacterizationGrid::characterize(
///     &System::galaxy_nexus_class(),
///     &Benchmark::Gobmk.trace().window(0, 10),
///     FrequencyGrid::coarse(),
/// );
/// let imax = imax(&data);
/// assert!(imax > 1.0);
/// ```
#[must_use]
pub fn imax(data: &mcdvfs_sim::CharacterizationGrid) -> f64 {
    let emin = data.min_total_energy();
    (0..data.n_settings())
        .map(|i| data.total_energy_at(i) / emin)
        .fold(1.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_ratio() {
        let i = Inefficiency::compute(Joules::new(3.0), Joules::new(2.0)).unwrap();
        assert!((i.value() - 1.5).abs() < 1e-12);
        assert!((i.excess() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emin_execution_has_inefficiency_one() {
        let e = Joules::new(0.042);
        let i = Inefficiency::compute(e, e).unwrap();
        assert_eq!(i, Inefficiency::ONE);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Inefficiency::compute(Joules::new(1.0), Joules::ZERO).is_err());
        assert!(Inefficiency::compute(Joules::new(1.0), Joules::new(-1.0)).is_err());
        assert!(Inefficiency::compute(Joules::new(f64::NAN), Joules::new(1.0)).is_err());
        assert!(Inefficiency::compute(Joules::new(-1.0), Joules::new(1.0)).is_err());
    }

    #[test]
    fn bounded_budget_admits_up_to_bound() {
        let b = InefficiencyBudget::bounded(1.3).unwrap();
        assert!(b.admits_value(1.0));
        assert!(b.admits_value(1.3));
        assert!(b.admits_value(1.3 + 1e-12), "epsilon slack");
        assert!(!b.admits_value(1.31));
        assert_eq!(b.bound(), Some(1.3));
    }

    #[test]
    fn unconstrained_admits_everything() {
        let b = InefficiencyBudget::Unconstrained;
        assert!(b.admits_value(1.0));
        assert!(b.admits_value(1e9));
        assert_eq!(b.bound(), None);
    }

    #[test]
    fn sub_unity_budget_rejected() {
        assert!(InefficiencyBudget::bounded(0.99).is_err());
        assert!(InefficiencyBudget::bounded(f64::NAN).is_err());
        assert!(InefficiencyBudget::bounded(f64::INFINITY).is_err());
        assert!(InefficiencyBudget::bounded(1.0).is_ok());
    }

    #[test]
    fn most_efficient_budget_admits_exactly_emin() {
        let b = InefficiencyBudget::most_efficient();
        assert!(b.admits(Inefficiency::ONE));
        assert!(!b.admits_value(1.01));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            InefficiencyBudget::bounded(1.3).unwrap().to_string(),
            "I=1.3"
        );
        assert_eq!(InefficiencyBudget::Unconstrained.to_string(), "I=∞");
        let i = Inefficiency::compute(Joules::new(1.234), Joules::new(1.0)).unwrap();
        assert_eq!(format!("{i:.1}"), "1.2");
    }

    #[test]
    fn budgets_are_ordered() {
        let lo = InefficiencyBudget::bounded(1.0).unwrap();
        let hi = InefficiencyBudget::bounded(1.6).unwrap();
        assert!(lo < hi);
    }
}
