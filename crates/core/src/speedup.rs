//! Speedup — the paper's performance metric.
//!
//! "We express performance in terms of speedup, the ratio of execution time
//! for a given configuration to the longest execution time." A speedup of
//! 1.0 is therefore the *slowest* observed configuration, and larger is
//! faster.

use mcdvfs_types::Seconds;
use std::fmt;

/// A speedup ratio relative to the slowest configuration (`≥ 1` when the
/// baseline really is the longest time).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speedup(f64);

impl Speedup {
    /// The baseline (slowest) configuration.
    pub const BASELINE: Self = Self(1.0);

    /// Wraps a raw ratio.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the value is non-positive or non-finite.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        debug_assert!(ratio > 0.0 && ratio.is_finite(), "speedup must be positive");
        Self(ratio)
    }

    /// The raw ratio.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Relative performance loss of `self` versus a faster `other`
    /// (`0.05` = 5% slower).
    #[must_use]
    pub fn loss_vs(self, other: Speedup) -> f64 {
        1.0 - self.0 / other.0
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}x", p, self.0)
        } else {
            write!(f, "{}x", self.0)
        }
    }
}

/// Computes the speedup of `time` against the longest (baseline) time.
///
/// # Panics
///
/// Panics in debug builds when either duration is non-positive.
///
/// # Examples
///
/// ```
/// use mcdvfs_core::speedup_of;
/// use mcdvfs_types::Seconds;
///
/// let s = speedup_of(Seconds::new(2.0), Seconds::new(8.0));
/// assert!((s.value() - 4.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn speedup_of(time: Seconds, longest: Seconds) -> Speedup {
    debug_assert!(time.value() > 0.0 && longest.value() > 0.0);
    Speedup::new(longest / time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowest_configuration_has_speedup_one() {
        let t = Seconds::new(5.0);
        assert_eq!(speedup_of(t, t), Speedup::BASELINE);
    }

    #[test]
    fn faster_is_larger() {
        let s2 = speedup_of(Seconds::new(2.0), Seconds::new(10.0));
        let s5 = speedup_of(Seconds::new(5.0), Seconds::new(10.0));
        assert!(s2 > s5);
        assert!((s2.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn loss_vs_faster_setting() {
        let fast = Speedup::new(2.0);
        let slow = Speedup::new(1.9);
        assert!((slow.loss_vs(fast) - 0.05).abs() < 1e-12);
        assert_eq!(fast.loss_vs(fast), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.2}", Speedup::new(1.5)), "1.50x");
        assert_eq!(Speedup::new(2.0).to_string(), "2x");
    }
}
