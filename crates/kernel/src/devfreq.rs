//! The devfreq device for the memory controller, mirroring
//! `/sys/class/devfreq/<dev>/`.
//!
//! The paper "developed a memory frequency governor similar to existing
//! Linux CPU frequency governors"; devfreq is the kernel framework that
//! governor lives in. Frequencies are exchanged in **Hz** strings (devfreq
//! convention, unlike cpufreq's kHz), the userspace target lives at
//! `userspace/set_freq`, and — matching the paper's platform — only
//! frequency scales: there is no voltage attribute at all.

use crate::cpufreq::parse_khz;
use crate::sysfs::{SysfsDir, SysfsError};
use mcdvfs_types::{FrequencyGrid, MemFreq};

/// The governors the modelled kernel ships for memory.
pub(crate) const MEM_GOVERNORS: [&str; 3] = ["performance", "powersave", "userspace"];

/// Backing state of a devfreq device.
#[derive(Debug, Clone)]
pub(crate) struct DevfreqState {
    /// Supported steps in Hz, ascending.
    steps_hz: Vec<u64>,
    min_hz: u64,
    max_hz: u64,
    governor: String,
    cur_hz: u64,
}

impl DevfreqState {
    /// Largest step ≤ `hz` (or the lowest step when `hz` is below all).
    fn snap_floor(&self, hz: u64) -> u64 {
        *self
            .steps_hz
            .iter()
            .rev()
            .find(|&&s| s <= hz)
            .unwrap_or_else(|| self.steps_hz.first().expect("grid is never empty"))
    }

    /// Smallest step ≥ `hz` (or the highest step when `hz` is above all).
    fn snap_ceil(&self, hz: u64) -> u64 {
        *self
            .steps_hz
            .iter()
            .find(|&&s| s >= hz)
            .unwrap_or_else(|| self.steps_hz.last().expect("grid is never empty"))
    }

    fn clamp_snap(&self, hz: u64) -> u64 {
        let clamped = hz.clamp(self.min_hz, self.max_hz);
        // Bounds are snapped onto steps at write time (floor for min, ceil
        // for max), so `min_hz` itself is always a supported step and the
        // filter below can never come up empty.
        *self
            .steps_hz
            .iter()
            .filter(|&&s| (self.min_hz..=self.max_hz).contains(&s))
            .min_by_key(|&&s| s.abs_diff(clamped))
            .expect("bounds always contain at least one step")
    }

    fn apply_governor(&mut self) {
        match self.governor.as_str() {
            "performance" => self.cur_hz = self.clamp_snap(self.max_hz),
            "powersave" => self.cur_hz = self.clamp_snap(self.min_hz),
            _ => self.cur_hz = self.clamp_snap(self.cur_hz),
        }
    }
}

/// A devfreq device directory for the LPDDR3 controller.
///
/// # Examples
///
/// ```
/// use mcdvfs_kernel::DevfreqDevice;
/// use mcdvfs_types::FrequencyGrid;
///
/// let mut dev = DevfreqDevice::new(FrequencyGrid::coarse());
/// dev.write("governor", "userspace").unwrap();
/// dev.write("userspace/set_freq", "600000000").unwrap(); // Hz
/// assert_eq!(dev.read("cur_freq").unwrap(), "600000000");
/// assert_eq!(dev.target().mhz(), 600);
/// ```
#[derive(Debug)]
pub struct DevfreqDevice {
    dir: SysfsDir<DevfreqState>,
}

impl DevfreqDevice {
    /// Creates the device for the memory domain of `grid`, booting under
    /// `performance` at the maximum frequency.
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        let steps_hz: Vec<u64> = grid
            .mem_freqs()
            .map(|f| u64::from(f.mhz()) * 1_000_000)
            .collect();
        let state = DevfreqState {
            min_hz: *steps_hz.first().expect("grid is never empty"),
            max_hz: *steps_hz.last().expect("grid is never empty"),
            cur_hz: *steps_hz.last().expect("grid is never empty"),
            steps_hz,
            governor: "performance".to_string(),
        };
        let mut dir = SysfsDir::new(state);

        dir.attr_ro("available_frequencies", |s| {
            s.steps_hz
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        });
        dir.attr_ro("available_governors", |_| MEM_GOVERNORS.join(" "));
        dir.attr_ro("cur_freq", |s| s.cur_hz.to_string());
        dir.attr_rw(
            "min_freq",
            |s| s.min_hz.to_string(),
            |s, v| {
                let hz = parse_khz(v)?; // same integer grammar
                let hw_lo = *s.steps_hz.first().expect("nonempty");
                let hw_hi = *s.steps_hz.last().expect("nonempty");
                let hz = hz.clamp(hw_lo, hw_hi);
                if hz > s.max_hz {
                    return Err(format!("min {hz} above max {}", s.max_hz));
                }
                // Snap down onto the grid so [min, max] always brackets at
                // least one supported step.
                s.min_hz = s.snap_floor(hz);
                s.apply_governor();
                Ok(s.min_hz.to_string())
            },
        );
        dir.attr_rw(
            "max_freq",
            |s| s.max_hz.to_string(),
            |s, v| {
                let hz = parse_khz(v)?;
                let hw_lo = *s.steps_hz.first().expect("nonempty");
                let hw_hi = *s.steps_hz.last().expect("nonempty");
                let hz = hz.clamp(hw_lo, hw_hi);
                if hz < s.min_hz {
                    return Err(format!("max {hz} below min {}", s.min_hz));
                }
                // Snap up onto the grid; see min_freq.
                s.max_hz = s.snap_ceil(hz);
                s.apply_governor();
                Ok(s.max_hz.to_string())
            },
        );
        dir.attr_rw(
            "governor",
            |s| s.governor.clone(),
            |s, v| {
                let name = v.trim();
                if !MEM_GOVERNORS.contains(&name) {
                    return Err(format!("unknown governor {name:?}"));
                }
                s.governor = name.to_string();
                s.apply_governor();
                Ok(name.to_string())
            },
        );
        dir.attr_rw(
            "userspace/set_freq",
            |s| {
                if s.governor == "userspace" {
                    s.cur_hz.to_string()
                } else {
                    "<unsupported>".to_string()
                }
            },
            |s, v| {
                if s.governor != "userspace" {
                    return Err("set_freq requires the userspace governor".into());
                }
                let hz = parse_khz(v)?;
                s.cur_hz = s.clamp_snap(hz);
                Ok(s.cur_hz.to_string())
            },
        );

        Self { dir }
    }

    /// Reads an attribute.
    ///
    /// # Errors
    ///
    /// See [`SysfsDir::read`].
    pub fn read(&self, attr: &str) -> Result<String, SysfsError> {
        self.dir.read(attr)
    }

    /// Writes an attribute.
    ///
    /// # Errors
    ///
    /// See [`SysfsDir::write`].
    pub fn write(&mut self, attr: &str, value: &str) -> Result<(), SysfsError> {
        self.dir.write(attr, value)
    }

    /// Queues a fault for the next write to `attr` (see
    /// [`SysfsDir::inject_fault`]).
    pub fn inject_fault(&mut self, attr: &str, error: SysfsError) {
        self.dir.inject_fault(attr, error);
    }

    /// Attribute names, sorted.
    #[must_use]
    pub fn list(&self) -> Vec<&str> {
        self.dir.list()
    }

    /// The current target frequency as a typed value.
    #[must_use]
    pub fn target(&self) -> MemFreq {
        MemFreq::from_mhz((self.dir.state().cur_hz / 1_000_000) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DevfreqDevice {
        DevfreqDevice::new(FrequencyGrid::coarse())
    }

    #[test]
    fn boots_at_performance_max() {
        let d = device();
        assert_eq!(d.read("governor").unwrap(), "performance");
        assert_eq!(d.read("cur_freq").unwrap(), "800000000");
    }

    #[test]
    fn frequencies_are_in_hz() {
        let d = device();
        let avail = d.read("available_frequencies").unwrap();
        assert!(avail.starts_with("200000000"));
        assert!(avail.ends_with("800000000"));
    }

    #[test]
    fn userspace_set_freq_snaps() {
        let mut d = device();
        d.write("governor", "userspace").unwrap();
        d.write("userspace/set_freq", "433000000").unwrap();
        assert_eq!(d.target().mhz(), 400);
    }

    #[test]
    fn set_freq_requires_userspace() {
        let mut d = device();
        assert!(d.write("userspace/set_freq", "400000000").is_err());
        assert_eq!(d.read("userspace/set_freq").unwrap(), "<unsupported>");
    }

    #[test]
    fn bounds_steer_governors() {
        let mut d = device();
        d.write("max_freq", "500000000").unwrap();
        assert_eq!(d.read("cur_freq").unwrap(), "500000000");
        d.write("governor", "powersave").unwrap();
        d.write("min_freq", "300000000").unwrap();
        assert_eq!(d.read("cur_freq").unwrap(), "300000000");
    }

    #[test]
    fn no_voltage_attribute_exists() {
        // The paper's platform scales memory frequency only.
        let d = device();
        assert!(d.read("voltage").is_err());
        assert!(!d.list().iter().any(|a| a.contains("volt")));
    }

    #[test]
    fn memory_has_no_ondemand_governor_here() {
        let mut d = device();
        assert!(d.write("governor", "ondemand").is_err());
    }
}
