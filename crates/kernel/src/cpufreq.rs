//! The cpufreq policy object, mirroring
//! `/sys/devices/system/cpu/cpu0/cpufreq/`.
//!
//! Frequencies are exchanged in **kHz** strings, exactly as Linux cpufreq
//! does. Validation follows the kernel's rules: `scaling_setspeed` only
//! works under the `userspace` governor (reading it under any other
//! governor yields `<unsupported>`), bounds writes clamp to hardware
//! limits and reject inverted ranges, and targets snap to the closest
//! supported step inside the policy bounds.

use crate::sysfs::{SysfsDir, SysfsError};
use mcdvfs_types::{CpuFreq, FrequencyGrid};

/// The governors the modelled kernel ships for the CPU.
pub(crate) const CPU_GOVERNORS: [&str; 4] = ["performance", "powersave", "userspace", "ondemand"];

/// Backing state of a cpufreq policy.
#[derive(Debug, Clone)]
pub(crate) struct CpufreqState {
    /// Supported steps in kHz, ascending.
    steps_khz: Vec<u64>,
    min_khz: u64,
    max_khz: u64,
    governor: String,
    /// Current target in kHz.
    cur_khz: u64,
}

impl CpufreqState {
    /// Largest step ≤ `khz` (or the lowest step when `khz` is below all).
    fn snap_floor(&self, khz: u64) -> u64 {
        *self
            .steps_khz
            .iter()
            .rev()
            .find(|&&s| s <= khz)
            .unwrap_or_else(|| self.steps_khz.first().expect("grid is never empty"))
    }

    /// Smallest step ≥ `khz` (or the highest step when `khz` is above all).
    fn snap_ceil(&self, khz: u64) -> u64 {
        *self
            .steps_khz
            .iter()
            .find(|&&s| s >= khz)
            .unwrap_or_else(|| self.steps_khz.last().expect("grid is never empty"))
    }

    fn clamp_snap(&self, khz: u64) -> u64 {
        let lo = self.min_khz;
        let hi = self.max_khz;
        let clamped = khz.clamp(lo, hi);
        // Bounds are snapped onto steps at write time (floor for min, ceil
        // for max), so `lo` itself is always a supported step and the
        // filter below can never come up empty.
        *self
            .steps_khz
            .iter()
            .filter(|&&s| (lo..=hi).contains(&s))
            .min_by_key(|&&s| s.abs_diff(clamped))
            .expect("bounds always contain at least one step")
    }

    fn apply_governor(&mut self) {
        match self.governor.as_str() {
            "performance" | "ondemand" => self.cur_khz = self.clamp_snap(self.max_khz),
            "powersave" => self.cur_khz = self.clamp_snap(self.min_khz),
            _ => self.cur_khz = self.clamp_snap(self.cur_khz),
        }
    }
}

/// A cpufreq policy directory.
///
/// # Examples
///
/// ```
/// use mcdvfs_kernel::CpufreqPolicy;
/// use mcdvfs_types::FrequencyGrid;
///
/// let mut policy = CpufreqPolicy::new(FrequencyGrid::coarse());
/// assert_eq!(policy.read("scaling_governor").unwrap(), "performance");
/// policy.write("scaling_governor", "userspace").unwrap();
/// policy.write("scaling_setspeed", "712345").unwrap(); // snaps to 700 MHz
/// assert_eq!(policy.read("scaling_cur_freq").unwrap(), "700000");
/// ```
#[derive(Debug)]
pub struct CpufreqPolicy {
    dir: SysfsDir<CpufreqState>,
}

impl CpufreqPolicy {
    /// Creates the policy for the CPU domain of `grid`, booting under the
    /// `performance` governor at the maximum frequency (Linux's usual boot
    /// state on these platforms).
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        let steps_khz: Vec<u64> = grid
            .cpu_freqs()
            .map(|f| u64::from(f.mhz()) * 1000)
            .collect();
        let state = CpufreqState {
            min_khz: *steps_khz.first().expect("grid is never empty"),
            max_khz: *steps_khz.last().expect("grid is never empty"),
            cur_khz: *steps_khz.last().expect("grid is never empty"),
            steps_khz,
            governor: "performance".to_string(),
        };
        let mut dir = SysfsDir::new(state);

        dir.attr_ro("cpuinfo_min_freq", |s| {
            s.steps_khz.first().expect("nonempty").to_string()
        });
        dir.attr_ro("cpuinfo_max_freq", |s| {
            s.steps_khz.last().expect("nonempty").to_string()
        });
        dir.attr_ro("scaling_available_frequencies", |s| {
            s.steps_khz
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        });
        dir.attr_ro("scaling_available_governors", |_| CPU_GOVERNORS.join(" "));
        dir.attr_ro("scaling_cur_freq", |s| s.cur_khz.to_string());
        dir.attr_rw(
            "scaling_min_freq",
            |s| s.min_khz.to_string(),
            |s, v| {
                let khz = parse_khz(v)?;
                let hw_lo = *s.steps_khz.first().expect("nonempty");
                let hw_hi = *s.steps_khz.last().expect("nonempty");
                let khz = khz.clamp(hw_lo, hw_hi);
                if khz > s.max_khz {
                    return Err(format!("min {khz} above max {}", s.max_khz));
                }
                // Snap down onto the grid so [min, max] always brackets at
                // least one supported step (Linux keeps the raw value, but
                // then resolves targets against the table; our model snaps
                // eagerly so every later lookup is total).
                s.min_khz = s.snap_floor(khz);
                s.apply_governor();
                Ok(s.min_khz.to_string())
            },
        );
        dir.attr_rw(
            "scaling_max_freq",
            |s| s.max_khz.to_string(),
            |s, v| {
                let khz = parse_khz(v)?;
                let hw_lo = *s.steps_khz.first().expect("nonempty");
                let hw_hi = *s.steps_khz.last().expect("nonempty");
                let khz = khz.clamp(hw_lo, hw_hi);
                if khz < s.min_khz {
                    return Err(format!("max {khz} below min {}", s.min_khz));
                }
                // Snap up onto the grid; see scaling_min_freq.
                s.max_khz = s.snap_ceil(khz);
                s.apply_governor();
                Ok(s.max_khz.to_string())
            },
        );
        dir.attr_rw(
            "scaling_governor",
            |s| s.governor.clone(),
            |s, v| {
                let name = v.trim();
                if !CPU_GOVERNORS.contains(&name) {
                    return Err(format!("unknown governor {name:?}"));
                }
                s.governor = name.to_string();
                s.apply_governor();
                Ok(name.to_string())
            },
        );
        dir.attr_rw(
            "scaling_setspeed",
            |s| {
                if s.governor == "userspace" {
                    s.cur_khz.to_string()
                } else {
                    "<unsupported>".to_string()
                }
            },
            |s, v| {
                if s.governor != "userspace" {
                    return Err("scaling_setspeed requires the userspace governor".into());
                }
                let khz = parse_khz(v)?;
                s.cur_khz = s.clamp_snap(khz);
                Ok(s.cur_khz.to_string())
            },
        );

        Self { dir }
    }

    /// Reads an attribute.
    ///
    /// # Errors
    ///
    /// See [`SysfsDir::read`].
    pub fn read(&self, attr: &str) -> Result<String, SysfsError> {
        self.dir.read(attr)
    }

    /// Writes an attribute.
    ///
    /// # Errors
    ///
    /// See [`SysfsDir::write`].
    pub fn write(&mut self, attr: &str, value: &str) -> Result<(), SysfsError> {
        self.dir.write(attr, value)
    }

    /// Queues a fault for the next write to `attr` (see
    /// [`SysfsDir::inject_fault`]).
    pub fn inject_fault(&mut self, attr: &str, error: SysfsError) {
        self.dir.inject_fault(attr, error);
    }

    /// Attribute names, sorted.
    #[must_use]
    pub fn list(&self) -> Vec<&str> {
        self.dir.list()
    }

    /// The current target frequency as a typed value.
    #[must_use]
    pub fn target(&self) -> CpuFreq {
        CpuFreq::from_mhz((self.dir.state().cur_khz / 1000) as u32)
    }
}

pub(crate) fn parse_khz(v: &str) -> Result<u64, String> {
    v.trim()
        .parse::<u64>()
        .map_err(|_| format!("not a frequency in kHz: {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> CpufreqPolicy {
        CpufreqPolicy::new(FrequencyGrid::coarse())
    }

    #[test]
    fn boots_at_performance_max() {
        let p = policy();
        assert_eq!(p.read("scaling_governor").unwrap(), "performance");
        assert_eq!(p.read("scaling_cur_freq").unwrap(), "1000000");
        assert_eq!(p.target().mhz(), 1000);
    }

    #[test]
    fn hardware_limits_are_exposed_in_khz() {
        let p = policy();
        assert_eq!(p.read("cpuinfo_min_freq").unwrap(), "100000");
        assert_eq!(p.read("cpuinfo_max_freq").unwrap(), "1000000");
        let avail = p.read("scaling_available_frequencies").unwrap();
        assert!(avail.starts_with("100000 200000"));
        assert!(avail.ends_with("1000000"));
    }

    #[test]
    fn setspeed_requires_userspace_governor() {
        let mut p = policy();
        let err = p.write("scaling_setspeed", "500000").unwrap_err();
        assert!(err.to_string().contains("userspace"));
        assert_eq!(p.read("scaling_setspeed").unwrap(), "<unsupported>");
        p.write("scaling_governor", "userspace").unwrap();
        p.write("scaling_setspeed", "500000").unwrap();
        assert_eq!(p.read("scaling_cur_freq").unwrap(), "500000");
    }

    #[test]
    fn setspeed_snaps_to_supported_steps() {
        let mut p = policy();
        p.write("scaling_governor", "userspace").unwrap();
        p.write("scaling_setspeed", "749999").unwrap();
        assert_eq!(p.read("scaling_cur_freq").unwrap(), "700000");
        p.write("scaling_setspeed", "750001").unwrap();
        assert_eq!(p.read("scaling_cur_freq").unwrap(), "800000");
    }

    #[test]
    fn bounds_clamp_the_governor_target() {
        let mut p = policy();
        p.write("scaling_max_freq", "600000").unwrap();
        assert_eq!(
            p.read("scaling_cur_freq").unwrap(),
            "600000",
            "performance governor follows the lowered cap"
        );
        p.write("scaling_governor", "powersave").unwrap();
        p.write("scaling_min_freq", "300000").unwrap();
        assert_eq!(p.read("scaling_cur_freq").unwrap(), "300000");
    }

    #[test]
    fn inverted_bounds_are_rejected() {
        let mut p = policy();
        p.write("scaling_max_freq", "500000").unwrap();
        assert!(p.write("scaling_min_freq", "600000").is_err());
        p.write("scaling_min_freq", "400000").unwrap();
        assert!(p.write("scaling_max_freq", "300000").is_err());
    }

    #[test]
    fn unknown_governor_rejected() {
        let mut p = policy();
        let err = p.write("scaling_governor", "turbo").unwrap_err();
        assert!(err.to_string().contains("unknown governor"));
        assert_eq!(p.read("scaling_governor").unwrap(), "performance");
    }

    #[test]
    fn echo_style_newlines_tolerated() {
        let mut p = policy();
        p.write("scaling_governor", "userspace\n").unwrap();
        p.write("scaling_setspeed", "400000\n").unwrap();
        assert_eq!(p.target().mhz(), 400);
    }

    #[test]
    fn garbage_writes_are_einval() {
        let mut p = policy();
        p.write("scaling_governor", "userspace").unwrap();
        assert!(p.write("scaling_setspeed", "fast please").is_err());
        assert!(p.write("scaling_min_freq", "-1").is_err());
    }

    #[test]
    fn available_governors_listed() {
        let p = policy();
        let g = p.read("scaling_available_governors").unwrap();
        for name in CPU_GOVERNORS {
            assert!(g.contains(name));
        }
        assert!(p.list().contains(&"scaling_setspeed"));
    }
}
