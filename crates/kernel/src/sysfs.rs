//! An in-memory sysfs-like attribute tree.
//!
//! Mirrors the contract kernel policy code relies on: attributes are
//! newline-terminated strings; writes are validated and answer `EINVAL`
//! for malformed values or `EACCES` for read-only attributes; unknown
//! paths answer `ENOENT`. Real sysfs stores can also answer `EAGAIN` or
//! `EINTR` transiently (a busy clock framework, an interrupted syscall);
//! [`SysfsDir::inject_fault`] queues such errors for the next writes so
//! retry paths are testable deterministically.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Errors returned by the simulated sysfs, named after their errno
/// equivalents.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SysfsError {
    /// `ENOENT`: no such attribute.
    NoEntry {
        /// The path that was looked up.
        path: String,
    },
    /// `EACCES`: attribute is not writable.
    PermissionDenied {
        /// The read-only attribute.
        path: String,
    },
    /// `EINVAL`: the written value was rejected.
    InvalidValue {
        /// The attribute written to.
        path: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// `EAGAIN`: the store was momentarily busy; retrying may succeed.
    TryAgain {
        /// The attribute written to.
        path: String,
    },
    /// `EINTR`: the operation was interrupted before completing.
    Interrupted {
        /// The attribute written to.
        path: String,
    },
}

impl SysfsError {
    /// `true` for errors a bounded retry is allowed to absorb
    /// (`EAGAIN`/`EINTR`); validation and permission errors are
    /// permanent.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SysfsError::TryAgain { .. } | SysfsError::Interrupted { .. }
        )
    }
}

impl fmt::Display for SysfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysfsError::NoEntry { path } => write!(f, "no such attribute: {path}"),
            SysfsError::PermissionDenied { path } => {
                write!(f, "attribute is read-only: {path}")
            }
            SysfsError::InvalidValue { path, reason } => {
                write!(f, "invalid value for {path}: {reason}")
            }
            SysfsError::TryAgain { path } => {
                write!(f, "resource temporarily unavailable: {path}")
            }
            SysfsError::Interrupted { path } => write!(f, "interrupted: {path}"),
        }
    }
}

impl std::error::Error for SysfsError {}

/// Outcome of a validated write: the canonical stored value.
type WriteHandler<S> = Box<dyn Fn(&mut S, &str) -> Result<String, String>>;
/// Computes an attribute's current value from the backing state.
type ReadHandler<S> = Box<dyn Fn(&S) -> String>;

/// One attribute: how to read it and (optionally) how to write it.
struct Attribute<S> {
    read: ReadHandler<S>,
    write: Option<WriteHandler<S>>,
}

/// A directory of attributes backed by a device-state type `S`.
///
/// # Examples
///
/// ```
/// use mcdvfs_kernel::SysfsDir;
///
/// let mut dir: SysfsDir<u32> = SysfsDir::new(7);
/// dir.attr_ro("value", |s| s.to_string());
/// dir.attr_rw(
///     "double",
///     |s| (s * 2).to_string(),
///     |s, v| {
///         let parsed: u32 = v.trim().parse().map_err(|_| "not a number".to_string())?;
///         *s = parsed / 2;
///         Ok(v.trim().to_string())
///     },
/// );
/// assert_eq!(dir.read("value").unwrap(), "7");
/// dir.write("double", "10\n").unwrap();
/// assert_eq!(dir.read("value").unwrap(), "5");
/// assert!(dir.write("value", "1").is_err());
/// ```
pub struct SysfsDir<S> {
    state: S,
    attributes: BTreeMap<String, Attribute<S>>,
    faults: BTreeMap<String, VecDeque<SysfsError>>,
}

impl<S: fmt::Debug> fmt::Debug for SysfsDir<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SysfsDir")
            .field("state", &self.state)
            .field("attributes", &self.attributes.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<S> SysfsDir<S> {
    /// Creates a directory over backing state.
    #[must_use]
    pub fn new(state: S) -> Self {
        Self {
            state,
            attributes: BTreeMap::new(),
            faults: BTreeMap::new(),
        }
    }

    /// Queues `error` for the next write to `name`; repeated calls build
    /// a FIFO of faults, consumed one per write attempt before the real
    /// handler runs. This is how tests exercise transient `EAGAIN` /
    /// `EINTR` paths deterministically.
    pub fn inject_fault(&mut self, name: &str, error: SysfsError) {
        self.faults
            .entry(name.to_string())
            .or_default()
            .push_back(error);
    }

    /// Registers a read-only attribute.
    pub fn attr_ro(&mut self, name: &str, read: impl Fn(&S) -> String + 'static) -> &mut Self {
        self.attributes.insert(
            name.to_string(),
            Attribute {
                read: Box::new(read),
                write: None,
            },
        );
        self
    }

    /// Registers a read-write attribute. The write handler validates and
    /// applies the value, returning the canonical form or an `EINVAL`
    /// reason.
    pub fn attr_rw(
        &mut self,
        name: &str,
        read: impl Fn(&S) -> String + 'static,
        write: impl Fn(&mut S, &str) -> Result<String, String> + 'static,
    ) -> &mut Self {
        self.attributes.insert(
            name.to_string(),
            Attribute {
                read: Box::new(read),
                write: Some(Box::new(write)),
            },
        );
        self
    }

    /// Reads an attribute.
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoEntry`] for unknown names.
    pub fn read(&self, name: &str) -> Result<String, SysfsError> {
        let attr = self
            .attributes
            .get(name)
            .ok_or_else(|| SysfsError::NoEntry {
                path: name.to_string(),
            })?;
        Ok((attr.read)(&self.state))
    }

    /// Writes an attribute (trailing whitespace is tolerated, as `echo`
    /// appends a newline).
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoEntry`], [`SysfsError::PermissionDenied`] or
    /// [`SysfsError::InvalidValue`]; any error queued by
    /// [`Self::inject_fault`] is returned first (once per attempt).
    pub fn write(&mut self, name: &str, value: &str) -> Result<(), SysfsError> {
        let attr = self
            .attributes
            .get(name)
            .ok_or_else(|| SysfsError::NoEntry {
                path: name.to_string(),
            })?;
        if let Some(queue) = self.faults.get_mut(name) {
            if let Some(error) = queue.pop_front() {
                return Err(error);
            }
        }
        let Some(write) = &attr.write else {
            return Err(SysfsError::PermissionDenied {
                path: name.to_string(),
            });
        };
        write(&mut self.state, value)
            .map(|_| ())
            .map_err(|reason| SysfsError::InvalidValue {
                path: name.to_string(),
                reason,
            })
    }

    /// Lists attribute names, sorted.
    #[must_use]
    pub fn list(&self) -> Vec<&str> {
        self.attributes.keys().map(String::as_str).collect()
    }

    /// Immutable access to the backing state.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the backing state (driver-internal paths).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> SysfsDir<i64> {
        let mut d = SysfsDir::new(0i64);
        d.attr_ro("cur", |s| s.to_string());
        d.attr_rw(
            "set",
            |s| s.to_string(),
            |s, v| {
                let parsed: i64 = v.trim().parse().map_err(|_| format!("bad integer {v:?}"))?;
                if parsed < 0 {
                    return Err("must be non-negative".into());
                }
                *s = parsed;
                Ok(parsed.to_string())
            },
        );
        d
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = dir();
        d.write("set", "42\n").unwrap();
        assert_eq!(d.read("cur").unwrap(), "42");
        assert_eq!(d.read("set").unwrap(), "42");
    }

    #[test]
    fn unknown_attribute_is_enoent() {
        let mut d = dir();
        assert!(matches!(d.read("nope"), Err(SysfsError::NoEntry { .. })));
        assert!(matches!(
            d.write("nope", "1"),
            Err(SysfsError::NoEntry { .. })
        ));
    }

    #[test]
    fn read_only_attribute_is_eacces() {
        let mut d = dir();
        let err = d.write("cur", "1").unwrap_err();
        assert!(matches!(err, SysfsError::PermissionDenied { .. }));
    }

    #[test]
    fn invalid_value_is_einval_and_state_unchanged() {
        let mut d = dir();
        d.write("set", "5").unwrap();
        let err = d.write("set", "banana").unwrap_err();
        assert!(matches!(err, SysfsError::InvalidValue { .. }));
        let err2 = d.write("set", "-3").unwrap_err();
        assert!(err2.to_string().contains("non-negative"));
        assert_eq!(d.read("cur").unwrap(), "5");
    }

    #[test]
    fn list_is_sorted() {
        let d = dir();
        assert_eq!(d.list(), vec!["cur", "set"]);
    }

    #[test]
    fn errors_display_like_errnos() {
        let e = SysfsError::NoEntry { path: "x".into() };
        assert!(e.to_string().contains("no such attribute"));
        let t = SysfsError::TryAgain { path: "x".into() };
        assert!(t.to_string().contains("temporarily unavailable"));
    }

    #[test]
    fn only_eagain_and_eintr_are_transient() {
        let path = || "x".to_string();
        assert!(SysfsError::TryAgain { path: path() }.is_transient());
        assert!(SysfsError::Interrupted { path: path() }.is_transient());
        assert!(!SysfsError::NoEntry { path: path() }.is_transient());
        assert!(!SysfsError::PermissionDenied { path: path() }.is_transient());
        assert!(!SysfsError::InvalidValue {
            path: path(),
            reason: "bad".into()
        }
        .is_transient());
    }

    #[test]
    fn injected_faults_fire_once_each_in_fifo_order() {
        let mut d = dir();
        d.inject_fault("set", SysfsError::TryAgain { path: "set".into() });
        d.inject_fault("set", SysfsError::Interrupted { path: "set".into() });
        assert!(matches!(
            d.write("set", "1"),
            Err(SysfsError::TryAgain { .. })
        ));
        assert!(matches!(
            d.write("set", "1"),
            Err(SysfsError::Interrupted { .. })
        ));
        // Queue drained: the write lands and state moves.
        d.write("set", "9").unwrap();
        assert_eq!(d.read("cur").unwrap(), "9");
        // Unknown attributes still answer ENOENT before any fault fires.
        d.inject_fault(
            "nope",
            SysfsError::TryAgain {
                path: "nope".into(),
            },
        );
        assert!(matches!(
            d.write("nope", "1"),
            Err(SysfsError::NoEntry { .. })
        ));
    }
}
