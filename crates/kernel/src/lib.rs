//! Linux-style kernel interfaces over the simulated DVFS hardware.
//!
//! The paper's Figure 1 shows the software stack it builds inside
//! Android/Linux: a **CPUfreq driver** and a (new) **Memfreq driver**
//! talking to the DVFS controller device, with userspace steering both
//! through sysfs. Reproducing that stack on real hardware needs awkward
//! kernel plumbing; this crate simulates the same interfaces faithfully so
//! policy code written against them is exercised end to end:
//!
//! * [`SysfsDir`] — an in-memory attribute tree with the read/write/EINVAL
//!   semantics of sysfs;
//! * [`CpufreqPolicy`] — `scaling_governor`, `scaling_min_freq`,
//!   `scaling_max_freq`, `scaling_setspeed`, `scaling_cur_freq`,
//!   `scaling_available_*`, with Linux's clamping and validation rules;
//! * [`DevfreqDevice`] — the devfreq equivalent for the memory controller
//!   (`governor`, `min_freq`, `max_freq`, `cur_freq`, `userspace/set_freq`);
//! * [`KernelShim`] — binds both policies to one
//!   [`DvfsController`](mcdvfs_sim::DvfsController) so writes through the
//!   "filesystem" reach the "hardware" and transition costs are charged.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_kernel::KernelShim;
//! use mcdvfs_types::FrequencyGrid;
//!
//! let mut shim = KernelShim::new(FrequencyGrid::coarse());
//! shim.write("cpufreq/scaling_governor", "userspace")?;
//! shim.write("cpufreq/scaling_setspeed", "500000")?; // kHz, like Linux
//! shim.write("devfreq/governor", "userspace")?;
//! shim.write("devfreq/userspace/set_freq", "400000000")?; // Hz, like devfreq
//! assert_eq!(shim.read("cpufreq/scaling_cur_freq")?, "500000");
//! assert_eq!(shim.controller().current().mem.mhz(), 400);
//! # Ok::<(), mcdvfs_kernel::SysfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpufreq;
mod devfreq;
mod shim;
mod sysfs;

pub use cpufreq::CpufreqPolicy;
pub use devfreq::DevfreqDevice;
pub use shim::KernelShim;
pub use sysfs::{SysfsDir, SysfsError};
