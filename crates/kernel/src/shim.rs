//! Binds the cpufreq policy and devfreq device to the DVFS controller.
//!
//! Writes through the sysfs paths reach the simulated hardware: after
//! every successful attribute write the shim pushes the two drivers'
//! current targets into the [`DvfsController`], which validates the joint
//! setting against the platform grid and accounts transition costs —
//! closing the loop of the paper's Figure 1 (userspace → driver → DVFS
//! controller device → clocks).

use crate::cpufreq::CpufreqPolicy;
use crate::devfreq::DevfreqDevice;
use crate::sysfs::SysfsError;
use mcdvfs_sim::{DvfsController, TransitionModel};
use mcdvfs_types::{FreqSetting, FrequencyGrid};

/// The assembled kernel-side stack.
#[derive(Debug)]
pub struct KernelShim {
    cpufreq: CpufreqPolicy,
    devfreq: DevfreqDevice,
    controller: DvfsController,
}

impl KernelShim {
    /// Builds the stack over `grid` with mobile-SoC transition costs,
    /// booted at the grid maximum under `performance` governors.
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        Self::with_transition_model(grid, TransitionModel::mobile_soc())
    }

    /// As [`Self::new`] with an explicit transition model.
    #[must_use]
    pub fn with_transition_model(grid: FrequencyGrid, model: TransitionModel) -> Self {
        Self {
            cpufreq: CpufreqPolicy::new(grid),
            devfreq: DevfreqDevice::new(grid),
            controller: DvfsController::new(grid, grid.max_setting(), model),
        }
    }

    /// Reads `path` (`cpufreq/<attr>` or `devfreq/<attr>`).
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoEntry`] for unknown prefixes or attributes.
    pub fn read(&self, path: &str) -> Result<String, SysfsError> {
        match path.split_once('/') {
            Some(("cpufreq", attr)) => self.cpufreq.read(attr),
            Some(("devfreq", attr)) => self.devfreq.read(attr),
            _ => Err(SysfsError::NoEntry {
                path: path.to_string(),
            }),
        }
    }

    /// Writes `path`, then propagates the drivers' targets to the
    /// hardware controller.
    ///
    /// # Errors
    ///
    /// Propagates driver validation errors; the hardware is only touched
    /// after a successful write.
    pub fn write(&mut self, path: &str, value: &str) -> Result<(), SysfsError> {
        match path.split_once('/') {
            Some(("cpufreq", attr)) => self.cpufreq.write(attr, value)?,
            Some(("devfreq", rest)) => self.devfreq.write(rest, value)?,
            _ => {
                return Err(SysfsError::NoEntry {
                    path: path.to_string(),
                })
            }
        }
        self.apply();
        Ok(())
    }

    /// Pushes the drivers' current targets into the controller.
    fn apply(&mut self) {
        let target = FreqSetting::new(self.cpufreq.target(), self.devfreq.target());
        self.controller
            .request(target)
            .expect("driver targets are always grid steps");
    }

    /// The cpufreq policy.
    #[must_use]
    pub fn cpufreq(&self) -> &CpufreqPolicy {
        &self.cpufreq
    }

    /// The devfreq device.
    #[must_use]
    pub fn devfreq(&self) -> &DevfreqDevice {
        &self.devfreq
    }

    /// The hardware controller (current setting, transition counters and
    /// accumulated costs).
    #[must_use]
    pub fn controller(&self) -> &DvfsController {
        &self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shim() -> KernelShim {
        KernelShim::new(FrequencyGrid::coarse())
    }

    #[test]
    fn boots_at_max_with_no_transitions() {
        let s = shim();
        assert_eq!(s.controller().current(), FreqSetting::from_mhz(1000, 800));
        assert_eq!(s.controller().transition_count(), 0);
    }

    #[test]
    fn userspace_writes_reach_the_hardware() {
        let mut s = shim();
        s.write("cpufreq/scaling_governor", "userspace").unwrap();
        s.write("cpufreq/scaling_setspeed", "500000").unwrap();
        s.write("devfreq/governor", "userspace").unwrap();
        s.write("devfreq/userspace/set_freq", "400000000").unwrap();
        assert_eq!(s.controller().current(), FreqSetting::from_mhz(500, 400));
        // Governor switch to userspace keeps max; two real changes follow.
        assert_eq!(s.controller().cpu_transition_count(), 1);
        assert_eq!(s.controller().mem_transition_count(), 1);
    }

    #[test]
    fn governor_switches_move_the_clocks() {
        let mut s = shim();
        s.write("cpufreq/scaling_governor", "powersave").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 100);
        s.write("devfreq/governor", "powersave").unwrap();
        assert_eq!(s.controller().current().mem.mhz(), 200);
        assert!(s.controller().total_transition_latency().value() > 0.0);
    }

    #[test]
    fn failed_writes_do_not_touch_hardware() {
        let mut s = shim();
        let before = s.controller().transition_count();
        assert!(s.write("cpufreq/scaling_governor", "nonsense").is_err());
        assert!(s.write("cpufreq/scaling_setspeed", "500000").is_err());
        assert!(s.write("memfreq/governor", "userspace").is_err());
        assert_eq!(s.controller().transition_count(), before);
    }

    #[test]
    fn reads_route_by_prefix() {
        let s = shim();
        assert_eq!(s.read("cpufreq/scaling_cur_freq").unwrap(), "1000000");
        assert_eq!(s.read("devfreq/cur_freq").unwrap(), "800000000");
        assert!(s.read("thermal/temp").is_err());
        assert!(s.read("cpufreq").is_err());
    }

    #[test]
    fn bounds_walk_the_platform_through_the_grid() {
        let mut s = shim();
        // A thermal daemon caps the CPU at 600 MHz.
        s.write("cpufreq/scaling_max_freq", "600000").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 600);
        // Then releases the cap: performance governor climbs back.
        s.write("cpufreq/scaling_max_freq", "1000000").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 1000);
        assert_eq!(s.controller().cpu_transition_count(), 2);
    }

    #[test]
    fn accessors_expose_components() {
        let s = shim();
        assert_eq!(s.cpufreq().target().mhz(), 1000);
        assert_eq!(s.devfreq().target().mhz(), 800);
    }
}
