//! Binds the cpufreq policy and devfreq device to the DVFS controller.
//!
//! Writes through the sysfs paths reach the simulated hardware: after
//! every successful attribute write the shim pushes the two drivers'
//! current targets into the [`DvfsController`], which validates the joint
//! setting against the platform grid and accounts transition costs —
//! closing the loop of the paper's Figure 1 (userspace → driver → DVFS
//! controller device → clocks).

use crate::cpufreq::CpufreqPolicy;
use crate::devfreq::DevfreqDevice;
use crate::sysfs::SysfsError;
use mcdvfs_sim::{DvfsController, TransitionModel};
use mcdvfs_types::{FreqSetting, FrequencyGrid};

/// Maximum write attempts before a transient error is surfaced: the
/// first try plus three retries.
const MAX_WRITE_ATTEMPTS: u32 = 4;

/// Base of the bounded exponential backoff between retries (doubles per
/// retry: 10 µs, 20 µs, 40 µs — far below any governed-run quantum).
const RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_micros(10);

/// The assembled kernel-side stack.
#[derive(Debug)]
pub struct KernelShim {
    cpufreq: CpufreqPolicy,
    devfreq: DevfreqDevice,
    controller: DvfsController,
    transient_retries: u64,
}

impl KernelShim {
    /// Builds the stack over `grid` with mobile-SoC transition costs,
    /// booted at the grid maximum under `performance` governors.
    #[must_use]
    pub fn new(grid: FrequencyGrid) -> Self {
        Self::with_transition_model(grid, TransitionModel::mobile_soc())
    }

    /// As [`Self::new`] with an explicit transition model.
    #[must_use]
    pub fn with_transition_model(grid: FrequencyGrid, model: TransitionModel) -> Self {
        Self {
            cpufreq: CpufreqPolicy::new(grid),
            devfreq: DevfreqDevice::new(grid),
            controller: DvfsController::new(grid, grid.max_setting(), model),
            transient_retries: 0,
        }
    }

    /// Reads `path` (`cpufreq/<attr>` or `devfreq/<attr>`).
    ///
    /// # Errors
    ///
    /// [`SysfsError::NoEntry`] for unknown prefixes or attributes.
    pub fn read(&self, path: &str) -> Result<String, SysfsError> {
        match path.split_once('/') {
            Some(("cpufreq", attr)) => self.cpufreq.read(attr),
            Some(("devfreq", attr)) => self.devfreq.read(attr),
            _ => Err(SysfsError::NoEntry {
                path: path.to_string(),
            }),
        }
    }

    /// Writes `path`, then propagates the drivers' targets to the
    /// hardware controller.
    ///
    /// Transient errors (`EAGAIN`/`EINTR`) are retried up to three times
    /// with a small bounded backoff — a momentarily busy clock framework
    /// must not fail a whole governed run. Permanent errors surface
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates driver validation errors, and a transient error that
    /// survives every retry; the hardware is only touched after a
    /// successful write.
    pub fn write(&mut self, path: &str, value: &str) -> Result<(), SysfsError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let result = match path.split_once('/') {
                Some(("cpufreq", attr)) => self.cpufreq.write(attr, value),
                Some(("devfreq", rest)) => self.devfreq.write(rest, value),
                _ => Err(SysfsError::NoEntry {
                    path: path.to_string(),
                }),
            };
            match result {
                Ok(()) => {
                    self.apply();
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < MAX_WRITE_ATTEMPTS => {
                    self.transient_retries += 1;
                    std::thread::sleep(RETRY_BACKOFF * 2u32.pow(attempt - 1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Queues a fault for the next write through `path` (see
    /// [`SysfsDir::inject_fault`](crate::SysfsDir::inject_fault));
    /// unknown prefixes are ignored.
    pub fn inject_fault(&mut self, path: &str, error: SysfsError) {
        match path.split_once('/') {
            Some(("cpufreq", attr)) => self.cpufreq.inject_fault(attr, error),
            Some(("devfreq", rest)) => self.devfreq.inject_fault(rest, error),
            _ => {}
        }
    }

    /// How many transient write errors have been absorbed by retries over
    /// the shim's lifetime.
    #[must_use]
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Pushes the drivers' current targets into the controller.
    fn apply(&mut self) {
        let target = FreqSetting::new(self.cpufreq.target(), self.devfreq.target());
        self.controller
            .request(target)
            .expect("driver targets are always grid steps");
    }

    /// The cpufreq policy.
    #[must_use]
    pub fn cpufreq(&self) -> &CpufreqPolicy {
        &self.cpufreq
    }

    /// The devfreq device.
    #[must_use]
    pub fn devfreq(&self) -> &DevfreqDevice {
        &self.devfreq
    }

    /// The hardware controller (current setting, transition counters and
    /// accumulated costs).
    #[must_use]
    pub fn controller(&self) -> &DvfsController {
        &self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shim() -> KernelShim {
        KernelShim::new(FrequencyGrid::coarse())
    }

    #[test]
    fn boots_at_max_with_no_transitions() {
        let s = shim();
        assert_eq!(s.controller().current(), FreqSetting::from_mhz(1000, 800));
        assert_eq!(s.controller().transition_count(), 0);
    }

    #[test]
    fn userspace_writes_reach_the_hardware() {
        let mut s = shim();
        s.write("cpufreq/scaling_governor", "userspace").unwrap();
        s.write("cpufreq/scaling_setspeed", "500000").unwrap();
        s.write("devfreq/governor", "userspace").unwrap();
        s.write("devfreq/userspace/set_freq", "400000000").unwrap();
        assert_eq!(s.controller().current(), FreqSetting::from_mhz(500, 400));
        // Governor switch to userspace keeps max; two real changes follow.
        assert_eq!(s.controller().cpu_transition_count(), 1);
        assert_eq!(s.controller().mem_transition_count(), 1);
    }

    #[test]
    fn governor_switches_move_the_clocks() {
        let mut s = shim();
        s.write("cpufreq/scaling_governor", "powersave").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 100);
        s.write("devfreq/governor", "powersave").unwrap();
        assert_eq!(s.controller().current().mem.mhz(), 200);
        assert!(s.controller().total_transition_latency().value() > 0.0);
    }

    #[test]
    fn failed_writes_do_not_touch_hardware() {
        let mut s = shim();
        let before = s.controller().transition_count();
        assert!(s.write("cpufreq/scaling_governor", "nonsense").is_err());
        assert!(s.write("cpufreq/scaling_setspeed", "500000").is_err());
        assert!(s.write("memfreq/governor", "userspace").is_err());
        assert_eq!(s.controller().transition_count(), before);
    }

    #[test]
    fn reads_route_by_prefix() {
        let s = shim();
        assert_eq!(s.read("cpufreq/scaling_cur_freq").unwrap(), "1000000");
        assert_eq!(s.read("devfreq/cur_freq").unwrap(), "800000000");
        assert!(s.read("thermal/temp").is_err());
        assert!(s.read("cpufreq").is_err());
    }

    #[test]
    fn bounds_walk_the_platform_through_the_grid() {
        let mut s = shim();
        // A thermal daemon caps the CPU at 600 MHz.
        s.write("cpufreq/scaling_max_freq", "600000").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 600);
        // Then releases the cap: performance governor climbs back.
        s.write("cpufreq/scaling_max_freq", "1000000").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 1000);
        assert_eq!(s.controller().cpu_transition_count(), 2);
    }

    #[test]
    fn accessors_expose_components() {
        let s = shim();
        assert_eq!(s.cpufreq().target().mhz(), 1000);
        assert_eq!(s.devfreq().target().mhz(), 800);
    }

    fn eagain(path: &str) -> SysfsError {
        SysfsError::TryAgain { path: path.into() }
    }

    #[test]
    fn transient_errors_are_retried_and_the_write_lands() {
        let mut s = shim();
        s.write("cpufreq/scaling_governor", "userspace").unwrap();
        // Two EAGAINs then an EINTR: three retries absorb all of them.
        s.inject_fault("cpufreq/scaling_setspeed", eagain("scaling_setspeed"));
        s.inject_fault("cpufreq/scaling_setspeed", eagain("scaling_setspeed"));
        s.inject_fault(
            "cpufreq/scaling_setspeed",
            SysfsError::Interrupted {
                path: "scaling_setspeed".into(),
            },
        );
        s.write("cpufreq/scaling_setspeed", "500000").unwrap();
        assert_eq!(s.controller().current().cpu.mhz(), 500);
        assert_eq!(s.transient_retries(), 3);
    }

    #[test]
    fn persistent_transient_errors_surface_and_spare_the_hardware() {
        let mut s = shim();
        let before = s.controller().transition_count();
        for _ in 0..4 {
            s.inject_fault("devfreq/governor", eagain("governor"));
        }
        let err = s.write("devfreq/governor", "powersave").unwrap_err();
        assert!(err.is_transient());
        // Three retries were burned; the fourth attempt's error surfaced.
        assert_eq!(s.transient_retries(), 3);
        assert_eq!(s.controller().transition_count(), before);
        assert_eq!(s.devfreq().target().mhz(), 800);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut s = shim();
        // EINVAL fires once; had it been retried the queue would drain
        // and the second write here would need no unwrap_err.
        assert!(s.write("cpufreq/scaling_setspeed", "500000").is_err());
        assert_eq!(s.transient_retries(), 0);
    }
}
