//! Content-addressed on-disk snapshot store.
//!
//! Snapshots live under one directory (by default `results/store/` at the
//! workspace root), one file per grid, named by the grid fingerprint:
//! `<fingerprint:016x>.snap`. The fingerprint covers the workload name, the
//! dims, every grid setting and every measurement row, so the file name *is*
//! the content address — two identical characterizations always land on the
//! same file, and a changed trace or grid always lands on a different one.
//!
//! Three disciplines keep the store safe to share between concurrent
//! processes:
//!
//! * **Atomic persist** — writes go to a `.tmp` sibling first and are
//!   `rename`d into place, so readers only ever observe complete files.
//! * **Typed rejection** — [`SnapshotStore::load`] re-validates checksum and
//!   fingerprint on every read; a corrupt file is an error, never data.
//! * **Deterministic GC** — [`SnapshotStore::gc`] evicts by last-used mtime
//!   with the fingerprint as tiebreak (the same `(last_used, key)` ordering
//!   the serve reply cache uses), skipping fingerprints pinned by a live
//!   manifest entry.
//!
//! A small JSON sidecar (`INDEX.json`) maps *specification keys* — a hash of
//! the tenant spec that produces a grid — to fingerprints, so a serving
//! process can find a snapshot before it has paid for the characterization
//! that would reveal the fingerprint. Stale or missing index entries simply
//! degrade to a miss.

use crate::error::SnapshotError;
use crate::format::Snapshot;
use mcdvfs_types::Json;
use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// File extension for snapshot files.
const SNAP_EXT: &str = "snap";

/// Name of the spec-key index sidecar inside the store directory.
const INDEX_NAME: &str = "INDEX.json";

/// A successfully loaded snapshot plus how many bytes came off disk,
/// for the serve-side `store.bytes_read` counter.
#[derive(Debug)]
pub struct Loaded {
    /// The decoded, fully validated snapshot.
    pub snapshot: Snapshot,
    /// Size of the snapshot file in bytes.
    pub bytes_read: u64,
}

/// What a garbage-collection pass did.
#[derive(Debug, Default)]
pub struct GcReport {
    /// Fingerprints whose files were deleted, in eviction order.
    pub evicted: Vec<u64>,
    /// Total bytes freed.
    pub bytes_freed: u64,
    /// Bytes still held by snapshots after the pass.
    pub bytes_remaining: u64,
}

/// A content-addressed snapshot directory.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// Opens the workspace-default store at `results/store/`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open_default() -> io::Result<Self> {
        Self::open(Self::default_dir())
    }

    /// The workspace-anchored default store directory: `results/store/`
    /// under the workspace root (or under `MCDVFS_RESULTS` when set).
    ///
    /// Mirrors `mcdvfs_bench::results_dir` so artifacts never scatter by
    /// entry point: `cargo test`/`cargo bench` run with the *package* root
    /// as cwd while `cargo run` keeps the caller's, so a bare relative path
    /// would depend on how the binary was launched.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("MCDVFS_RESULTS") {
            return PathBuf::from(dir).join("store");
        }
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(|workspace| workspace.join("results").join("store"))
            .unwrap_or_else(|| PathBuf::from("results/store"))
    }

    /// The directory this store reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot file for `fingerprint` (whether or not it exists).
    #[must_use]
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.{SNAP_EXT}"))
    }

    /// Returns `true` when a snapshot file for `fingerprint` exists.
    #[must_use]
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.path_for(fingerprint).is_file()
    }

    /// Persists `snapshot` under its fingerprint, atomically: the encoding
    /// is written to a `.tmp` sibling and renamed into place, so concurrent
    /// readers never observe a partial file. Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the write or rename fails.
    pub fn persist(&self, snapshot: &Snapshot) -> Result<u64, SnapshotError> {
        let bytes = snapshot.encode();
        let finalp = self.path_for(snapshot.fingerprint);
        let tmp = finalp.with_extension(format!("{SNAP_EXT}.tmp.{}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        if let Err(e) = fs::rename(&tmp, &finalp) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(bytes.len() as u64)
    }

    /// Loads and fully validates the snapshot for `fingerprint`.
    ///
    /// Returns `Ok(None)` when no file exists (a plain miss). A successful
    /// load refreshes the file's modification time so GC sees it as
    /// recently used (best-effort; a failed touch is ignored).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] when the file exists but is
    /// corrupt, truncated, from an unsupported version, or stored under a
    /// fingerprint its contents do not hash to.
    pub fn load(&self, fingerprint: u64) -> Result<Option<Loaded>, SnapshotError> {
        let path = self.path_for(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snapshot = Snapshot::decode(&bytes)?;
        if snapshot.fingerprint != fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: fingerprint,
                computed: snapshot.fingerprint,
            });
        }
        if let Ok(f) = fs::File::open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        Ok(Some(Loaded {
            bytes_read: bytes.len() as u64,
            snapshot,
        }))
    }

    /// Every fingerprint with a snapshot file, ascending.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn fingerprints(&self) -> io::Result<Vec<u64>> {
        let mut out: Vec<u64> = self.entries()?.into_iter().map(|e| e.fingerprint).collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Total bytes held by snapshot files (index sidecar excluded).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn total_bytes(&self) -> io::Result<u64> {
        Ok(self.entries()?.iter().map(|e| e.bytes).sum())
    }

    /// Evicts snapshots until the store holds at most `max_bytes`, oldest
    /// last-used mtime first with the fingerprint as deterministic tiebreak
    /// — the same `(last_used, key)` discipline as the serve reply cache.
    /// Fingerprints in `pinned` are never deleted, even when the store stays
    /// over budget because of them.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read or
    /// a file cannot be removed.
    pub fn gc(&self, max_bytes: u64, pinned: &HashSet<u64>) -> io::Result<GcReport> {
        let mut entries = self.entries()?;
        entries.sort_by_key(|e| (e.mtime, e.fingerprint));
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport::default();
        for e in &entries {
            if total <= max_bytes {
                break;
            }
            if pinned.contains(&e.fingerprint) {
                continue;
            }
            fs::remove_file(self.path_for(e.fingerprint))?;
            total -= e.bytes;
            report.bytes_freed += e.bytes;
            report.evicted.push(e.fingerprint);
        }
        report.bytes_remaining = total;
        Ok(report)
    }

    /// Looks up the fingerprint the spec-key index maps `spec_key` to, if
    /// any. A missing or unparsable index is a plain miss.
    #[must_use]
    pub fn lookup_spec(&self, spec_key: u64) -> Option<u64> {
        let index = self.read_index()?;
        index.get(&format!("{spec_key:016x}")).copied()
    }

    /// Records `spec_key -> fingerprint` in the index sidecar, atomically
    /// (read-modify-write to a temp file, then rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the sidecar cannot be written.
    pub fn record_spec(&self, spec_key: u64, fingerprint: u64) -> io::Result<()> {
        let mut index = self.read_index().unwrap_or_default();
        index.insert(format!("{spec_key:016x}"), fingerprint);
        let members = index
            .into_iter()
            .map(|(k, v)| (k, Json::Str(format!("{v:016x}"))))
            .collect();
        let text = Json::Obj(members).render();
        let path = self.dir.join(INDEX_NAME);
        let tmp = self
            .dir
            .join(format!("{INDEX_NAME}.tmp.{}", std::process::id()));
        fs::write(&tmp, text.as_bytes())?;
        fs::rename(&tmp, &path)
    }

    fn read_index(&self) -> Option<BTreeMap<String, u64>> {
        let text = fs::read_to_string(self.dir.join(INDEX_NAME)).ok()?;
        let doc = Json::parse(&text).ok()?;
        let Json::Obj(members) = doc else { return None };
        let mut out = BTreeMap::new();
        for (k, v) in members {
            let fp = v.as_str().and_then(|s| u64::from_str_radix(s, 16).ok())?;
            out.insert(k, fp);
        }
        Some(out)
    }

    fn entries(&self) -> io::Result<Vec<DirEntry>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(fingerprint) = fingerprint_of(&path) else {
                continue;
            };
            let meta = entry.metadata()?;
            out.push(DirEntry {
                fingerprint,
                bytes: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }
}

#[derive(Debug)]
struct DirEntry {
    fingerprint: u64,
    bytes: u64,
    mtime: SystemTime,
}

/// Parses the fingerprint out of a `<fingerprint:016x>.snap` file name.
fn fingerprint_of(path: &Path) -> Option<u64> {
    if path.extension()?.to_str()? != SNAP_EXT {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Extracts the fingerprints pinned by a provenance manifest.
///
/// Bake runs record their snapshots in `results/MANIFEST.json` with config
/// keys of the form `pin.<tenant> = <fingerprint:016x>`. This walks every
/// artifact's config generically, so GC can honor pins without depending on
/// the bench crate (which depends on everything else).
#[must_use]
pub fn manifest_pins(manifest_text: &str) -> HashSet<u64> {
    let mut pins = HashSet::new();
    let Ok(doc) = Json::parse(manifest_text) else {
        return pins;
    };
    let Some(artifacts) = doc.get("artifacts").and_then(Json::as_arr) else {
        return pins;
    };
    for artifact in artifacts {
        let Some(Json::Obj(config)) = artifact.get("config") else {
            continue;
        };
        for (key, value) in config {
            if !key.starts_with("pin.") {
                continue;
            }
            if let Some(fp) = value.as_str().and_then(|s| u64::from_str_radix(s, 16).ok()) {
                pins.insert(fp);
            }
        }
    }
    pins
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdvfs_types::{FrequencyGrid, Joules, SampleMeasurement, Seconds};

    fn snapshot_named(name: &str, scale: f64) -> Snapshot {
        let grid = FrequencyGrid::new(100, 200, 100, 200, 400, 200).unwrap();
        let n_settings = grid.len();
        let arena = (0..2 * n_settings)
            .map(|i| SampleMeasurement {
                time: Seconds::new(1e-3 * scale + i as f64 * 1e-6),
                cpu_energy: Joules::new(1e-3 * scale),
                mem_energy: Joules::new(2e-4 * scale),
                cpi: 1.0 + i as f64 * 0.1,
            })
            .collect();
        let mut snap = Snapshot {
            name: name.to_string(),
            grid,
            n_settings,
            fingerprint: 0,
            arena,
        };
        snap.fingerprint = snap.compute_fingerprint();
        snap
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("mcdvfs-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn persist_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let snap = snapshot_named("gobmk", 1.0);
        let written = store.persist(&snap).unwrap();
        assert!(store.contains(snap.fingerprint));
        let loaded = store.load(snap.fingerprint).unwrap().unwrap();
        assert_eq!(loaded.snapshot, snap);
        assert_eq!(loaded.bytes_read, written);
        assert_eq!(store.load(snap.fingerprint ^ 1).unwrap().map(|_| ()), None);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_typed_error_not_data() {
        let store = temp_store("corrupt");
        let snap = snapshot_named("gobmk", 1.0);
        store.persist(&snap).unwrap();
        let path = store.path_for(snap.fingerprint);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(snap.fingerprint),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn file_stored_under_wrong_name_is_rejected() {
        let store = temp_store("wrongname");
        let snap = snapshot_named("gobmk", 1.0);
        let other = snap.fingerprint ^ 0xabcd;
        fs::write(store.path_for(other), snap.encode()).unwrap();
        assert!(matches!(
            store.load(other),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gc_evicts_oldest_first_and_honors_pins() {
        let store = temp_store("gc");
        let a = snapshot_named("alpha", 1.0);
        let b = snapshot_named("bravo", 2.0);
        let c = snapshot_named("charlie", 3.0);
        let size = store.persist(&a).unwrap();
        store.persist(&b).unwrap();
        store.persist(&c).unwrap();
        // Make ages unambiguous: a oldest, then b, then c.
        for (i, s) in [&a, &b, &c].into_iter().enumerate() {
            let f = fs::File::open(store.path_for(s.fingerprint)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(i as u64 + 1))
                .unwrap();
        }
        // Pin the oldest; budget for exactly one snapshot.
        let pinned: HashSet<u64> = [a.fingerprint].into_iter().collect();
        let report = store.gc(size, &pinned).unwrap();
        assert_eq!(report.evicted, vec![b.fingerprint, c.fingerprint]);
        assert!(store.contains(a.fingerprint), "pinned snapshot survives");
        assert!(!store.contains(b.fingerprint));
        assert!(!store.contains(c.fingerprint));
        assert_eq!(report.bytes_remaining, size);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gc_breaks_mtime_ties_by_fingerprint() {
        let store = temp_store("gc-ties");
        let a = snapshot_named("alpha", 1.0);
        let b = snapshot_named("bravo", 2.0);
        store.persist(&a).unwrap();
        let size = store.persist(&b).unwrap();
        for s in [&a, &b] {
            let f = fs::File::open(store.path_for(s.fingerprint)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(7))
                .unwrap();
        }
        let report = store.gc(size, &HashSet::new()).unwrap();
        let lo = a.fingerprint.min(b.fingerprint);
        assert_eq!(
            report.evicted,
            vec![lo],
            "tie evicts the smaller fingerprint"
        );
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn load_refreshes_mtime_for_gc() {
        let store = temp_store("touch");
        let snap = snapshot_named("gobmk", 1.0);
        store.persist(&snap).unwrap();
        let f = fs::File::open(store.path_for(snap.fingerprint)).unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        store.load(snap.fingerprint).unwrap().unwrap();
        let mtime = fs::metadata(store.path_for(snap.fingerprint))
            .unwrap()
            .modified()
            .unwrap();
        assert!(mtime > SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn spec_index_round_trips_and_tolerates_absence() {
        let store = temp_store("index");
        assert_eq!(store.lookup_spec(42), None);
        store.record_spec(42, 0xfeed).unwrap();
        store.record_spec(43, 0xf00d).unwrap();
        assert_eq!(store.lookup_spec(42), Some(0xfeed));
        assert_eq!(store.lookup_spec(43), Some(0xf00d));
        assert_eq!(store.lookup_spec(44), None);
        // A garbage index degrades to a miss, not an error.
        fs::write(store.dir().join("INDEX.json"), b"not json").unwrap();
        assert_eq!(store.lookup_spec(42), None);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn manifest_pins_parses_pin_config_keys() {
        let text = r#"{
            "schema": "mcdvfs/manifest-v1",
            "artifacts": [
                {"path": "STORE_bake.json", "config": {
                    "pin.gobmk": "00000000deadbeef",
                    "pin.bzip2": "00000000cafef00d",
                    "threads": "4"
                }},
                {"path": "other.csv", "config": {"rows": "10"}}
            ]
        }"#;
        let pins = manifest_pins(text);
        assert_eq!(pins.len(), 2);
        assert!(pins.contains(&0xdead_beef));
        assert!(pins.contains(&0xcafe_f00d));
        assert!(manifest_pins("not json").is_empty());
        assert!(manifest_pins("{}").is_empty());
    }

    #[test]
    fn default_dir_is_workspace_anchored() {
        let dir = SnapshotStore::default_dir();
        assert!(dir.ends_with("results/store"), "{}", dir.display());
    }

    #[test]
    fn non_snapshot_files_are_ignored_by_listing() {
        let store = temp_store("listing");
        let snap = snapshot_named("gobmk", 1.0);
        store.persist(&snap).unwrap();
        store.record_spec(1, snap.fingerprint).unwrap();
        fs::write(store.dir().join("README.txt"), b"hello").unwrap();
        assert_eq!(store.fingerprints().unwrap(), vec![snap.fingerprint]);
        let total = store.total_bytes().unwrap();
        assert_eq!(
            total,
            fs::metadata(store.path_for(snap.fingerprint))
                .unwrap()
                .len()
        );
        fs::remove_dir_all(store.dir()).unwrap();
    }
}
