//! `mcdvfs-store` — versioned grid snapshots and the content-addressed store.
//!
//! Characterizing a workload over a frequency grid is the expensive step of
//! the whole pipeline: every serving process used to pay it again on every
//! cold start. This crate turns the characterization measurement arena into
//! a bake-once / ship-many artifact:
//!
//! * [`Snapshot`] + the binary format in [`format`] — a versioned,
//!   checksummed, bit-exact encoding of one `CharacterizationGrid`'s arena
//!   (see the layout diagram on the module).
//! * [`SnapshotStore`] — a content-addressed directory of snapshots keyed by
//!   `CharacterizationGrid::fingerprint`, with atomic persist, validated
//!   loads, a spec-key index for first-touch lookups, and deterministic
//!   size-bounded GC that honors manifest pins.
//! * [`SnapshotError`] — every decode/I/O failure as a typed variant;
//!   nothing here panics on untrusted bytes.
//!
//! The crate deliberately depends only on `mcdvfs-types`, so the simulator,
//! the sweep engine, the serve stack and the bench harness can all speak the
//! same snapshot language without dependency cycles.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_store::{Snapshot, SnapshotStore};
//! use mcdvfs_types::{FrequencyGrid, Joules, SampleMeasurement, Seconds};
//!
//! let grid = FrequencyGrid::new(100, 200, 100, 200, 300, 100).unwrap();
//! let arena: Vec<_> = (0..grid.len())
//!     .map(|i| SampleMeasurement {
//!         time: Seconds::new(1e-3 + i as f64 * 1e-5),
//!         cpu_energy: Joules::new(2e-3),
//!         mem_energy: Joules::new(4e-4),
//!         cpi: 1.5,
//!     })
//!     .collect();
//! let mut snap = Snapshot {
//!     name: "demo".into(),
//!     grid,
//!     n_settings: grid.len(),
//!     fingerprint: 0,
//!     arena,
//! };
//! snap.fingerprint = snap.compute_fingerprint();
//!
//! let dir = std::env::temp_dir().join("mcdvfs-store-doc");
//! let store = SnapshotStore::open(&dir).unwrap();
//! store.persist(&snap).unwrap();
//! let back = store.load(snap.fingerprint).unwrap().unwrap();
//! assert_eq!(back.snapshot, snap);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod format;
mod store;

pub use error::SnapshotError;
pub use format::{Snapshot, FORMAT_VERSION, MAGIC};
pub use store::{manifest_pins, GcReport, Loaded, SnapshotStore};
