//! Typed failure modes for snapshot decoding and store I/O.
//!
//! Every way a snapshot can be unusable — wrong file type, newer format,
//! short read, flipped bit, contents that do not hash to the advertised
//! fingerprint — maps to its own [`SnapshotError`] variant. Decoding never
//! panics on untrusted bytes and never silently returns wrong data: the
//! store either hands back a grid that is bit-identical to the one that was
//! persisted, or an error naming exactly what disagreed.

use std::fmt;
use std::io;

/// Why a snapshot could not be decoded or a store operation failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic bytes.
    BadMagic {
        /// The first bytes actually found (padded with zeros if short).
        found: [u8; 4],
    },
    /// The format version is not one this build can decode.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The byte stream ended before the declared contents did.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing checksum does not match the bytes that precede it.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// The decoded payload does not hash to the fingerprint in the header.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        stored: u64,
        /// Fingerprint recomputed from the decoded contents.
        computed: u64,
    },
    /// A header field is internally inconsistent (impossible dimensions,
    /// invalid grid parameters, non-UTF-8 name).
    Malformed {
        /// What was inconsistent.
        reason: String,
    },
    /// An underlying filesystem operation failed.
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads <= {supported})"
            ),
            Self::Truncated { needed, available } => write!(
                f,
                "truncated snapshot: needed {needed} bytes, only {available} available"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            Self::FingerprintMismatch { stored, computed } => write!(
                f,
                "snapshot fingerprint mismatch: header says {stored:016x}, \
                 contents hash to {computed:016x}"
            ),
            Self::Malformed { reason } => write!(f, "malformed snapshot: {reason}"),
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_disagreement() {
        let e = SnapshotError::ChecksumMismatch {
            stored: 0xdead,
            computed: 0xbeef,
        };
        let s = e.to_string();
        assert!(s.contains("000000000000dead"), "{s}");
        assert!(s.contains("000000000000beef"), "{s}");

        let e = SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"), "{e}");
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error as _;
        let e = SnapshotError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(SnapshotError::BadMagic { found: [0; 4] }.source().is_none());
    }
}
