//! The versioned binary snapshot format.
//!
//! A snapshot freezes one characterization measurement arena — the
//! `n_samples x n_settings` table of [`SampleMeasurement`]s that everything
//! downstream (optimal settings, clusters, governed schedules) is derived
//! from. The layout is little-endian throughout:
//!
//! ```text
//! offset  size          field
//! ------  ------------  ------------------------------------------------
//!      0  4             magic  b"MCGS"
//!      4  4             format version (u32)
//!      8  8             grid fingerprint (u64)
//!     16  8             n_samples (u64)
//!     24  8             n_settings (u64)
//!     32  24            grid params: cpu lo/hi/step, mem lo/hi/step (6xu32)
//!     56  4             workload name length (u32)
//!     60  name_len      workload name (UTF-8)
//!      .  rows*cols*32  payload: per cell, f64::to_bits of
//!                       time / cpu_energy / mem_energy / cpi
//!   tail  8             Fnv1a64 checksum of every preceding byte
//! ```
//!
//! Floats travel as raw [`f64::to_bits`] words, so an encode/decode
//! round-trip is bit-identical — no text formatting, no rounding. The
//! trailing checksum covers the entire file, and the header fingerprint is
//! re-derived from the decoded contents, so a flipped bit anywhere is
//! rejected with a typed [`SnapshotError`] rather than surfacing as subtly
//! wrong energy numbers.

use crate::error::SnapshotError;
use mcdvfs_types::{hash_measurements, Fnv1a64, FrequencyGrid, Joules, SampleMeasurement, Seconds};

/// Magic bytes identifying a grid snapshot file.
pub const MAGIC: [u8; 4] = *b"MCGS";

/// Newest snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size in bytes (everything before the workload name).
const HEADER_FIXED: usize = 60;

/// Encoded size of one measurement cell: four `f64` words.
const CELL_BYTES: usize = 32;

/// Size of the trailing checksum.
const TRAILER: usize = 8;

/// A decoded (or to-be-encoded) characterization snapshot.
///
/// This is the interchange value between the store and the simulator's
/// `CharacterizationGrid`: the workload name, the frequency grid the arena
/// was measured over, and the full measurement arena in sample-major,
/// memory-frequency-fastest order — exactly the layout `from_measurements`
/// expects back.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Workload name the grid was characterized for.
    pub name: String,
    /// The frequency grid the arena's columns enumerate.
    pub grid: FrequencyGrid,
    /// Number of settings per sample row (always `grid.len()`).
    pub n_settings: usize,
    /// Content fingerprint of the grid, as `CharacterizationGrid::fingerprint`
    /// computes it. This is the store key.
    pub fingerprint: u64,
    /// The measurement arena: `n_samples * n_settings` cells, sample-major.
    pub arena: Vec<SampleMeasurement>,
}

impl Snapshot {
    /// Number of workload samples in the arena.
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.arena.len().checked_div(self.n_settings).unwrap_or(0)
    }

    /// Recomputes the content fingerprint from the snapshot's own fields,
    /// using the same FNV-1a fold as `CharacterizationGrid::fingerprint`:
    /// name, dims, every grid setting's MHz pair, then each sample row's
    /// [`hash_measurements`] digest.
    #[must_use]
    pub fn compute_fingerprint(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write(self.name.as_bytes());
        h.write_u64(self.n_samples() as u64);
        h.write_u64(self.n_settings as u64);
        for setting in self.grid.settings() {
            h.write_u64(u64::from(setting.cpu.mhz()));
            h.write_u64(u64::from(setting.mem.mhz()));
        }
        for row in self.arena.chunks_exact(self.n_settings) {
            h.write_u64(hash_measurements(row));
        }
        h.finish()
    }

    /// Serializes the snapshot to the versioned binary format.
    ///
    /// The output always decodes back to an equal `Snapshot` (bit-identical
    /// floats) and carries a trailing checksum over everything before it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let cells = self.arena.len();
        let mut out = Vec::with_capacity(HEADER_FIXED + self.name.len() + cells * CELL_BYTES + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.n_samples() as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_settings as u64).to_le_bytes());
        let (clo, chi, cstep) = self.grid.cpu_range_mhz();
        let (mlo, mhi, mstep) = self.grid.mem_range_mhz();
        for v in [clo, chi, cstep, mlo, mhi, mstep] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        for m in &self.arena {
            out.extend_from_slice(&m.time.value().to_bits().to_le_bytes());
            out.extend_from_slice(&m.cpu_energy.value().to_bits().to_le_bytes());
            out.extend_from_slice(&m.mem_energy.value().to_bits().to_le_bytes());
            out.extend_from_slice(&m.cpi.to_le_bytes());
        }
        let checksum = mcdvfs_types::fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a snapshot from bytes, validating magic, version, declared
    /// sizes, trailing checksum, and finally that the decoded contents hash
    /// back to the header fingerprint.
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] variant naming the first disagreement;
    /// never panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 4];
        let head = bytes.len().min(4);
        magic[..head].copy_from_slice(&bytes[..head]);
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        if bytes.len() < HEADER_FIXED {
            return Err(SnapshotError::Truncated {
                needed: HEADER_FIXED,
                available: bytes.len(),
            });
        }
        let version = read_u32(bytes, 4);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let fingerprint = read_u64(bytes, 8);
        let n_samples = usize::try_from(read_u64(bytes, 16)).map_err(|_| malformed("n_samples"))?;
        let n_settings =
            usize::try_from(read_u64(bytes, 24)).map_err(|_| malformed("n_settings"))?;
        let mut params = [0u32; 6];
        for (i, p) in params.iter_mut().enumerate() {
            *p = read_u32(bytes, 32 + 4 * i);
        }
        let name_len = read_u32(bytes, 56) as usize;

        let cells = n_samples
            .checked_mul(n_settings)
            .ok_or_else(|| malformed("arena dimensions overflow"))?;
        let total = HEADER_FIXED
            .checked_add(name_len)
            .and_then(|v| cells.checked_mul(CELL_BYTES).and_then(|p| v.checked_add(p)))
            .and_then(|v| v.checked_add(TRAILER))
            .ok_or_else(|| malformed("declared size overflows"))?;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated {
                needed: total,
                available: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(malformed(&format!(
                "{} trailing bytes after declared contents",
                bytes.len() - total
            )));
        }

        let stored = read_u64(bytes, total - TRAILER);
        let computed = mcdvfs_types::fnv1a64(&bytes[..total - TRAILER]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let name = std::str::from_utf8(&bytes[HEADER_FIXED..HEADER_FIXED + name_len])
            .map_err(|_| malformed("name is not UTF-8"))?
            .to_string();
        let [clo, chi, cstep, mlo, mhi, mstep] = params;
        let grid = FrequencyGrid::new(clo, chi, cstep, mlo, mhi, mstep)
            .map_err(|e| malformed(&format!("grid parameters rejected: {e}")))?;
        if grid.len() != n_settings {
            return Err(malformed(&format!(
                "n_settings {} does not match grid ({} settings)",
                n_settings,
                grid.len()
            )));
        }
        if n_samples == 0 {
            return Err(malformed("snapshot has zero samples"));
        }

        let mut arena = Vec::with_capacity(cells);
        let mut off = HEADER_FIXED + name_len;
        for _ in 0..cells {
            arena.push(SampleMeasurement {
                time: Seconds::new(f64::from_bits(read_u64(bytes, off))),
                cpu_energy: Joules::new(f64::from_bits(read_u64(bytes, off + 8))),
                mem_energy: Joules::new(f64::from_bits(read_u64(bytes, off + 16))),
                cpi: f64::from_bits(read_u64(bytes, off + 24)),
            });
            off += CELL_BYTES;
        }

        let snapshot = Self {
            name,
            grid,
            n_settings,
            fingerprint,
            arena,
        };
        let recomputed = snapshot.compute_fingerprint();
        if recomputed != fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: fingerprint,
                computed: recomputed,
            });
        }
        Ok(snapshot)
    }
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("bounds checked"))
}

fn malformed(reason: &str) -> SnapshotError {
    SnapshotError::Malformed {
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        let grid = FrequencyGrid::new(100, 300, 100, 200, 400, 200).unwrap();
        let n_settings = grid.len();
        let n_samples = 3;
        let mut arena = Vec::new();
        for s in 0..n_samples {
            for c in 0..n_settings {
                let k = (s * n_settings + c) as f64;
                arena.push(SampleMeasurement {
                    time: Seconds::new(1e-3 + k * 1e-5),
                    cpu_energy: Joules::new(2e-3 + k * 1e-6),
                    mem_energy: Joules::new(5e-4 + k * 1e-7),
                    cpi: 1.0 + k * 0.01,
                });
            }
        }
        let mut snap = Snapshot {
            name: "unit".to_string(),
            grid,
            n_settings,
            fingerprint: 0,
            arena,
        };
        snap.fingerprint = snap.compute_fingerprint();
        snap
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        for (a, b) in back.arena.iter().zip(&snap.arena) {
            assert_eq!(a.time.value().to_bits(), b.time.value().to_bits());
            assert_eq!(
                a.cpu_energy.value().to_bits(),
                b.cpu_energy.value().to_bits()
            );
            assert_eq!(
                a.mem_energy.value().to_bits(),
                b.mem_energy.value().to_bits()
            );
            assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample_snapshot().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn every_truncation_length_is_rejected() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            Snapshot::decode(b"MC"),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = sample_snapshot().encode();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // Re-seal the checksum so only the version disagrees.
        let n = bytes.len();
        let checksum = mcdvfs_types::fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn payload_flip_is_checksum_mismatch() {
        let bytes = sample_snapshot().encode();
        let mut bad = bytes.clone();
        let payload_at = HEADER_FIXED + "unit".len() + 7;
        bad[payload_at] ^= 0x80;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn resealed_wrong_fingerprint_is_fingerprint_mismatch() {
        let snap = sample_snapshot();
        let mut bytes = snap.encode();
        bytes[8..16].copy_from_slice(&(snap.fingerprint ^ 1).to_le_bytes());
        let n = bytes.len();
        let checksum = mcdvfs_types::fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_snapshot().encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
