//! Calibration microbenchmarks.
//!
//! The paper calibrated its CPU power model by running microbenchmarks
//! "designed to stress the PandaBoard to its full utilization" while
//! measuring supply power. This module provides the equivalent synthetic
//! kernels: deterministic address/compute streams with known intensity that
//! can be pushed through the [`CacheHierarchy`] to
//! derive realistic [`SampleCharacteristics`] and to sanity-check the
//! power model's utilization response.

use crate::cache::{CacheHierarchy, MemAccess};
use mcdvfs_types::SampleCharacteristics;

/// A deterministic microbenchmark kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Kernel {
    /// Pure ALU loop: no memory traffic beyond a tiny resident set.
    /// Maximum switching activity — the paper's peak-dynamic-power stressor.
    AluSpin,
    /// Sequential streaming over a buffer of `bytes`: prefetch-friendly,
    /// high bandwidth, high row-buffer locality.
    Stream {
        /// Buffer size in bytes.
        bytes: u64,
    },
    /// Strided walk over a buffer: defeats spatial locality when the stride
    /// exceeds the line size.
    Stride {
        /// Buffer size in bytes.
        bytes: u64,
        /// Stride between accesses in bytes.
        stride: u64,
    },
    /// Pseudo-random pointer chase: serialized, cache-hostile accesses —
    /// the classic latency-bound stressor.
    PointerChase {
        /// Buffer size in bytes.
        bytes: u64,
    },
}

impl Kernel {
    /// Human-readable kernel name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::AluSpin => "alu_spin",
            Kernel::Stream { .. } => "stream",
            Kernel::Stride { .. } => "stride",
            Kernel::PointerChase { .. } => "pointer_chase",
        }
    }

    /// Generates the kernel's memory reference stream for `accesses`
    /// dynamic accesses.
    #[must_use]
    pub fn trace(&self, accesses: usize) -> Vec<MemAccess> {
        match *self {
            Kernel::AluSpin => (0..accesses)
                .map(|i| MemAccess::load((i as u64 % 8) * 64))
                .collect(),
            Kernel::Stream { bytes } => (0..accesses)
                .map(|i| MemAccess::load((i as u64 * 64) % bytes.max(64)))
                .collect(),
            Kernel::Stride { bytes, stride } => (0..accesses)
                .map(|i| MemAccess::load((i as u64 * stride.max(1)) % bytes.max(64)))
                .collect(),
            Kernel::PointerChase { bytes } => {
                // Deterministic LCG walk; consecutive addresses are
                // decorrelated, modelling a shuffled linked list.
                let lines = (bytes / 64).max(1);
                let mut state = 0x9E37_79B9_7F4A_7C15u64;
                (0..accesses)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        MemAccess::load((state % lines) * 64)
                    })
                    .collect()
            }
        }
    }

    /// The switching-activity factor this kernel sustains (for power-model
    /// calibration): ALU spin is the peak-activity stressor.
    #[must_use]
    pub fn activity_factor(&self) -> f64 {
        match self {
            Kernel::AluSpin => 1.0,
            Kernel::Stream { .. } => 0.8,
            Kernel::Stride { .. } => 0.6,
            Kernel::PointerChase { .. } => 0.4,
        }
    }

    /// The core-bound CPI this kernel sustains between misses.
    #[must_use]
    pub fn base_cpi(&self) -> f64 {
        match self {
            Kernel::AluSpin => 0.5,
            Kernel::Stream { .. } => 0.8,
            Kernel::Stride { .. } => 1.0,
            Kernel::PointerChase { .. } => 1.2,
        }
    }
}

/// Result of characterizing one kernel against the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Which kernel was profiled.
    pub kernel: Kernel,
    /// Derived per-sample characteristics (MPKI measured, not assumed).
    pub characteristics: SampleCharacteristics,
    /// L1 hit rate observed.
    pub l1_hit_rate: f64,
    /// L2 hit rate observed (of L1 misses).
    pub l2_hit_rate: f64,
}

/// Runs `kernel` through a fresh Gem5-default cache hierarchy, assuming
/// `accesses_per_kilo_instr` memory operations per 1000 instructions, and
/// derives sample characteristics with the *measured* MPKI.
///
/// # Panics
///
/// Panics if `accesses_per_kilo_instr` is zero — a kernel with no memory
/// operations cannot be pushed through the cache simulator (use
/// [`Kernel::AluSpin`] with a small positive rate instead).
///
/// # Examples
///
/// ```
/// use mcdvfs_cpu::microbench::{characterize, Kernel};
///
/// let stream = characterize(Kernel::Stream { bytes: 64 * 1024 * 1024 }, 200);
/// let spin = characterize(Kernel::AluSpin, 10);
/// assert!(stream.characteristics.mpki > spin.characteristics.mpki);
/// ```
#[must_use]
pub fn characterize(kernel: Kernel, accesses_per_kilo_instr: u32) -> KernelProfile {
    assert!(
        accesses_per_kilo_instr > 0,
        "kernel must perform memory accesses to be characterized"
    );
    const TRACE_LEN: usize = 200_000;
    let mut caches = CacheHierarchy::gem5_default();
    // Warm-up pass excludes cold-start misses from the measurement, then
    // the measured pass observes steady-state behaviour.
    caches.run_trace(kernel.trace(TRACE_LEN));
    caches.reset_stats();
    caches.run_trace(kernel.trace(TRACE_LEN));
    let instructions = TRACE_LEN as u64 * 1000 / u64::from(accesses_per_kilo_instr);
    let mpki = caches.mpki(instructions);

    let mut characteristics = SampleCharacteristics::new(kernel.base_cpi(), mpki);
    characteristics.activity_factor = kernel.activity_factor();
    // Pointer chases serialize misses; streams overlap deeply.
    characteristics.mlp = match kernel {
        Kernel::PointerChase { .. } => 1.0,
        Kernel::Stream { .. } => 4.0,
        _ => 2.0,
    };
    characteristics.row_hit_rate = match kernel {
        Kernel::Stream { .. } => 0.9,
        Kernel::PointerChase { .. } => 0.1,
        _ => 0.5,
    };

    KernelProfile {
        kernel,
        characteristics,
        l1_hit_rate: caches.l1_stats().hit_rate(),
        l2_hit_rate: caches.l2_stats().hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_spin_has_negligible_mpki() {
        let p = characterize(Kernel::AluSpin, 10);
        assert!(
            p.characteristics.mpki < 0.01,
            "ALU spin mpki {}",
            p.characteristics.mpki
        );
        assert!(p.l1_hit_rate > 0.99);
    }

    #[test]
    fn large_stream_misses_in_cache() {
        let p = characterize(
            Kernel::Stream {
                bytes: 64 * 1024 * 1024,
            },
            200,
        );
        assert!(
            p.characteristics.mpki > 10.0,
            "streaming 64 MB should miss heavily, mpki {}",
            p.characteristics.mpki
        );
    }

    #[test]
    fn small_stream_fits_in_l2() {
        let p = characterize(Kernel::Stream { bytes: 1024 * 1024 }, 200);
        assert!(
            p.characteristics.mpki < 1.0,
            "1 MB stream fits L2, mpki {}",
            p.characteristics.mpki
        );
    }

    #[test]
    fn pointer_chase_is_latency_hostile() {
        let p = characterize(
            Kernel::PointerChase {
                bytes: 32 * 1024 * 1024,
            },
            100,
        );
        assert!(p.characteristics.mpki > 5.0);
        assert!(
            (p.characteristics.mlp - 1.0).abs() < 1e-12,
            "chase serializes"
        );
        assert!(p.characteristics.row_hit_rate < 0.2);
    }

    #[test]
    fn stride_beyond_line_size_defeats_spatial_locality() {
        let dense = characterize(
            Kernel::Stride {
                bytes: 32 * 1024 * 1024,
                stride: 16,
            },
            200,
        );
        let sparse = characterize(
            Kernel::Stride {
                bytes: 32 * 1024 * 1024,
                stride: 256,
            },
            200,
        );
        assert!(sparse.characteristics.mpki > dense.characteristics.mpki);
    }

    #[test]
    fn activity_factors_rank_kernels() {
        assert!(Kernel::AluSpin.activity_factor() > Kernel::Stream { bytes: 1 }.activity_factor());
        assert!(
            Kernel::Stream { bytes: 1 }.activity_factor()
                > Kernel::PointerChase { bytes: 1 }.activity_factor()
        );
    }

    #[test]
    fn derived_characteristics_are_valid() {
        for kernel in [
            Kernel::AluSpin,
            Kernel::Stream {
                bytes: 8 * 1024 * 1024,
            },
            Kernel::Stride {
                bytes: 8 * 1024 * 1024,
                stride: 128,
            },
            Kernel::PointerChase {
                bytes: 8 * 1024 * 1024,
            },
        ] {
            let p = characterize(kernel, 150);
            assert!(p.characteristics.is_valid(), "{:?}", kernel);
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let k = Kernel::PointerChase { bytes: 1024 * 1024 };
        assert_eq!(k.trace(1000), k.trace(1000));
    }

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::AluSpin.name(), "alu_spin");
        assert_eq!(Kernel::Stream { bytes: 1 }.name(), "stream");
    }

    #[test]
    #[should_panic(expected = "memory accesses")]
    fn zero_access_rate_panics() {
        let _ = characterize(Kernel::AluSpin, 0);
    }
}
