//! Analytic core performance model.
//!
//! Models an ARM Cortex-A15-class out-of-order core (the paper's Gem5
//! configuration) at sample granularity: a fixed-work sample of
//! [`INSTRUCTIONS_PER_SAMPLE`] instructions is split into
//!
//! * **core cycles** — `N · base_cpi`, frequency-independent in cycles
//!   (CPU and caches share one clock domain, as in the paper), and
//! * **stall cycles** — DRAM accesses × the portion of average access
//!   latency the core cannot hide. Memory-level parallelism divides the
//!   per-access latency (overlapped misses) and the `stall_exposure`
//!   characteristic scales it (reorder-buffer hiding).
//!
//! Because stall time is fixed in *nanoseconds* but core work is fixed in
//! *cycles*, raising the CPU frequency inflates stall **cycles** — the
//! mechanism behind every memory-sensitivity result in the paper.

use mcdvfs_types::{
    CpuFreq, Error, Result, SampleCharacteristics, Seconds, INSTRUCTIONS_PER_SAMPLE,
};

/// Cycle/time breakdown of one sample executed at one CPU frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleExecution {
    /// Cycles spent on core-bound work.
    pub core_cycles: f64,
    /// Cycles the core is stalled waiting on DRAM.
    pub stall_cycles: f64,
    /// Wall-clock time of the sample.
    pub time: Seconds,
    /// Achieved cycles per instruction.
    pub cpi: f64,
    /// Fraction of cycles the core is busy (not stalled); feeds the
    /// dynamic-power term of [`crate::CpuPowerModel`].
    pub busy_frac: f64,
}

impl SampleExecution {
    /// Total cycles (core + stall).
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.core_cycles + self.stall_cycles
    }
}

/// Analytic performance model for an out-of-order mobile core.
///
/// # Examples
///
/// A memory-heavy sample slows down disproportionately at high CPU
/// frequency when memory is slow:
///
/// ```
/// use mcdvfs_cpu::CorePerfModel;
/// use mcdvfs_types::{CpuFreq, SampleCharacteristics};
///
/// let model = CorePerfModel::a15_like();
/// let memory_heavy = SampleCharacteristics::new(0.8, 20.0);
///
/// let slow_mem = model.execute(&memory_heavy, CpuFreq::from_mhz(1000), 150.0);
/// let fast_mem = model.execute(&memory_heavy, CpuFreq::from_mhz(1000), 60.0);
/// assert!(slow_mem.time > fast_mem.time);
/// assert!(slow_mem.busy_frac < fast_mem.busy_frac);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorePerfModel {
    /// Lower bound on achievable CPI (issue-width limit). The A15 is
    /// 3-wide, so ~0.33.
    min_cpi: f64,
}

impl CorePerfModel {
    /// Model matching the paper's Gem5 default ARM configuration
    /// (Cortex-A15-like 3-wide out-of-order core).
    #[must_use]
    pub fn a15_like() -> Self {
        Self { min_cpi: 1.0 / 3.0 }
    }

    /// Creates a model with a custom CPI floor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `min_cpi` is not positive.
    pub fn new(min_cpi: f64) -> Result<Self> {
        if !(min_cpi > 0.0 && min_cpi.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "min_cpi",
                reason: "must be positive and finite".into(),
            });
        }
        Ok(Self { min_cpi })
    }

    /// Executes one fixed-work sample at CPU frequency `freq`, given the
    /// average DRAM access latency `mem_latency_ns` (as produced by the
    /// memory model for the concurrent memory frequency and load).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `chars` is invalid (see
    /// [`SampleCharacteristics::is_valid`]) or `mem_latency_ns` is negative.
    #[must_use]
    pub fn execute(
        &self,
        chars: &SampleCharacteristics,
        freq: CpuFreq,
        mem_latency_ns: f64,
    ) -> SampleExecution {
        debug_assert!(chars.is_valid(), "invalid sample characteristics");
        debug_assert!(
            mem_latency_ns >= 0.0 && mem_latency_ns.is_finite(),
            "memory latency must be finite and non-negative"
        );
        let n = INSTRUCTIONS_PER_SAMPLE as f64;
        let core_cycles = n * chars.base_cpi.max(self.min_cpi);
        let accesses = chars.dram_accesses() as f64;

        // Latency each access exposes to the pipeline: raw latency divided
        // by the overlap the core extracts (MLP), scaled by how much of it
        // the reorder buffer fails to hide.
        let exposed_ns = mem_latency_ns * chars.stall_exposure / chars.mlp;
        let stall_cycles = accesses * exposed_ns * f64::from(freq.mhz()) * 1e-3;

        let total = core_cycles + stall_cycles;
        let time = Seconds::new(total / freq.hz());
        SampleExecution {
            core_cycles,
            stall_cycles,
            time,
            cpi: total / n,
            busy_frac: core_cycles / total,
        }
    }

    /// The CPI floor imposed by issue width.
    #[must_use]
    pub fn min_cpi(&self) -> f64 {
        self.min_cpi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAT: f64 = 100.0; // ns

    fn model() -> CorePerfModel {
        CorePerfModel::a15_like()
    }

    #[test]
    fn cpu_bound_sample_time_scales_inversely_with_frequency() {
        let m = model();
        let cpu_bound = SampleCharacteristics::new(1.0, 0.0);
        let t500 = m.execute(&cpu_bound, CpuFreq::from_mhz(500), LAT).time;
        let t1000 = m.execute(&cpu_bound, CpuFreq::from_mhz(1000), LAT).time;
        assert!((t500.value() / t1000.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_sample_sees_diminishing_cpu_frequency_returns() {
        let m = model();
        let mem_bound = SampleCharacteristics::new(0.5, 30.0);
        let t500 = m.execute(&mem_bound, CpuFreq::from_mhz(500), LAT).time;
        let t1000 = m.execute(&mem_bound, CpuFreq::from_mhz(1000), LAT).time;
        let speedup = t500.value() / t1000.value();
        assert!(
            speedup < 1.5,
            "memory-bound speedup {speedup} should be far below 2x"
        );
    }

    #[test]
    fn stall_cycles_grow_with_cpu_frequency() {
        let m = model();
        let chars = SampleCharacteristics::new(1.0, 10.0);
        let lo = m.execute(&chars, CpuFreq::from_mhz(200), LAT);
        let hi = m.execute(&chars, CpuFreq::from_mhz(1000), LAT);
        assert!(hi.stall_cycles > lo.stall_cycles);
        assert!((hi.stall_cycles / lo.stall_cycles - 5.0).abs() < 1e-9);
        // Core cycles are frequency independent.
        assert!((hi.core_cycles - lo.core_cycles).abs() < 1e-9);
    }

    #[test]
    fn zero_mpki_has_no_stalls() {
        let m = model();
        let chars = SampleCharacteristics::new(0.9, 0.0);
        let e = m.execute(&chars, CpuFreq::from_mhz(700), LAT);
        assert_eq!(e.stall_cycles, 0.0);
        assert!((e.busy_frac - 1.0).abs() < 1e-12);
        assert!((e.cpi - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mlp_hides_latency() {
        let m = model();
        let mut serial = SampleCharacteristics::new(1.0, 10.0);
        serial.mlp = 1.0;
        let mut parallel = serial;
        parallel.mlp = 4.0;
        let ts = m.execute(&serial, CpuFreq::from_mhz(800), LAT).time;
        let tp = m.execute(&parallel, CpuFreq::from_mhz(800), LAT).time;
        assert!(tp < ts, "higher MLP must reduce stall time");
    }

    #[test]
    fn exposure_scales_stalls() {
        let m = model();
        let mut hidden = SampleCharacteristics::new(1.0, 10.0);
        hidden.stall_exposure = 0.0;
        let e = m.execute(&hidden, CpuFreq::from_mhz(800), LAT);
        assert_eq!(e.stall_cycles, 0.0);
    }

    #[test]
    fn cpi_floor_applies() {
        let m = model();
        let superscalar_dream = SampleCharacteristics::new(0.01, 0.0);
        let e = m.execute(&superscalar_dream, CpuFreq::from_mhz(1000), 0.0);
        assert!((e.cpi - m.min_cpi()).abs() < 1e-12);
    }

    #[test]
    fn faster_memory_reduces_time_and_raises_busy_frac() {
        let m = model();
        let chars = SampleCharacteristics::new(1.0, 15.0);
        let slow = m.execute(&chars, CpuFreq::from_mhz(1000), 200.0);
        let fast = m.execute(&chars, CpuFreq::from_mhz(1000), 50.0);
        assert!(fast.time < slow.time);
        assert!(fast.busy_frac > slow.busy_frac);
        assert!(fast.cpi < slow.cpi);
    }

    #[test]
    fn total_cycles_consistency() {
        let m = model();
        let chars = SampleCharacteristics::new(1.2, 5.0);
        let e = m.execute(&chars, CpuFreq::from_mhz(600), LAT);
        assert!((e.total_cycles() - (e.core_cycles + e.stall_cycles)).abs() < 1e-9);
        assert!((e.time.value() - e.total_cycles() / CpuFreq::from_mhz(600).hz()).abs() < 1e-15);
    }

    #[test]
    fn invalid_min_cpi_rejected() {
        assert!(CorePerfModel::new(0.0).is_err());
        assert!(CorePerfModel::new(f64::NAN).is_err());
        assert!(CorePerfModel::new(0.5).is_ok());
    }
}
