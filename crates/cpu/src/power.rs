//! The three-component CPU power model.
//!
//! The paper measured a PandaBoard (OMAP4430, Cortex-A9) with an Agilent
//! 34411A multimeter at peak utilization, then split consumption into three
//! components with distinct scaling laws:
//!
//! * **dynamic** power — switching activity; scales as `af · V² · f`
//!   (quadratic in voltage, linear in frequency, per the paper);
//! * **background** power — idle-unit clock-tree consumption; *clocked*, so
//!   it scales like dynamic power (`V² · f`) but does not depend on the
//!   activity factor;
//! * **leakage** power — up to 30% of peak microprocessor power [Floyd et
//!   al.] and linearly proportional to supply voltage [Narendra et al.].
//!
//! Absolute watts are calibrated to PandaBoard-class numbers; every result
//! in the reproduction is a ratio (inefficiency, speedup, % savings), so
//! only the component *shapes* and their relative magnitudes matter.

use crate::voltage::VfCurve;
use mcdvfs_types::{CpuFreq, Error, Result, Seconds, Watts};

/// Per-component CPU power at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerBreakdown {
    /// Switching (dynamic) power.
    pub dynamic: Watts,
    /// Clocked background power.
    pub background: Watts,
    /// Static leakage power.
    pub leakage: Watts,
}

impl CpuPowerBreakdown {
    /// Sum of all three components.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.dynamic + self.background + self.leakage
    }
}

/// Empirically-calibrated CPU power model.
///
/// # Examples
///
/// ```
/// use mcdvfs_cpu::{CpuPowerModel, VfCurve};
/// use mcdvfs_types::CpuFreq;
///
/// let model = CpuPowerModel::pandaboard();
/// let curve = VfCurve::pandaboard();
/// // Peak power at full activity and utilization.
/// let peak = model.total_power(CpuFreq::from_mhz(1000), &curve, 1.0, 1.0);
/// // Leakage is bounded by ~30% of peak, as the paper cites.
/// let brk = model.breakdown(CpuFreq::from_mhz(1000), &curve, 1.0, 1.0);
/// assert!(brk.leakage.value() / peak.value() <= 0.30 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPowerModel {
    /// Dynamic power at `V = Vmax`, `f = f_ref`, activity 1.0, busy 1.0.
    peak_dynamic: Watts,
    /// Background power at `V = Vmax`, `f = f_ref`.
    peak_background: Watts,
    /// Leakage power at `V = Vmax`.
    peak_leakage: Watts,
    /// Reference frequency at which the peak values were measured.
    f_ref: CpuFreq,
}

impl CpuPowerModel {
    /// Calibration matching PandaBoard/OMAP4430-class measurements:
    /// 1100 mW peak dynamic, 350 mW peak background, 100 mW leakage at
    /// 1.25 V / 1000 MHz. Leakage is ~6% of the ~1.55 W peak, inside the
    /// ≤30% bound the paper cites from Floyd et al.
    #[must_use]
    pub fn pandaboard() -> Self {
        Self::new(
            Watts::from_millis(1100.0),
            Watts::from_millis(350.0),
            Watts::from_millis(100.0),
            CpuFreq::from_mhz(1000),
        )
        .expect("reference calibration is valid")
    }

    /// Creates a model from peak component powers measured at `f_ref` and
    /// the curve's maximum voltage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any component power is
    /// negative or the reference frequency is zero.
    pub fn new(
        peak_dynamic: Watts,
        peak_background: Watts,
        peak_leakage: Watts,
        f_ref: CpuFreq,
    ) -> Result<Self> {
        for (name, w) in [
            ("peak_dynamic", peak_dynamic),
            ("peak_background", peak_background),
            ("peak_leakage", peak_leakage),
        ] {
            if !(w.value() >= 0.0 && w.is_finite()) {
                return Err(Error::InvalidParameter {
                    name,
                    reason: "must be finite and non-negative".into(),
                });
            }
        }
        if f_ref.mhz() == 0 {
            return Err(Error::InvalidParameter {
                name: "f_ref",
                reason: "reference frequency must be positive".into(),
            });
        }
        Ok(Self {
            peak_dynamic,
            peak_background,
            peak_leakage,
            f_ref,
        })
    }

    /// Per-component power at frequency `freq` on curve `curve`, with
    /// switching-activity factor `activity` and busy fraction `busy`
    /// (fraction of the interval the core is actually computing rather than
    /// stalled on memory; stalled cycles burn background and leakage but not
    /// dynamic power).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `activity` or `busy` fall outside `[0, 1]`.
    #[must_use]
    pub fn breakdown(
        &self,
        freq: CpuFreq,
        curve: &VfCurve,
        activity: f64,
        busy: f64,
    ) -> CpuPowerBreakdown {
        debug_assert!((0.0..=1.0).contains(&activity), "activity in [0,1]");
        debug_assert!((0.0..=1.0).contains(&busy), "busy in [0,1]");
        let v_ratio_sq = curve.voltage_ratio(freq).powi(2);
        let f_ratio = f64::from(freq.mhz()) / f64::from(self.f_ref.mhz());
        CpuPowerBreakdown {
            dynamic: self.peak_dynamic * (activity * busy * v_ratio_sq * f_ratio),
            background: self.peak_background * (v_ratio_sq * f_ratio),
            leakage: self.peak_leakage * curve.voltage_ratio(freq),
        }
    }

    /// Total power at an operating point (see [`Self::breakdown`]).
    #[must_use]
    pub fn total_power(&self, freq: CpuFreq, curve: &VfCurve, activity: f64, busy: f64) -> Watts {
        self.breakdown(freq, curve, activity, busy).total()
    }

    /// Energy consumed over a duration `time` at a fixed operating point.
    #[must_use]
    pub fn energy(
        &self,
        freq: CpuFreq,
        curve: &VfCurve,
        activity: f64,
        busy: f64,
        time: Seconds,
    ) -> mcdvfs_types::Joules {
        self.total_power(freq, curve, activity, busy) * time
    }

    /// The reference frequency this model was calibrated at.
    #[must_use]
    pub fn reference_freq(&self) -> CpuFreq {
        self.f_ref
    }

    /// Peak dynamic power (at `V = Vmax`, `f = f_ref`, activity 1, busy 1) —
    /// the coefficient of the `af · busy · V² · f` term, exposed so callers
    /// evaluating many samples at one operating point can hoist the
    /// frequency-dependent factors and scale this coefficient per sample.
    #[must_use]
    pub fn peak_dynamic(&self) -> Watts {
        self.peak_dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_and_curve() -> (CpuPowerModel, VfCurve) {
        (CpuPowerModel::pandaboard(), VfCurve::pandaboard())
    }

    #[test]
    fn peak_power_is_sum_of_components() {
        let (m, c) = model_and_curve();
        let b = m.breakdown(CpuFreq::from_mhz(1000), &c, 1.0, 1.0);
        assert!((b.dynamic.as_millis() - 1100.0).abs() < 1e-9);
        assert!((b.background.as_millis() - 350.0).abs() < 1e-9);
        assert!((b.leakage.as_millis() - 100.0).abs() < 1e-9);
        assert!((b.total().as_millis() - 1550.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_share_within_cited_bound() {
        let (m, c) = model_and_curve();
        let b = m.breakdown(CpuFreq::from_mhz(1000), &c, 1.0, 1.0);
        let share = b.leakage.value() / b.total().value();
        assert!(share <= 0.30, "leakage share {share} exceeds 30%");
    }

    #[test]
    fn dynamic_power_scales_quadratically_with_voltage_linearly_with_freq() {
        let (m, c) = model_and_curve();
        let at = |mhz| m.breakdown(CpuFreq::from_mhz(mhz), &c, 1.0, 1.0).dynamic;
        // Expected from first principles: P ∝ V² f.
        let expected_ratio = {
            let v1 = c.voltage_ratio(CpuFreq::from_mhz(500));
            (v1 * v1) * 0.5
        };
        let actual = at(500) / at(1000);
        assert!((actual - expected_ratio).abs() < 1e-12);
    }

    #[test]
    fn leakage_scales_linearly_with_voltage() {
        let (m, c) = model_and_curve();
        let l100 = m.breakdown(CpuFreq::from_mhz(100), &c, 1.0, 1.0).leakage;
        let l1000 = m.breakdown(CpuFreq::from_mhz(1000), &c, 1.0, 1.0).leakage;
        let expected = c.voltage_ratio(CpuFreq::from_mhz(100));
        assert!((l100 / l1000 - expected).abs() < 1e-12);
    }

    #[test]
    fn stalled_core_burns_no_dynamic_power() {
        let (m, c) = model_and_curve();
        let b = m.breakdown(CpuFreq::from_mhz(800), &c, 0.9, 0.0);
        assert_eq!(b.dynamic, Watts::ZERO);
        assert!(b.background.value() > 0.0);
        assert!(b.leakage.value() > 0.0);
    }

    #[test]
    fn background_power_is_clocked_but_activity_independent() {
        let (m, c) = model_and_curve();
        let low_act = m.breakdown(CpuFreq::from_mhz(800), &c, 0.1, 1.0);
        let high_act = m.breakdown(CpuFreq::from_mhz(800), &c, 1.0, 1.0);
        assert_eq!(low_act.background, high_act.background);
        assert!(low_act.dynamic < high_act.dynamic);
    }

    #[test]
    fn total_power_monotone_in_frequency() {
        let (m, c) = model_and_curve();
        let mut prev = Watts::ZERO;
        for mhz in (100..=1000).step_by(100) {
            let p = m.total_power(CpuFreq::from_mhz(mhz), &c, 0.7, 0.8);
            assert!(p > prev, "total power must grow with frequency");
            prev = p;
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let (m, c) = model_and_curve();
        let f = CpuFreq::from_mhz(600);
        let p = m.total_power(f, &c, 0.5, 0.5);
        let e = m.energy(f, &c, 0.5, 0.5, Seconds::new(2.0));
        assert!((e.value() - 2.0 * p.value()).abs() < 1e-12);
    }

    #[test]
    fn invalid_calibrations_rejected() {
        assert!(CpuPowerModel::new(
            Watts::new(-1.0),
            Watts::ZERO,
            Watts::ZERO,
            CpuFreq::from_mhz(1000)
        )
        .is_err());
        assert!(
            CpuPowerModel::new(Watts::ZERO, Watts::ZERO, Watts::ZERO, CpuFreq::from_mhz(0))
                .is_err()
        );
    }
}
