//! Performance-monitoring-unit counters.
//!
//! The paper's infrastructure reads Gem5's counters every 10 M user-mode
//! instructions, distinguishing user from kernel work so that periodic OS
//! traffic does not pollute cross-frequency comparisons. [`Pmu`] models the
//! same register file: free-running event counters plus snapshot/delta
//! support for sample-boundary reads.

use std::fmt;

/// Hardware events the modelled PMU can count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PmuEvent {
    /// Core clock cycles.
    Cycles,
    /// Retired user-mode instructions.
    UserInstructions,
    /// Retired kernel-mode instructions (excluded from sampling, tracked to
    /// verify the user/kernel split).
    KernelInstructions,
    /// Last-level-cache misses (DRAM accesses).
    LlcMisses,
    /// DRAM bytes transferred.
    DramBytes,
}

const EVENTS: [PmuEvent; 5] = [
    PmuEvent::Cycles,
    PmuEvent::UserInstructions,
    PmuEvent::KernelInstructions,
    PmuEvent::LlcMisses,
    PmuEvent::DramBytes,
];

impl PmuEvent {
    fn index(self) -> usize {
        match self {
            PmuEvent::Cycles => 0,
            PmuEvent::UserInstructions => 1,
            PmuEvent::KernelInstructions => 2,
            PmuEvent::LlcMisses => 3,
            PmuEvent::DramBytes => 4,
        }
    }
}

impl fmt::Display for PmuEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PmuEvent::Cycles => "cycles",
            PmuEvent::UserInstructions => "user_instructions",
            PmuEvent::KernelInstructions => "kernel_instructions",
            PmuEvent::LlcMisses => "llc_misses",
            PmuEvent::DramBytes => "dram_bytes",
        };
        f.write_str(name)
    }
}

/// A point-in-time copy of all counters, used to compute per-sample deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmuSnapshot {
    counts: [u64; 5],
}

impl PmuSnapshot {
    /// Value of one counter at snapshot time.
    #[must_use]
    pub fn count(&self, event: PmuEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Per-event difference `self - earlier`, saturating at zero so a
    /// wrapped or reset counter cannot produce a bogus huge delta.
    #[must_use]
    pub fn delta_since(&self, earlier: &PmuSnapshot) -> PmuSnapshot {
        let mut counts = [0u64; 5];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        PmuSnapshot { counts }
    }

    /// Cycles per user instruction within this (delta) snapshot; `None`
    /// when no user instructions retired.
    #[must_use]
    pub fn cpi(&self) -> Option<f64> {
        let instr = self.count(PmuEvent::UserInstructions);
        (instr > 0).then(|| self.count(PmuEvent::Cycles) as f64 / instr as f64)
    }

    /// LLC misses per thousand user instructions; `None` when no user
    /// instructions retired.
    #[must_use]
    pub fn mpki(&self) -> Option<f64> {
        let instr = self.count(PmuEvent::UserInstructions);
        (instr > 0).then(|| self.count(PmuEvent::LlcMisses) as f64 * 1000.0 / instr as f64)
    }
}

/// The free-running counter file.
///
/// # Examples
///
/// ```
/// use mcdvfs_cpu::{Pmu, PmuEvent};
///
/// let mut pmu = Pmu::new();
/// let start = pmu.snapshot();
/// pmu.add(PmuEvent::Cycles, 15_000_000);
/// pmu.add(PmuEvent::UserInstructions, 10_000_000);
/// pmu.add(PmuEvent::LlcMisses, 20_000);
/// let sample = pmu.snapshot().delta_since(&start);
/// assert_eq!(sample.cpi(), Some(1.5));
/// assert_eq!(sample.mpki(), Some(2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    counts: [u64; 5],
}

impl Pmu {
    /// Creates a PMU with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `event` by `amount` (saturating).
    pub fn add(&mut self, event: PmuEvent, amount: u64) {
        let c = &mut self.counts[event.index()];
        *c = c.saturating_add(amount);
    }

    /// Current value of one counter.
    #[must_use]
    pub fn count(&self, event: PmuEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Copies all counters.
    #[must_use]
    pub fn snapshot(&self) -> PmuSnapshot {
        PmuSnapshot {
            counts: self.counts,
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.counts = [0; 5];
    }

    /// Iterates over `(event, count)` pairs in a fixed order.
    pub fn iter(&self) -> impl Iterator<Item = (PmuEvent, u64)> + '_ {
        EVENTS.iter().map(move |&e| (e, self.count(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let mut pmu = Pmu::new();
        pmu.add(PmuEvent::Cycles, 100);
        pmu.add(PmuEvent::Cycles, 50);
        pmu.add(PmuEvent::LlcMisses, 7);
        assert_eq!(pmu.count(PmuEvent::Cycles), 150);
        assert_eq!(pmu.count(PmuEvent::LlcMisses), 7);
        assert_eq!(pmu.count(PmuEvent::DramBytes), 0);
    }

    #[test]
    fn delta_isolates_a_sample() {
        let mut pmu = Pmu::new();
        pmu.add(PmuEvent::UserInstructions, 500);
        let s0 = pmu.snapshot();
        pmu.add(PmuEvent::UserInstructions, 1000);
        pmu.add(PmuEvent::Cycles, 1300);
        let d = pmu.snapshot().delta_since(&s0);
        assert_eq!(d.count(PmuEvent::UserInstructions), 1000);
        assert_eq!(d.count(PmuEvent::Cycles), 1300);
        assert_eq!(d.cpi(), Some(1.3));
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let mut pmu = Pmu::new();
        pmu.add(PmuEvent::Cycles, 100);
        let late = pmu.snapshot();
        pmu.reset();
        let early = pmu.snapshot();
        // "earlier" snapshot actually has the larger count: delta is 0.
        assert_eq!(early.delta_since(&late).count(PmuEvent::Cycles), 0);
    }

    #[test]
    fn derived_metrics_handle_empty_samples() {
        let empty = PmuSnapshot::default();
        assert_eq!(empty.cpi(), None);
        assert_eq!(empty.mpki(), None);
    }

    #[test]
    fn kernel_instructions_do_not_affect_user_metrics() {
        let mut pmu = Pmu::new();
        pmu.add(PmuEvent::UserInstructions, 1000);
        pmu.add(PmuEvent::KernelInstructions, 999_999);
        pmu.add(PmuEvent::Cycles, 2000);
        let s = pmu.snapshot();
        assert_eq!(s.cpi(), Some(2.0), "kernel work excluded from CPI");
    }

    #[test]
    fn saturating_add_at_max() {
        let mut pmu = Pmu::new();
        pmu.add(PmuEvent::DramBytes, u64::MAX);
        pmu.add(PmuEvent::DramBytes, 1);
        assert_eq!(pmu.count(PmuEvent::DramBytes), u64::MAX);
    }

    #[test]
    fn iter_yields_all_events() {
        let pmu = Pmu::new();
        assert_eq!(pmu.iter().count(), 5);
    }

    #[test]
    fn event_display_names() {
        assert_eq!(PmuEvent::Cycles.to_string(), "cycles");
        assert_eq!(PmuEvent::LlcMisses.to_string(), "llc_misses");
    }
}
