//! Trace-driven L1/L2 cache hierarchy simulator.
//!
//! Mirrors the paper's Gem5 cache configuration: a 64 KB L1 with 2-cycle
//! access latency backed by a unified 2 MB L2 with 12-cycle hit latency,
//! both in the CPU clock domain. The simulator is used to derive MPKI for
//! the synthetic microbenchmark address streams (calibration) and to
//! validate that workload-profile MPKI values are achievable by real
//! reference streams.

use mcdvfs_types::{Error, Result};

/// A single memory access in a reference trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

impl MemAccess {
    /// Convenience constructor for a load.
    #[must_use]
    pub const fn load(addr: u64) -> Self {
        Self { addr, write: false }
    }

    /// Convenience constructor for a store.
    #[must_use]
    pub const fn store(addr: u64) -> Self {
        Self { addr, write: true }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in core cycles.
    pub hit_latency_cycles: u32,
}

impl CacheConfig {
    /// The paper's L1: 64 KB, 64 B lines, 4-way, 2-cycle access.
    #[must_use]
    pub const fn gem5_l1() -> Self {
        Self {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 4,
            hit_latency_cycles: 2,
        }
    }

    /// The paper's unified L2: 2 MB, 64 B lines, 16-way, 12-cycle hit.
    #[must_use]
    pub const fn gem5_l2() -> Self {
        Self {
            size_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency_cycles: 12,
        }
    }

    fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }

    fn validate(&self, name: &'static str) -> Result<()> {
        let ok = self.line_bytes.is_power_of_two()
            && self.line_bytes > 0
            && self.ways > 0
            && self
                .size_bytes
                .is_multiple_of(self.line_bytes * u64::from(self.ways))
            && self.sets() > 0
            && self.sets().is_power_of_two();
        if ok {
            Ok(())
        } else {
            Err(Error::InvalidParameter {
                name,
                reason: "cache geometry must give a power-of-two number of sets".into(),
            })
        }
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLevelStats {
    /// Number of accesses that reached this level.
    pub accesses: u64,
    /// Number that hit.
    pub hits: u64,
}

impl CacheLevelStats {
    /// Number of misses at this level.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; `0` when no accesses were made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// One set-associative, LRU, write-allocate cache level.
#[derive(Debug, Clone)]
struct CacheLevel {
    config: CacheConfig,
    /// `tags[set]` is the LRU stack for that set, most-recent first.
    tags: Vec<Vec<u64>>,
    stats: CacheLevelStats,
}

impl CacheLevel {
    fn new(config: CacheConfig) -> Self {
        Self {
            config,
            tags: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            stats: CacheLevelStats::default(),
        }
    }

    /// Returns `true` on hit. On miss, allocates the line (LRU eviction).
    fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        let stack = &mut self.tags[set];
        if let Some(pos) = stack.iter().position(|&t| t == tag) {
            stack.remove(pos);
            stack.insert(0, tag);
            self.stats.hits += 1;
            true
        } else {
            if stack.len() == self.config.ways as usize {
                stack.pop();
            }
            stack.insert(0, tag);
            false
        }
    }
}

/// A two-level inclusive cache hierarchy.
///
/// # Examples
///
/// A working set that fits in L1 never misses to DRAM:
///
/// ```
/// use mcdvfs_cpu::{CacheHierarchy, MemAccess};
///
/// let mut caches = CacheHierarchy::gem5_default();
/// for round in 0..4 {
///     for addr in (0..16 * 1024u64).step_by(64) {
///         caches.access(MemAccess::load(addr));
///     }
///     let _ = round;
/// }
/// assert_eq!(caches.dram_accesses(), 256, "only cold misses reach DRAM");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    dram_accesses: u64,
}

impl CacheHierarchy {
    /// Builds the paper's default hierarchy ([`CacheConfig::gem5_l1`] +
    /// [`CacheConfig::gem5_l2`]).
    #[must_use]
    pub fn gem5_default() -> Self {
        Self::new(CacheConfig::gem5_l1(), CacheConfig::gem5_l2())
            .expect("reference cache geometry is valid")
    }

    /// Builds a hierarchy from explicit level configurations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when either geometry does not
    /// produce a power-of-two set count.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Result<Self> {
        l1.validate("l1")?;
        l2.validate("l2")?;
        Ok(Self {
            l1: CacheLevel::new(l1),
            l2: CacheLevel::new(l2),
            dram_accesses: 0,
        })
    }

    /// Performs one access; returns the hit latency in core cycles for a
    /// cache hit, or `None` when the access misses to DRAM (the DRAM model
    /// owns that latency).
    pub fn access(&mut self, access: MemAccess) -> Option<u32> {
        if self.l1.access(access.addr) {
            return Some(self.l1.config.hit_latency_cycles);
        }
        if self.l2.access(access.addr) {
            return Some(self.l2.config.hit_latency_cycles);
        }
        self.dram_accesses += 1;
        None
    }

    /// Runs a whole trace, returning the number of DRAM accesses it caused.
    pub fn run_trace<I: IntoIterator<Item = MemAccess>>(&mut self, trace: I) -> u64 {
        let before = self.dram_accesses;
        for a in trace {
            self.access(a);
        }
        self.dram_accesses - before
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheLevelStats {
        self.l1.stats
    }

    /// L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheLevelStats {
        self.l2.stats
    }

    /// Total accesses that missed both levels.
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Misses per thousand instructions for an instruction count executed
    /// alongside the trace so far.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.dram_accesses as f64 * 1000.0 / instructions as f64
    }

    /// Resets all counters and contents.
    pub fn reset(&mut self) {
        *self = Self::new(self.l1.config, self.l2.config).expect("geometry already validated");
    }

    /// Resets the hit/miss counters while keeping cache contents, so a
    /// measurement can exclude cold-start misses after a warm-up pass.
    pub fn reset_stats(&mut self) {
        self.l1.stats = CacheLevelStats::default();
        self.l2.stats = CacheLevelStats::default();
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_resident_set_hits_after_warmup() {
        let mut h = CacheHierarchy::gem5_default();
        let addrs: Vec<u64> = (0..32 * 1024).step_by(64).collect();
        // Warm-up pass: all cold misses.
        for &a in &addrs {
            h.access(MemAccess::load(a));
        }
        let cold = h.dram_accesses();
        assert_eq!(cold, addrs.len() as u64);
        // Second pass: everything hits L1 at 2 cycles.
        for &a in &addrs {
            assert_eq!(h.access(MemAccess::load(a)), Some(2));
        }
        assert_eq!(h.dram_accesses(), cold);
    }

    #[test]
    fn l2_resident_set_hits_l2_after_l1_eviction() {
        let mut h = CacheHierarchy::gem5_default();
        // 512 KB working set: fits L2, thrashes 64 KB L1.
        let addrs: Vec<u64> = (0..512 * 1024).step_by(64).collect();
        for &a in &addrs {
            h.access(MemAccess::load(a));
        }
        let mut l2_hits = 0;
        for &a in &addrs {
            match h.access(MemAccess::load(a)) {
                Some(12) => l2_hits += 1,
                Some(2) => {}
                other => panic!("unexpected DRAM access or latency {other:?}"),
            }
        }
        assert!(l2_hits > addrs.len() / 2, "most re-accesses should hit L2");
    }

    #[test]
    fn oversized_working_set_misses_to_dram() {
        let mut h = CacheHierarchy::gem5_default();
        // 8 MB streaming set: 4x the L2.
        let addrs: Vec<u64> = (0..8 * 1024 * 1024).step_by(64).collect();
        for &a in &addrs {
            h.access(MemAccess::load(a));
        }
        let first_pass = h.dram_accesses();
        for &a in &addrs {
            h.access(MemAccess::load(a));
        }
        let second_pass = h.dram_accesses() - first_pass;
        assert!(
            second_pass > addrs.len() as u64 * 9 / 10,
            "streaming re-pass should still miss ({second_pass} of {})",
            addrs.len()
        );
    }

    #[test]
    fn mpki_computation() {
        let mut h = CacheHierarchy::gem5_default();
        for a in (0..64 * 64u64).step_by(64) {
            h.access(MemAccess::load(a * 1024)); // far apart: all miss
        }
        assert_eq!(h.dram_accesses(), 64);
        assert!((h.mpki(64_000) - 1.0).abs() < 1e-12);
        assert_eq!(h.mpki(0), 0.0);
    }

    #[test]
    fn lru_replacement_is_observed() {
        // Tiny direct-mapped-ish cache: 2 sets x 2 ways x 64B = 256B.
        let tiny = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency_cycles: 1,
        };
        let big = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            hit_latency_cycles: 5,
        };
        let mut h = CacheHierarchy::new(tiny, big).unwrap();
        // Three lines mapping to set 0 (stride = 2 lines x 64B = 128B).
        let (a, b, c) = (0u64, 128, 256);
        h.access(MemAccess::load(a));
        h.access(MemAccess::load(b));
        h.access(MemAccess::load(a)); // a now MRU
        h.access(MemAccess::load(c)); // evicts b (LRU)
        assert_eq!(h.access(MemAccess::load(a)), Some(1), "a survives in L1");
        assert_eq!(h.access(MemAccess::load(b)), Some(5), "b fell to L2");
    }

    #[test]
    fn run_trace_counts_new_dram_accesses() {
        let mut h = CacheHierarchy::gem5_default();
        let trace: Vec<MemAccess> = (0..128u64).map(|i| MemAccess::load(i * 4096)).collect();
        let misses = h.run_trace(trace.clone());
        assert_eq!(misses, 128);
        let misses2 = h.run_trace(trace);
        assert_eq!(
            misses2, 0,
            "second pass hits in L2 (128 x 4KB-strided lines fit)"
        );
    }

    #[test]
    fn stores_allocate_like_loads() {
        let mut h = CacheHierarchy::gem5_default();
        assert_eq!(h.access(MemAccess::store(0x1000)), None);
        assert_eq!(h.access(MemAccess::load(0x1000)), Some(2));
    }

    #[test]
    fn invalid_geometry_rejected() {
        let bad = CacheConfig {
            size_bytes: 100,
            line_bytes: 64,
            ways: 2,
            hit_latency_cycles: 1,
        };
        assert!(CacheHierarchy::new(bad, CacheConfig::gem5_l2()).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut h = CacheHierarchy::gem5_default();
        h.access(MemAccess::load(0));
        h.reset();
        assert_eq!(h.dram_accesses(), 0);
        assert_eq!(h.l1_stats().accesses, 0);
    }

    #[test]
    fn stats_track_hit_rates() {
        let mut h = CacheHierarchy::gem5_default();
        h.access(MemAccess::load(0));
        h.access(MemAccess::load(0));
        assert_eq!(h.l1_stats().accesses, 2);
        assert_eq!(h.l1_stats().hits, 1);
        assert!((h.l1_stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(h.l1_stats().misses(), 1);
        assert_eq!(CacheLevelStats::default().hit_rate(), 0.0);
    }
}
