//! The CPU voltage–frequency operating curve.

use mcdvfs_types::{CpuFreq, Error, Result, Volts};

/// A piecewise-linear voltage–frequency curve for the CPU voltage domain.
///
/// The paper's platform scales both voltage and frequency for the CPU
/// (memory scales frequency only). The modelled SoC runs 0.85 V at
/// 100 MHz up to the paper's stated maximum of 1.25 V at 1000 MHz, with
/// voltage interpolated linearly in between — the shape commercial OPP
/// tables approximate.
///
/// # Examples
///
/// ```
/// use mcdvfs_cpu::VfCurve;
/// use mcdvfs_types::CpuFreq;
///
/// let curve = VfCurve::pandaboard();
/// let v = curve.voltage(CpuFreq::from_mhz(1000));
/// assert!((v.value() - 1.25).abs() < 1e-9);
/// assert!(curve.voltage(CpuFreq::from_mhz(100)) < v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfCurve {
    f_min: CpuFreq,
    f_max: CpuFreq,
    v_min: Volts,
    v_max: Volts,
}

impl VfCurve {
    /// The curve used throughout the reproduction: 0.75 V @ 100 MHz to
    /// 1.25 V @ 1000 MHz (the paper states a 100–1000 MHz clock domain with
    /// a highest voltage of 1.25 V; the floor is a near-threshold retention
    /// voltage typical of 45 nm mobile parts).
    #[must_use]
    pub fn pandaboard() -> Self {
        Self::new(
            CpuFreq::from_mhz(100),
            CpuFreq::from_mhz(1000),
            Volts::new(0.75),
            Volts::new(1.25),
        )
        .expect("reference curve parameters are valid")
    }

    /// Creates a linear curve between two operating points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the frequency range is empty
    /// or voltages are non-positive or inverted.
    pub fn new(f_min: CpuFreq, f_max: CpuFreq, v_min: Volts, v_max: Volts) -> Result<Self> {
        if f_max <= f_min {
            return Err(Error::InvalidParameter {
                name: "f_max",
                reason: format!("must exceed f_min ({f_min} >= {f_max})"),
            });
        }
        if v_min.value() <= 0.0 || v_max < v_min {
            return Err(Error::InvalidParameter {
                name: "v_max",
                reason: "voltages must be positive and non-decreasing".into(),
            });
        }
        Ok(Self {
            f_min,
            f_max,
            v_min,
            v_max,
        })
    }

    /// The supply voltage required to run at `freq`.
    ///
    /// Frequencies outside the curve's range are clamped to its endpoints,
    /// mirroring how a PMIC pins the rail at its limits.
    #[must_use]
    pub fn voltage(&self, freq: CpuFreq) -> Volts {
        let f = freq.mhz().clamp(self.f_min.mhz(), self.f_max.mhz());
        let span = f64::from(self.f_max.mhz() - self.f_min.mhz());
        let frac = f64::from(f - self.f_min.mhz()) / span;
        self.v_min + (self.v_max - self.v_min) * frac
    }

    /// The maximum (peak) voltage of the curve.
    #[must_use]
    pub fn v_max(&self) -> Volts {
        self.v_max
    }

    /// The minimum voltage of the curve.
    #[must_use]
    pub fn v_min(&self) -> Volts {
        self.v_min
    }

    /// Voltage at `freq` normalized to the peak voltage, i.e. `V/Vmax`.
    #[must_use]
    pub fn voltage_ratio(&self, freq: CpuFreq) -> f64 {
        self.voltage(freq) / self.v_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_specification() {
        let c = VfCurve::pandaboard();
        assert!((c.voltage(CpuFreq::from_mhz(100)).value() - 0.75).abs() < 1e-12);
        assert!((c.voltage(CpuFreq::from_mhz(1000)).value() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_linear() {
        let c = VfCurve::pandaboard();
        let mid = c.voltage(CpuFreq::from_mhz(550));
        assert!((mid.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let c = VfCurve::pandaboard();
        let mut prev = Volts::ZERO;
        for mhz in (100..=1000).step_by(100) {
            let v = c.voltage(CpuFreq::from_mhz(mhz));
            assert!(v > prev, "voltage must increase with frequency");
            prev = v;
        }
    }

    #[test]
    fn out_of_range_frequencies_clamp() {
        let c = VfCurve::pandaboard();
        assert_eq!(c.voltage(CpuFreq::from_mhz(50)), c.v_min());
        assert_eq!(c.voltage(CpuFreq::from_mhz(2000)), c.v_max());
    }

    #[test]
    fn voltage_ratio_is_one_at_peak() {
        let c = VfCurve::pandaboard();
        assert!((c.voltage_ratio(CpuFreq::from_mhz(1000)) - 1.0).abs() < 1e-12);
        assert!(c.voltage_ratio(CpuFreq::from_mhz(100)) < 1.0);
    }

    #[test]
    fn invalid_curves_rejected() {
        let f = CpuFreq::from_mhz;
        assert!(VfCurve::new(f(500), f(500), Volts::new(1.0), Volts::new(1.2)).is_err());
        assert!(VfCurve::new(f(100), f(1000), Volts::new(0.0), Volts::new(1.2)).is_err());
        assert!(VfCurve::new(f(100), f(1000), Volts::new(1.2), Volts::new(1.0)).is_err());
    }
}
