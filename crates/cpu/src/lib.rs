//! CPU models for the `mcdvfs` workspace.
//!
//! This crate provides the processor half of the simulated platform from
//! Begum et al. (IISWC 2015):
//!
//! * [`VfCurve`] — the voltage–frequency operating curve (0.85 V @ 100 MHz
//!   to 1.25 V @ 1000 MHz on the modelled SoC);
//! * [`CpuPowerModel`] — the paper's empirical three-component power model
//!   (dynamic `∝ af·V²f`, clocked background `∝ V²f`, leakage `∝ V`),
//!   calibrated against PandaBoard/OMAP4430-class peak measurements;
//! * [`CorePerfModel`] — an analytic out-of-order core model producing
//!   execution cycles for a fixed-work sample given the exposed DRAM
//!   latency;
//! * [`CacheHierarchy`] — a trace-driven L1/L2 set-associative cache
//!   simulator (64 KB L1 @ 2 cycles, 2 MB unified L2 @ 12 cycles, the
//!   paper's Gem5 configuration) used for calibration and validation;
//! * [`Pmu`] — performance-counter plumbing mirroring the PMU registers the
//!   paper's infrastructure samples every 10 M user-mode instructions;
//! * [`microbench`] — synthetic stress kernels standing in for the
//!   microbenchmarks the authors ran to calibrate peak power.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_cpu::{CpuPowerModel, VfCurve};
//! use mcdvfs_types::CpuFreq;
//!
//! let curve = VfCurve::pandaboard();
//! let power = CpuPowerModel::pandaboard();
//! let p_max = power.total_power(CpuFreq::from_mhz(1000), &curve, 1.0, 1.0);
//! let p_min = power.total_power(CpuFreq::from_mhz(100), &curve, 1.0, 1.0);
//! assert!(p_max.value() > p_min.value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod microbench;
mod perf;
mod pmu;
mod power;
mod voltage;

pub use cache::{CacheConfig, CacheHierarchy, CacheLevelStats, MemAccess};
pub use perf::{CorePerfModel, SampleExecution};
pub use pmu::{Pmu, PmuEvent, PmuSnapshot};
pub use power::{CpuPowerBreakdown, CpuPowerModel};
pub use voltage::VfCurve;
