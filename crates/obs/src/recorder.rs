//! The recorder sink trait and the zero-cost default.

use crate::event::Event;

/// A sink for governed-run [`Event`]s.
///
/// Instrumented code must gate event construction on [`enabled`]
/// (`if recorder.enabled() { recorder.record(...) }`) so a disabled
/// recorder costs one branch per hook and nothing else — no event is
/// built, nothing is written, nothing allocates.
///
/// [`enabled`]: Recorder::enabled
pub trait Recorder {
    /// Accepts one event. Implementations must not panic on overflow;
    /// bounded sinks drop and count instead (see
    /// [`RunLedger`](crate::RunLedger)).
    fn record(&mut self, event: Event);

    /// Whether this recorder wants events at all. Hot paths skip their
    /// instrumentation entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The always-disabled recorder: drops everything, reports itself
/// disabled, holds no storage.
///
/// # Examples
///
/// ```
/// use mcdvfs_obs::{NullRecorder, Recorder};
///
/// let rec = NullRecorder;
/// assert!(!rec.enabled());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_zero_sized() {
        let mut rec = NullRecorder;
        assert!(!rec.enabled());
        rec.record(Event::RegionBoundary { sample: 0 });
        assert_eq!(std::mem::size_of::<NullRecorder>(), 0);
    }

    #[test]
    fn null_recorder_works_as_trait_object() {
        let mut rec = NullRecorder;
        let dyn_rec: &mut dyn Recorder = &mut rec;
        assert!(!dyn_rec.enabled());
        dyn_rec.record(Event::RegionBoundary { sample: 1 });
    }
}
