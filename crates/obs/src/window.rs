//! Windowed telemetry: a ring of 1-second aggregation windows.
//!
//! A [`WindowRing`] turns a stream of per-request observations into a
//! short time series: each elapsed second owns one [`Window`] carrying
//! throughput, shed/error counts, the queue-depth high-water mark and
//! a log-bucketed latency [`Histogram`] (p50/p95/max). Slots are
//! addressed by `second % capacity`, so an observation landing in a
//! stale slot resets it for the new second — old windows age out by
//! wraparound with no timer thread and no allocation after startup.
//!
//! The ring is single-writer by design: in `mcdvfs-serve` it is owned
//! by the reactor thread, which observes every reply it writes.
//! Per-worker stage histograms take the other route — private
//! [`MetricSet`](crate::MetricSet)s merged at join points — so neither
//! path ever contends on a lock.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_obs::{WindowClass, WindowRing};
//!
//! let mut ring = WindowRing::new(4);
//! ring.observe(1_500_000_000, WindowClass::Ok, 250_000.0);
//! ring.observe(1_900_000_000, WindowClass::Shed, 10_000.0);
//! ring.observe_queue_depth(1_900_000_000, 7);
//! let windows = ring.snapshot();
//! assert_eq!(windows.len(), 1);
//! assert_eq!(windows[0].requests, 2);
//! assert_eq!(windows[0].shed, 1);
//! assert_eq!(windows[0].queue_depth_max, 7);
//! ```

use crate::aggregate::Histogram;
use crate::metrics::duration_edges_ns;

/// Coarse classification of a served request for windowed counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowClass {
    /// Served successfully (including cache hits).
    Ok,
    /// Answered with an error reply or abandoned by deadline.
    Error,
    /// Rejected by queue backpressure.
    Shed,
}

/// One second's aggregated telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Which second this window covers, in whole seconds since the
    /// observer's epoch.
    pub second: u64,
    /// Requests observed (`ok + errors + shed`).
    pub requests: u64,
    /// Successful replies.
    pub ok: u64,
    /// Error replies and deadline expiries.
    pub errors: u64,
    /// Backpressure rejections.
    pub shed: u64,
    /// Highest queue depth reported during the second.
    pub queue_depth_max: u64,
    latency: Histogram,
}

impl Window {
    fn new(second: u64) -> Self {
        Self {
            second,
            requests: 0,
            ok: 0,
            errors: 0,
            shed: 0,
            queue_depth_max: 0,
            latency: Histogram::new(duration_edges_ns()),
        }
    }

    /// The window's latency histogram (nanoseconds).
    #[must_use]
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Median reply latency in nanoseconds; `None` with no samples.
    #[must_use]
    pub fn p50_ns(&self) -> Option<f64> {
        self.latency.percentile(0.5)
    }

    /// 95th-percentile reply latency in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> Option<f64> {
        self.latency.percentile(0.95)
    }

    /// Slowest reply in nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> Option<f64> {
        self.latency.max_value()
    }
}

/// A fixed-capacity ring of per-second [`Window`]s, addressed by
/// `second % capacity` and reset lazily when a new second claims a
/// slot.
#[derive(Debug)]
pub struct WindowRing {
    slots: Vec<Option<Window>>,
}

impl WindowRing {
    /// A ring retaining up to `seconds` windows (clamped to at least
    /// two so the current and previous second never collide).
    #[must_use]
    pub fn new(seconds: usize) -> Self {
        Self {
            slots: (0..seconds.max(2)).map(|_| None).collect(),
        }
    }

    /// How many seconds of history the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn window_mut(&mut self, now_ns: u64) -> &mut Window {
        let second = now_ns / 1_000_000_000;
        let idx = (second % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        match slot {
            Some(w) if w.second == second => {}
            _ => *slot = Some(Window::new(second)),
        }
        slot.as_mut().expect("slot populated above")
    }

    /// Counts one served request of `class` with its reply latency.
    pub fn observe(&mut self, now_ns: u64, class: WindowClass, latency_ns: f64) {
        let w = self.window_mut(now_ns);
        w.requests += 1;
        match class {
            WindowClass::Ok => w.ok += 1,
            WindowClass::Error => w.errors += 1,
            WindowClass::Shed => w.shed += 1,
        }
        w.latency.add(latency_ns);
    }

    /// Raises the current second's queue-depth high-water mark.
    pub fn observe_queue_depth(&mut self, now_ns: u64, depth: u64) {
        let w = self.window_mut(now_ns);
        w.queue_depth_max = w.queue_depth_max.max(depth);
    }

    /// Every populated window, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Window> {
        let mut windows: Vec<Window> = self.slots.iter().flatten().cloned().collect();
        windows.sort_by_key(|w| w.second);
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn observations_land_in_their_second() {
        let mut ring = WindowRing::new(8);
        ring.observe(SEC / 2, WindowClass::Ok, 100.0);
        ring.observe(3 * SEC + 1, WindowClass::Error, 200.0);
        ring.observe(3 * SEC + 2, WindowClass::Ok, 300.0);
        let windows = ring.snapshot();
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].second, windows[0].requests), (0, 1));
        assert_eq!((windows[1].second, windows[1].requests), (3, 2));
        assert_eq!(windows[1].errors, 1);
        assert_eq!(windows[1].latency().total(), 2);
    }

    #[test]
    fn wraparound_evicts_the_stale_second() {
        let mut ring = WindowRing::new(4);
        ring.observe(SEC, WindowClass::Ok, 100.0); // second 1 → slot 1
        ring.observe(5 * SEC, WindowClass::Ok, 100.0); // second 5 → slot 1 again
        let windows = ring.snapshot();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].second, 5);
    }

    #[test]
    fn queue_depth_keeps_the_high_water_mark() {
        let mut ring = WindowRing::new(4);
        ring.observe_queue_depth(10, 3);
        ring.observe_queue_depth(20, 9);
        ring.observe_queue_depth(30, 4);
        assert_eq!(ring.snapshot()[0].queue_depth_max, 9);
    }

    #[test]
    fn percentiles_come_from_the_window_latency_histogram() {
        let mut ring = WindowRing::new(4);
        for latency in [1_000.0, 2_000.0, 4_000.0, 1_000_000.0] {
            ring.observe(0, WindowClass::Ok, latency);
        }
        let w = &ring.snapshot()[0];
        assert_eq!(w.max_ns(), Some(1_000_000.0));
        let p50 = w.p50_ns().unwrap();
        assert!((1_000.0..=4_000.0).contains(&p50), "p50 was {p50}");
        assert!(w.p95_ns().unwrap() <= 1_000_000.0);
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        let ring = WindowRing::new(0);
        assert_eq!(ring.capacity(), 2);
    }
}
