//! Request-level flight recorder: per-request stage timestamps in a
//! bounded ring.
//!
//! A [`RequestTrace`] is one request's journey through the serving
//! pipeline — eight monotonic stage timestamps (accepted →
//! frame-complete → decoded → enqueued → dequeued → computed → encoded
//! → write-flushed), the tenant fingerprint, the request kind and its
//! [`Outcome`]. The trace is a plain owned value: the stage that holds
//! the request holds its trace, stamps the stages it witnesses, and
//! moves the trace along with the request — no shared state, no
//! atomics on the hot path. Only the final
//! [`commit`](FlightRecorder::commit) takes a lock, and it runs on the
//! single reactor thread.
//!
//! The [`FlightRecorder`] follows the same gating contract as
//! [`Recorder`](crate::Recorder) and [`Profiler`](crate::Profiler): a
//! [`disabled`](FlightRecorder::disabled) recorder reports
//! [`is_enabled`](FlightRecorder::is_enabled)` == false` so callers
//! skip trace construction entirely, and `commit` is a no-op — the
//! instrumented pipeline produces bit-identical replies with the
//! recorder on or off. An enabled recorder keeps the newest
//! `capacity` traces (dropping the oldest, counted), plus a separate
//! slow-request ring of traces whose end-to-end time exceeded a
//! configurable threshold.
//!
//! # Examples
//!
//! ```
//! use mcdvfs_obs::{FlightRecorder, Outcome, Stage};
//! use std::time::Duration;
//!
//! let rec = FlightRecorder::enabled(8, Duration::from_millis(250));
//! let mut t = rec.begin("optimal_setting");
//! t.stamp(Stage::Accepted, 100);
//! t.stamp(Stage::WriteFlushed, 900);
//! t.outcome = Outcome::Ok;
//! rec.commit(t);
//! assert_eq!(rec.counts().recorded, 1);
//! assert!(rec.recent(8, false)[0].is_monotone());
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The pipeline stages a request's flight record can stamp, in
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First byte of the frame arrived on the connection.
    Accepted,
    /// The length-prefixed frame was complete in the read buffer.
    FrameComplete,
    /// The payload parsed into a typed [`Request`]-equivalent.
    Decoded,
    /// The job entered a shard's bounded queue.
    Enqueued,
    /// A worker pulled the job off the queue.
    Dequeued,
    /// The engine finished computing the reply.
    Computed,
    /// The reply was rendered to its wire frame.
    Encoded,
    /// The reply's last byte left the server's write buffer.
    WriteFlushed,
}

impl Stage {
    /// Number of stages (the trace's timestamp-slot count).
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Accepted,
        Stage::FrameComplete,
        Stage::Decoded,
        Stage::Enqueued,
        Stage::Dequeued,
        Stage::Computed,
        Stage::Encoded,
        Stage::WriteFlushed,
    ];

    /// Position of this stage in pipeline order.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Wire-stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::FrameComplete => "frame_complete",
            Stage::Decoded => "decoded",
            Stage::Enqueued => "enqueued",
            Stage::Dequeued => "dequeued",
            Stage::Computed => "computed",
            Stage::Encoded => "encoded",
            Stage::WriteFlushed => "write_flushed",
        }
    }
}

/// How a request's flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served successfully through the compute path or inline.
    Ok,
    /// Served from the reply cache without touching a worker.
    CacheHit,
    /// Answered with a typed error reply.
    Error,
    /// Rejected by queue backpressure.
    Shed,
    /// The reply deadline expired before the worker finished; the late
    /// completion was discarded.
    TimedOut,
}

impl Outcome {
    /// Wire-stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::CacheHit => "cache_hit",
            Outcome::Error => "error",
            Outcome::Shed => "shed",
            Outcome::TimedOut => "timed_out",
        }
    }
}

/// One request's flight record: identity plus per-stage timestamps in
/// nanoseconds since the recorder's epoch.
///
/// Stages a request never reaches stay unset — an inline `stats` reply
/// has no enqueued/dequeued/computed stamps, a shed request stops at
/// decoded, a timed-out one never stamps write-flushed.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Recorder-unique id, allocated at [`FlightRecorder::begin`].
    pub id: u64,
    /// Request kind label (e.g. `"optimal_setting"`).
    pub kind: &'static str,
    /// Owning tenant's characterization-grid fingerprint (`0` for
    /// global requests that never resolve a shard).
    pub fingerprint: u64,
    /// How the flight ended.
    pub outcome: Outcome,
    stages: [Option<u64>; Stage::COUNT],
}

impl RequestTrace {
    /// Records the timestamp for `stage` (nanoseconds since the
    /// recorder's epoch). Last stamp wins if a stage is stamped twice.
    pub fn stamp(&mut self, stage: Stage, t_ns: u64) {
        self.stages[stage.index()] = Some(t_ns);
    }

    /// The timestamp for `stage`, if it was reached.
    #[must_use]
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        self.stages[stage.index()]
    }

    /// Stamped stages in pipeline order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL
            .iter()
            .filter_map(|&s| self.stages[s.index()].map(|t| (s, t)))
    }

    /// End-to-end time: last stamped stage minus first stamped stage
    /// (`0` with fewer than two stamps).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        let mut it = self.stages().map(|(_, t)| t);
        let Some(first) = it.next() else { return 0 };
        it.last().map_or(0, |last| last.saturating_sub(first))
    }

    /// `true` when the stamped stages are non-decreasing in pipeline
    /// order — the invariant the e2e suite pins over a real socket.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for (_, t) in self.stages() {
            if t < prev {
                return false;
            }
            prev = t;
        }
        true
    }
}

/// Lifetime counters for a recorder, from [`FlightRecorder::counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightCounts {
    /// Traces committed since the recorder was created.
    pub recorded: u64,
    /// Traces evicted from the recent ring to make room.
    pub dropped: u64,
    /// Traces whose [`RequestTrace::total_ns`] exceeded the slow
    /// threshold.
    pub slow: u64,
}

#[derive(Debug, Default)]
struct Rings {
    recent: VecDeque<RequestTrace>,
    slow: VecDeque<RequestTrace>,
    counts: FlightCounts,
}

/// Bounded ring of completed [`RequestTrace`]s plus a slow-request
/// log, gated like [`Recorder`](crate::Recorder): disabled costs
/// nothing and records nothing.
#[derive(Debug)]
pub struct FlightRecorder {
    on: bool,
    epoch: Instant,
    next_id: AtomicU64,
    slow_threshold_ns: u64,
    capacity: usize,
    rings: Mutex<Rings>,
}

impl FlightRecorder {
    /// An enabled recorder keeping the newest `capacity` traces, with
    /// flights slower than `slow_threshold` also logged to a slow ring
    /// of the same capacity.
    #[must_use]
    pub fn enabled(capacity: usize, slow_threshold: std::time::Duration) -> Self {
        Self {
            on: true,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            slow_threshold_ns: u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            capacity: capacity.max(1),
            rings: Mutex::new(Rings::default()),
        }
    }

    /// A recorder that reports itself disabled and ignores commits —
    /// install this to guarantee the pipeline's zero-overhead path.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            on: false,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            slow_threshold_ns: u64::MAX,
            capacity: 1,
            rings: Mutex::new(Rings::default()),
        }
    }

    /// `true` when traces should be constructed and stamped at all.
    /// Instrumented code checks this once per request and skips every
    /// trace allocation when it is `false`.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Nanoseconds elapsed since the recorder's epoch — the timestamp
    /// base every stamp shares.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts an [`Instant`] captured elsewhere (e.g. a connection's
    /// first-byte arrival) to the recorder's timestamp base.
    #[must_use]
    pub fn ns_of(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// The slow-log threshold in nanoseconds.
    #[must_use]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Starts a trace for a request of `kind` with a fresh id. Callers
    /// should gate on [`is_enabled`](Self::is_enabled) first; `begin`
    /// on a disabled recorder still returns a trace, but committing it
    /// is a no-op.
    #[must_use]
    pub fn begin(&self, kind: &'static str) -> RequestTrace {
        RequestTrace {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            kind,
            fingerprint: 0,
            outcome: Outcome::Ok,
            stages: [None; Stage::COUNT],
        }
    }

    /// Commits a finished trace to the recent ring (and the slow ring
    /// when over threshold). No-op on a disabled recorder.
    pub fn commit(&self, trace: RequestTrace) {
        if !self.on {
            return;
        }
        let slow = trace.total_ns() > self.slow_threshold_ns;
        let mut rings = self.rings.lock().expect("flight ring lock");
        if slow {
            rings.counts.slow += 1;
            if rings.slow.len() == self.capacity {
                rings.slow.pop_front();
            }
            rings.slow.push_back(trace.clone());
        }
        rings.counts.recorded += 1;
        if rings.recent.len() == self.capacity {
            rings.recent.pop_front();
            rings.counts.dropped += 1;
        }
        rings.recent.push_back(trace);
    }

    /// The newest `limit` traces in commit order (oldest first), from
    /// the slow ring when `slow_only` is set.
    #[must_use]
    pub fn recent(&self, limit: usize, slow_only: bool) -> Vec<RequestTrace> {
        let rings = self.rings.lock().expect("flight ring lock");
        let ring = if slow_only {
            &rings.slow
        } else {
            &rings.recent
        };
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Lifetime recorded/dropped/slow counters.
    #[must_use]
    pub fn counts(&self) -> FlightCounts {
        self.rings.lock().expect("flight ring lock").counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn committed(rec: &FlightRecorder, kind: &'static str, start: u64, end: u64) {
        let mut t = rec.begin(kind);
        t.stamp(Stage::Accepted, start);
        t.stamp(Stage::WriteFlushed, end);
        rec.commit(t);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::enabled(3, Duration::from_secs(1));
        for i in 0..5u64 {
            committed(&rec, "health", i * 10, i * 10 + 1);
        }
        let counts = rec.counts();
        assert_eq!(counts.recorded, 5);
        assert_eq!(counts.dropped, 2);
        let recent = rec.recent(10, false);
        assert_eq!(recent.len(), 3);
        // Oldest two evicted: the survivors started at 20, 30, 40.
        assert_eq!(
            recent
                .iter()
                .map(|t| t.stage_ns(Stage::Accepted).unwrap())
                .collect::<Vec<_>>(),
            vec![20, 30, 40]
        );
        assert_eq!(rec.recent(2, false).len(), 2);
    }

    #[test]
    fn slow_log_captures_only_over_threshold_flights() {
        let rec = FlightRecorder::enabled(8, Duration::from_micros(1));
        committed(&rec, "fast", 0, 500); // 500 ns: under threshold
        committed(&rec, "slow", 0, 5_000); // 5 µs: over
        assert_eq!(rec.counts().slow, 1);
        let slow = rec.recent(8, true);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].kind, "slow");
        assert_eq!(rec.recent(8, false).len(), 2);
    }

    #[test]
    fn trace_ids_are_unique_and_stages_iterate_in_order() {
        let rec = FlightRecorder::enabled(4, Duration::from_secs(1));
        let a = rec.begin("stats");
        let b = rec.begin("stats");
        assert_ne!(a.id, b.id);

        let mut t = rec.begin("optimal_setting");
        t.stamp(Stage::Decoded, 30);
        t.stamp(Stage::Accepted, 10);
        t.stamp(Stage::Encoded, 40);
        let seen: Vec<_> = t.stages().collect();
        assert_eq!(
            seen,
            vec![
                (Stage::Accepted, 10),
                (Stage::Decoded, 30),
                (Stage::Encoded, 40)
            ]
        );
        assert_eq!(t.total_ns(), 30);
        assert!(t.is_monotone());
        t.stamp(Stage::WriteFlushed, 5);
        assert!(!t.is_monotone());
    }

    #[test]
    fn disabled_recorder_commits_nothing() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        committed(&rec, "health", 0, 10);
        assert_eq!(rec.counts(), FlightCounts::default());
        assert!(rec.recent(8, false).is_empty());
    }

    #[test]
    fn timestamp_base_is_shared_and_monotone() {
        let rec = FlightRecorder::enabled(1, Duration::from_secs(1));
        let a = rec.now_ns();
        let at = Instant::now();
        let b = rec.ns_of(at);
        assert!(b >= a);
        // An instant before the epoch saturates to zero instead of
        // wrapping.
        assert_eq!(rec.ns_of(rec.epoch), 0);
    }
}
