//! Hierarchical pipeline tracing: spans, sinks and the collecting buffer.
//!
//! A [`Span`] is an RAII guard around one named interval of work — entering
//! creates it, dropping it records a [`SpanRecord`] (enter/exit timestamps,
//! parent link, thread id) into a [`TraceSink`]. The gating contract is the
//! same as [`Recorder`](crate::Recorder): a disabled sink
//! ([`NullTraceSink`]) makes span construction skip the clock and the id
//! counter entirely, so untraced runs pay one branch per span site and
//! nothing else.
//!
//! Spans may be opened on any thread. Worker threads link to a parent on
//! another thread through the parent's [`SpanId`]
//! ([`Span::under`]), which is how `fan_out`-style scoped pools attribute
//! per-worker intervals to the phase that spawned them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of a span within one trace. Ids are 1-based; `0` denotes
/// "no parent" (a root span).
pub type SpanId = u64;

/// A small, dense ordinal for the current OS thread (1-based, assigned on
/// first use, process-wide). Used instead of [`std::thread::ThreadId`] so
/// trace output is compact and stable within a run.
#[must_use]
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// One completed span: a named interval on one thread with a parent link.
///
/// Timestamps are nanoseconds since the owning sink's epoch, so records
/// from different threads share one timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (1-based, unique within the sink).
    pub id: SpanId,
    /// Parent span id, `0` for roots.
    pub parent: SpanId,
    /// Static name of the phase ("sweep.points", "characterize.worker", …).
    pub name: &'static str,
    /// [`thread_ordinal`] of the thread the span closed on.
    pub thread: u64,
    /// Enter timestamp, nanoseconds since the sink epoch.
    pub start_ns: u64,
    /// Exit timestamp, nanoseconds since the sink epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall time spent inside the span.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A sink for completed spans, plus the id and clock authority spans use.
///
/// Like [`Recorder`](crate::Recorder), instrumented code gates on
/// [`enabled`](Self::enabled): when it returns `false`, [`Span`] guards
/// never query the clock, never take an id, and record nothing on drop.
pub trait TraceSink: Sync {
    /// Whether this sink wants spans at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Nanoseconds elapsed since the sink's epoch.
    fn now_ns(&self) -> u64;

    /// Allocates the next span id (1-based, unique within the sink).
    fn next_id(&self) -> SpanId;

    /// Accepts one completed span. Must not panic; bounded sinks drop
    /// instead.
    fn record_span(&self, span: SpanRecord);
}

/// The always-disabled sink: no clock, no ids, no storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn enabled(&self) -> bool {
        false
    }

    fn now_ns(&self) -> u64 {
        0
    }

    fn next_id(&self) -> SpanId {
        0
    }

    fn record_span(&self, _span: SpanRecord) {}
}

/// An in-memory sink collecting every completed span, shareable across
/// scoped worker threads.
///
/// Span *exits* lock a mutex, so this is meant for phase-granularity
/// spans (a handful per worker), not per-sample events — per-sample
/// quantities belong in a per-thread
/// [`MetricSet`](crate::MetricSet), which never locks.
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Instant,
    next: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuffer {
    /// An empty buffer whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Number of completed spans collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace buffer poisoned").len()
    }

    /// `true` when no spans have completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace buffer poisoned").clone()
    }

    /// Discards all collected spans (ids keep incrementing).
    pub fn clear(&self) {
        self.spans.lock().expect("trace buffer poisoned").clear();
    }
}

impl TraceSink for TraceBuffer {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn next_id(&self) -> SpanId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn record_span(&self, span: SpanRecord) {
        self.spans.lock().expect("trace buffer poisoned").push(span);
    }
}

/// RAII guard for one named interval. Created against a [`TraceSink`];
/// records itself on drop. On a disabled sink the guard is inert.
///
/// # Examples
///
/// ```
/// use mcdvfs_obs::{Span, TraceBuffer, TraceSink};
///
/// let buffer = TraceBuffer::new();
/// {
///     let phase = Span::root(&buffer, "sweep");
///     let _inner = phase.child("sweep.points");
/// } // both spans complete here, innermost first
/// let spans = buffer.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].name, "sweep.points");
/// assert_eq!(spans[0].parent, spans[1].id);
/// ```
pub struct Span<'a> {
    sink: &'a dyn TraceSink,
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_ns: u64,
    live: bool,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("parent", &self.parent)
            .field("name", &self.name)
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

impl<'a> Span<'a> {
    /// Opens a root span (no parent).
    #[must_use]
    pub fn root(sink: &'a dyn TraceSink, name: &'static str) -> Self {
        Self::under(sink, 0, name)
    }

    /// Opens a span under an explicit parent id — the cross-thread link:
    /// workers receive the spawning phase's [`Span::id`] and attach their
    /// own spans to it.
    #[must_use]
    pub fn under(sink: &'a dyn TraceSink, parent: SpanId, name: &'static str) -> Self {
        if !sink.enabled() {
            return Self {
                sink,
                id: 0,
                parent: 0,
                name,
                start_ns: 0,
                live: false,
            };
        }
        Self {
            sink,
            id: sink.next_id(),
            parent,
            name,
            start_ns: sink.now_ns(),
            live: true,
        }
    }

    /// Opens a child span on the same sink (same thread borrow).
    #[must_use]
    pub fn child(&self, name: &'static str) -> Span<'a> {
        Span::under(self.sink, self.id, name)
    }

    /// This span's id (`0` when the sink is disabled), for cross-thread
    /// [`Span::under`] parenting.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// `true` when the span will record on drop.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.live
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.live {
            self.sink.record_span(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                thread: thread_ordinal(),
                start_ns: self.start_ns,
                end_ns: self.sink.now_ns(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_makes_spans_inert() {
        let sink = NullTraceSink;
        let s = Span::root(&sink, "noop");
        assert!(!s.is_live());
        assert_eq!(s.id(), 0);
        let c = s.child("noop.child");
        assert!(!c.is_live());
        assert_eq!(std::mem::size_of::<NullTraceSink>(), 0);
    }

    #[test]
    fn spans_record_parent_links_and_ordering() {
        let buffer = TraceBuffer::new();
        {
            let root = Span::root(&buffer, "outer");
            {
                let _a = root.child("inner_a");
            }
            {
                let _b = root.child("inner_b");
            }
        }
        let spans = buffer.spans();
        assert_eq!(spans.len(), 3);
        // Children complete before the root.
        assert_eq!(spans[0].name, "inner_a");
        assert_eq!(spans[1].name, "inner_b");
        assert_eq!(spans[2].name, "outer");
        assert_eq!(spans[0].parent, spans[2].id);
        assert_eq!(spans[1].parent, spans[2].id);
        assert_eq!(spans[2].parent, 0);
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn cross_thread_spans_share_the_timeline() {
        let buffer = TraceBuffer::new();
        let root = Span::root(&buffer, "fan");
        let parent_id = root.id();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _w = Span::under(&buffer, parent_id, "fan.worker");
                });
            }
        });
        drop(root);
        let spans = buffer.spans();
        assert_eq!(spans.len(), 4);
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "fan.worker").collect();
        assert_eq!(workers.len(), 3);
        for w in workers {
            assert_eq!(w.parent, parent_id);
            assert!(w.thread >= 1);
        }
    }

    #[test]
    fn ids_are_unique_and_one_based() {
        let buffer = TraceBuffer::new();
        let a = Span::root(&buffer, "a");
        let b = Span::root(&buffer, "b");
        assert!(a.id() >= 1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clear_discards_spans() {
        let buffer = TraceBuffer::new();
        drop(Span::root(&buffer, "x"));
        assert!(!buffer.is_empty());
        buffer.clear();
        assert!(buffer.is_empty());
    }

    #[test]
    fn thread_ordinals_are_positive_and_stable() {
        let here = thread_ordinal();
        assert!(here >= 1);
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, other);
    }
}
