//! The bounded ring-buffer event ledger.

use crate::event::Event;
use crate::recorder::Recorder;
use std::collections::VecDeque;

/// A recorder that retains events in order, bounded by a ring buffer.
///
/// When the buffer is full the *oldest* event is evicted so the ledger
/// always holds the newest history; evictions are counted in
/// [`dropped`](Self::dropped). An unbounded ledger never drops, which is
/// what the exact-replay cross-check requires.
///
/// # Examples
///
/// ```
/// use mcdvfs_obs::{Event, Recorder, RunLedger};
///
/// let mut ledger = RunLedger::with_capacity(2);
/// for sample in 0..5 {
///     ledger.record(Event::RegionBoundary { sample });
/// }
/// assert_eq!(ledger.len(), 2);
/// assert_eq!(ledger.dropped(), 3);
/// // The newest two events survive.
/// let kept: Vec<usize> = ledger.events().map(Event::sample).collect();
/// assert_eq!(kept, vec![3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct RunLedger {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RunLedger {
    /// A ledger that never evicts. Required for
    /// [`replay`](Self::replay)-based cross-checks, where a dropped event
    /// would falsify the totals.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            events: VecDeque::new(),
            capacity: usize::MAX,
            dropped: 0,
        }
    }

    /// A ledger retaining at most `capacity` events, evicting the oldest
    /// on overflow. Storage is allocated once, up front.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ledger records nothing");
        Self {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retention bound (`usize::MAX` for unbounded ledgers).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` when every recorded event is still retained — the
    /// precondition for exact replay.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Discards all retained events and resets the dropped counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl Recorder for RunLedger {
    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_ledger_keeps_everything() {
        let mut l = RunLedger::unbounded();
        for sample in 0..1000 {
            l.record(Event::RegionBoundary { sample });
        }
        assert_eq!(l.len(), 1000);
        assert_eq!(l.dropped(), 0);
        assert!(l.is_complete());
    }

    #[test]
    fn overflow_evicts_oldest_first() {
        let mut l = RunLedger::with_capacity(3);
        for sample in 0..7 {
            l.record(Event::RegionBoundary { sample });
        }
        let kept: Vec<usize> = l.events().map(Event::sample).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        assert_eq!(l.dropped(), 4);
        assert!(!l.is_complete());
    }

    #[test]
    fn bounded_ledger_never_reallocates() {
        let mut l = RunLedger::with_capacity(8);
        let cap_before = l.events.capacity();
        for sample in 0..100 {
            l.record(Event::RegionBoundary { sample });
        }
        assert_eq!(l.events.capacity(), cap_before, "ring must stay in place");
    }

    #[test]
    fn clear_resets_state() {
        let mut l = RunLedger::with_capacity(1);
        l.record(Event::RegionBoundary { sample: 0 });
        l.record(Event::RegionBoundary { sample: 1 });
        assert_eq!(l.dropped(), 1);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = RunLedger::with_capacity(0);
    }
}
