//! Per-thread metric collectors that aggregate at join time.
//!
//! A [`MetricSet`] is a plain, single-owner bundle of named counters,
//! gauges and duration [`Histogram`]s. The concurrency story is
//! *ownership, not locking*: every worker thread builds its own set while
//! it runs — no atomics, no mutexes, no cache-line contention inside the
//! hot loop — and the spawning thread [`merge`](MetricSet::merge)s the
//! per-worker sets in worker order after the scoped joins. Aggregation is
//! therefore deterministic for a fixed thread count and free while the
//! workers execute.
//!
//! Keys are plain strings ("sweep.points.jobs",
//! "characterize.worker_busy_ns"); dotted prefixes group related metrics
//! under the phase that produced them.

use crate::aggregate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Log-spaced histogram edges for durations in nanoseconds: half-decade
/// steps from 100 ns to 10 s. Wide enough for everything from a bitset
/// scan to a full fine-grid characterization.
#[must_use]
pub fn duration_edges_ns() -> Vec<f64> {
    let mut edges = Vec::with_capacity(17);
    let mut lo = 100.0f64;
    while lo < 1e10 {
        edges.push(lo);
        edges.push(lo * 10f64.sqrt());
        lo *= 10.0;
    }
    edges.push(1e10);
    edges
}

/// Log-spaced histogram edges for item counts: powers of two from 1 to
/// 2^30. Used for per-worker job/row counts, whose max-over-mean
/// [`imbalance`](MetricSet::imbalance) is the queue-balance signal.
#[must_use]
pub fn count_edges() -> Vec<f64> {
    (0..=30).map(|i| f64::from(1u32 << i)).collect()
}

/// A single-owner collection of named counters, gauges and histograms.
///
/// # Examples
///
/// ```
/// use mcdvfs_obs::MetricSet;
///
/// let mut worker_a = MetricSet::new();
/// worker_a.incr("points.jobs", 5);
/// let mut worker_b = MetricSet::new();
/// worker_b.incr("points.jobs", 4);
///
/// let mut total = MetricSet::new();
/// total.merge(&worker_a);
/// total.merge(&worker_b);
/// assert_eq!(total.counter("points.jobs"), 9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `by` to the named counter (created at zero). Allocation-free
    /// once the key exists — the common case inside worker loops.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Raises the named gauge to `value` if it exceeds the current value
    /// (created at `value`). Used for high-water marks like per-phase peak
    /// worker busy time.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        self.gauges
            .entry(name.to_string())
            .and_modify(|g| *g = g.max(value))
            .or_insert(value);
    }

    /// Observes `value` into the named histogram, creating it over
    /// `edges()` on first use. Subsequent observations must target the
    /// same edges (merging enforces this too).
    pub fn observe(&mut self, name: &str, value: f64, edges: impl FnOnce() -> Vec<f64>) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges()))
            .add(value);
    }

    /// Observes a duration in nanoseconds into the named histogram over
    /// the standard [`duration_edges_ns`] buckets.
    pub fn observe_duration_ns(&mut self, name: &str, ns: f64) {
        self.observe(name, ns, duration_edges_ns);
    }

    /// Current value of the named counter (`0` when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the named gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if anything was observed into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Folds `other` into this set: counters add, gauges keep the
    /// maximum, histograms merge bucket-wise. The join-time aggregation
    /// step — call once per worker, in worker order, for deterministic
    /// results.
    ///
    /// # Panics
    ///
    /// Panics when the same histogram name was built over different edges
    /// in the two sets.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|g| *g = g.max(v))
                .or_insert(v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
            }
        }
    }

    /// Ratio of the slowest worker to the mean worker for a per-worker
    /// histogram (e.g. `"points.worker_busy_ns"`): `1.0` is a perfectly
    /// balanced pool, `2.0` means the slowest worker took twice the mean.
    /// `None` when the histogram is absent or empty.
    #[must_use]
    pub fn imbalance(&self, histogram_name: &str) -> Option<f64> {
        let h = self.histograms.get(histogram_name)?;
        let max = h.max_value()?;
        let mean = h.mean()?;
        (mean > 0.0).then(|| max / mean)
    }

    /// Renders every metric as aligned text, one per line, sorted by
    /// name — the human-readable tail of a `--profile` report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter    {name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  gauge      {name:<44} {v:.1}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  histogram  {name:<44} n={} mean={:.0} p50={:.0} p95={:.0} max={:.0}",
                h.total(),
                h.mean().unwrap_or(0.0),
                h.percentile(0.5).unwrap_or(0.0),
                h.percentile(0.95).unwrap_or(0.0),
                h.max_value().unwrap_or(0.0),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricSet::new();
        assert_eq!(m.counter("absent"), 0);
        m.incr("jobs", 3);
        m.incr("jobs", 4);
        assert_eq!(m.counter("jobs"), 7);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_keep_the_maximum() {
        let mut m = MetricSet::new();
        m.gauge_max("busy", 5.0);
        m.gauge_max("busy", 3.0);
        m.gauge_max("busy", 9.0);
        assert_eq!(m.gauge("busy"), Some(9.0));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_and_merges_histograms() {
        let mut a = MetricSet::new();
        a.incr("jobs", 2);
        a.gauge_max("busy", 1.0);
        a.observe_duration_ns("dur", 500.0);
        let mut b = MetricSet::new();
        b.incr("jobs", 3);
        b.incr("extra", 1);
        b.gauge_max("busy", 4.0);
        b.observe_duration_ns("dur", 1500.0);
        a.merge(&b);
        assert_eq!(a.counter("jobs"), 5);
        assert_eq!(a.counter("extra"), 1);
        assert_eq!(a.gauge("busy"), Some(4.0));
        let h = a.histogram("dur").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.min_value(), Some(500.0));
        assert_eq!(h.max_value(), Some(1500.0));
    }

    #[test]
    fn merge_with_disjoint_histogram_names_keeps_both() {
        let mut a = MetricSet::new();
        a.observe_duration_ns("reactor.tick_ns", 1_000.0);
        let mut b = MetricSet::new();
        b.observe_duration_ns("stage.compute_ns", 2_000.0);
        a.merge(&b);
        assert_eq!(
            a.histogram_names().collect::<Vec<_>>(),
            vec!["reactor.tick_ns", "stage.compute_ns"]
        );
        assert_eq!(a.histogram("reactor.tick_ns").unwrap().total(), 1);
        assert_eq!(a.histogram("stage.compute_ns").unwrap().total(), 1);
        // `b` is untouched: merge reads, never moves.
        assert_eq!(b.histogram("stage.compute_ns").unwrap().total(), 1);
        assert!(b.histogram("reactor.tick_ns").is_none());
    }

    #[test]
    fn merge_with_overlapping_histogram_names_folds_bucketwise() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        for v in [200.0, 5_000.0] {
            a.observe_duration_ns("latency.request_ns", v);
        }
        for v in [800.0, 5_000.0, 2e9] {
            b.observe_duration_ns("latency.request_ns", v);
        }
        a.merge(&b);
        let h = a.histogram("latency.request_ns").unwrap();
        assert_eq!(h.total(), 5);
        assert_eq!(h.min_value(), Some(200.0));
        assert_eq!(h.max_value(), Some(2e9));
        let sum: f64 = 200.0 + 5_000.0 + 800.0 + 5_000.0 + 2e9;
        assert!((h.mean().unwrap() - sum / 5.0).abs() < 1e-6);
        // Merging a disjoint-then-overlapping mix in one call works
        // too: counters and histograms are independent namespaces.
        let mut c = MetricSet::new();
        c.incr("latency.request_ns", 3); // counter, same name as the histogram
        a.merge(&c);
        assert_eq!(a.counter("latency.request_ns"), 3);
        assert_eq!(a.histogram("latency.request_ns").unwrap().total(), 5);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn merge_with_overlapping_names_and_different_edges_panics() {
        let mut a = MetricSet::new();
        a.observe("n", 1.0, || vec![0.0, 1.0, 2.0]);
        let mut b = MetricSet::new();
        b.observe("n", 1.0, || vec![0.0, 10.0]);
        a.merge(&b);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let mut m = MetricSet::new();
        for busy in [100.0, 100.0, 100.0, 300.0] {
            m.observe_duration_ns("w.busy", busy);
        }
        let imb = m.imbalance("w.busy").unwrap();
        assert!((imb - 300.0 / 150.0).abs() < 1e-12);
        assert_eq!(m.imbalance("absent"), None);
    }

    #[test]
    fn duration_edges_ascend_and_span_ns_to_seconds() {
        let edges = duration_edges_ns();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(edges[0], 100.0);
        assert!(*edges.last().unwrap() >= 1e10);
    }

    #[test]
    fn render_lists_every_metric() {
        let mut m = MetricSet::new();
        m.incr("a.jobs", 1);
        m.gauge_max("a.peak", 2.0);
        m.observe_duration_ns("a.dur", 100.0);
        let text = m.render();
        assert!(text.contains("a.jobs"));
        assert!(text.contains("a.peak"));
        assert!(text.contains("a.dur"));
        assert!(text.contains("p95"));
    }
}
