//! Run-ledger observability for governed runs.
//!
//! The figure harness and the integration tests need to see *inside* a
//! [`GovernedRun`](../mcdvfs_core/struct.GovernedRun.html): when did the
//! governor search, when did the hardware actually transition, where did
//! region boundaries fall, and do the charged overheads add up to what the
//! final report claims? This crate provides that visibility without
//! perturbing the run itself:
//!
//! * [`Event`] — a small `Copy` vocabulary of typed run events
//!   (sample executed, tuning search, frequency transition, region
//!   boundary, budget exceeded);
//! * [`Recorder`] — the sink trait instrumented code writes to.
//!   [`NullRecorder`] is the always-installed default: it reports itself
//!   disabled so instrumented hot paths skip event construction entirely,
//!   and it never allocates;
//! * [`RunLedger`] — a bounded ring-buffer recorder that keeps the newest
//!   events (with a dropped-event counter), plus aggregation queries:
//!   transition inter-arrival [`Histogram`]s, per-domain transition
//!   counts, search-cost breakdowns, region-length distributions, and an
//!   exact [`replay`](RunLedger::replay) of the run totals.
//!
//! The replay contract is the crate's cross-check invariant: events carry
//! the *exact* `f64` quantities the runner accumulated, in the same order,
//! so replaying a complete ledger reproduces the run report's totals
//! bit-for-bit — any disagreement means instrumentation drifted from the
//! accounting it observes. A ledger that dropped events refuses the exact
//! replay ([`Error::IncompleteLedger`](mcdvfs_types::Error)) instead of
//! silently under-counting.
//!
//! Beyond per-run events, the crate carries the *pipeline* observability
//! layer used by the analysis stack:
//!
//! * [`Span`]/[`TraceSink`]/[`TraceBuffer`] — hierarchical phase spans
//!   with enter/exit timestamps, parent links and thread ids, gated
//!   exactly like [`Recorder`];
//! * [`MetricSet`] — single-owner counters, gauges and duration
//!   [`Histogram`]s that worker threads build privately and the spawning
//!   thread merges at join time (lock-free by ownership);
//! * [`Profiler`] — the bundle instrumented code takes by reference, with
//!   flame-style [phase summaries](Profiler::render_summary);
//! * [`FlightRecorder`]/[`RequestTrace`] — request-level flight records
//!   with per-stage timestamps, kept in a bounded ring plus a
//!   slow-request log, gated exactly like [`Recorder`];
//! * [`WindowRing`] — a single-writer ring of 1-second telemetry
//!   windows (throughput, shed/error counts, queue-depth max,
//!   latency percentiles).
//!
//! # Examples
//!
//! ```
//! use mcdvfs_obs::{Event, Recorder, RunLedger};
//! use mcdvfs_types::{FreqSetting, Joules, Seconds};
//!
//! let mut ledger = RunLedger::unbounded();
//! ledger.record(Event::SampleExecuted {
//!     sample: 0,
//!     setting: FreqSetting::from_mhz(500, 400),
//!     time: Seconds::from_millis(1.0),
//!     energy: Joules::from_millis(4.0),
//! });
//! let totals = ledger.replay().expect("complete ledger");
//! assert_eq!(totals.samples, 1);
//! assert_eq!(totals.work_time, Seconds::from_millis(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod event;
mod flight;
mod ledger;
mod metrics;
mod profiler;
mod recorder;
mod trace;
mod window;

pub use aggregate::{DomainTransitionCounts, Histogram, ReplayTotals, SearchBreakdown};
pub use event::Event;
pub use flight::{FlightCounts, FlightRecorder, Outcome, RequestTrace, Stage};
pub use ledger::RunLedger;
pub use metrics::{count_edges, duration_edges_ns, MetricSet};
pub use profiler::{fmt_ns, phase_totals_of, PhaseTotal, Profiler};
pub use recorder::{NullRecorder, Recorder};
pub use trace::{thread_ordinal, NullTraceSink, Span, SpanId, SpanRecord, TraceBuffer, TraceSink};
pub use window::{Window, WindowClass, WindowRing};
